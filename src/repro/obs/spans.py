"""Nestable tracing spans and the Chrome-trace/Perfetto exporter.

A *span* is one timed region — run → cell → workload episode — recorded
against ``perf_counter`` (monotonic, sub-µs) for the duration and
``time.time`` for the wall anchor, so traces from several processes
line up on one shared timeline. Nesting is tracked with a contextvar
stack: each span records its parent's id, and the exporter double-checks
containment structurally.

Records live in pid-suffixed ``spans-<pid>.jsonl`` files beside the
event log; :func:`to_chrome_trace` converts them into the Chrome
``traceEvents`` JSON (complete ``"ph": "X"`` events, microsecond
timestamps) that chrome://tracing and https://ui.perfetto.dev load
directly — ``repro trace export`` is the CLI wrapper.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import os
import threading
import time
from pathlib import Path

from repro.obs.events import JsonlSink, read_jsonl

__all__ = [
    "SPAN_SCHEMA_VERSION",
    "SpanRecorder",
    "load_spans",
    "to_chrome_trace",
    "export_chrome_trace",
]

SPAN_SCHEMA_VERSION = 1

#: stack of open span ids (contextvar: thread- and generator-local)
_STACK: contextvars.ContextVar[tuple] = contextvars.ContextVar(
    "repro_obs_spans", default=()
)


class SpanRecorder:
    """Records completed spans into a fork-aware JSONL sink."""

    def __init__(self, directory: str | os.PathLike | None) -> None:
        self.sink = JsonlSink(directory, "spans")
        self._ids = itertools.count(1)

    def _new_id(self) -> str:
        # pid-qualified so ids from forked children never collide
        return f"{os.getpid():x}.{next(self._ids)}"

    @contextlib.contextmanager
    def span(self, name: str, **attrs):
        """Time a region; record it (with its parent) when it closes."""
        span_id = self._new_id()
        stack = _STACK.get()
        token = _STACK.set(stack + (span_id,))
        wall_start = time.time()
        t0 = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - t0
            _STACK.reset(token)
            self.sink.write(
                {
                    "schema": SPAN_SCHEMA_VERSION,
                    "name": name,
                    "t": wall_start,
                    "dur_s": duration,
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                    "span_id": span_id,
                    "parent_id": stack[-1] if stack else None,
                    **({"attrs": attrs} if attrs else {}),
                }
            )

    def close(self) -> None:
        self.sink.close()


def load_spans(directory: str | os.PathLike) -> list[dict]:
    """Every span record under ``directory``, sorted by start time."""
    return [
        record
        for record in read_jsonl(directory, "spans")
        if record.get("schema") == SPAN_SCHEMA_VERSION
    ]


def to_chrome_trace(spans: list[dict], events: list[dict] | None = None) -> dict:
    """Render span records as a Chrome-trace ``traceEvents`` document.

    Spans become complete (``"ph": "X"``) slices; structured events, when
    given, ride along as instant (``"ph": "i"``) markers so the log and
    the timeline stay on one view. Timestamps are microseconds relative
    to the earliest record, which keeps the numbers small enough for
    every viewer.
    """
    stamps = [s["t"] for s in spans] + [e.get("t", 0.0) for e in (events or [])]
    t0 = min(stamps) if stamps else 0.0
    trace_events: list[dict] = []
    pids = sorted({int(s.get("pid", 0)) for s in spans})
    for pid in pids:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    for span in spans:
        trace_events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (span["t"] - t0) * 1e6,
                "dur": span["dur_s"] * 1e6,
                "pid": int(span.get("pid", 0)),
                "tid": int(span.get("tid", 0)),
                "args": {
                    "span_id": span.get("span_id"),
                    "parent_id": span.get("parent_id"),
                    **span.get("attrs", {}),
                },
            }
        )
    for event in events or []:
        trace_events.append(
            {
                "name": event.get("event", "event"),
                "cat": "repro.events",
                "ph": "i",
                "s": "p",  # process-scoped instant marker
                "ts": (event.get("t", t0) - t0) * 1e6,
                "pid": int(event.get("pid", 0)),
                "tid": 0,
                "args": {
                    k: v
                    for k, v in event.items()
                    if k not in ("t", "event", "schema")
                },
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "span_schema": SPAN_SCHEMA_VERSION},
    }


def export_chrome_trace(
    telemetry_dir: str | os.PathLike,
    out_path: str | os.PathLike | None = None,
    include_events: bool = True,
) -> Path:
    """Merge a telemetry directory's spans into one Chrome-trace file."""
    import json

    from repro.obs.events import read_events

    telemetry_dir = Path(telemetry_dir)
    spans = load_spans(telemetry_dir)
    if not spans:
        raise ValueError(
            f"no span records under {telemetry_dir} (expected "
            "spans-<pid>.jsonl files written by a --telemetry run)"
        )
    events = read_events(telemetry_dir) if include_events else None
    doc = to_chrome_trace(spans, events)
    out = Path(out_path) if out_path is not None else telemetry_dir / "trace.json"
    with open(out, "w") as handle:
        json.dump(doc, handle)
    return out
