"""Constant-memory online metrics: counters, gauges, streaming histograms.

The registry is what the telemetry layer samples *into*: decision
latencies, queue depths, cache hit counters, lease protocol activity.
Everything here is O(1) memory per metric regardless of how many
observations flow through (the histogram keeps log-spaced buckets, not
samples — the streaming-aggregator pattern of MerCur-Re's
``Statistics`` helper), so a million-cell sweep can keep metrics on
without ever buffering a million values.

Snapshots are plain versioned dicts (``schema`` field) so worker
processes can publish them as JSON beside their journal shards and a
coordinator can :func:`merge_snapshots` them without sharing memory.

Thread-safety: increments are plain ``+=`` under the GIL — concurrent
writers (the heartbeat thread next to a worker loop) can at worst lose
an increment, which is acceptable for telemetry and keeps the hot path
free of locks.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "StreamingHistogram",
    "MetricsRegistry",
    "merge_snapshots",
]

METRICS_SCHEMA_VERSION = 1


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = int(value)

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_json_dict(self) -> int:
        return self.value


class Gauge:
    """A last-value-wins float (queue depth, pending cells, …)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_json_dict(self) -> float:
        return self.value


class StreamingHistogram:
    """Log-spaced-bucket histogram with bounded relative quantile error.

    Positive observations land in bucket ``floor(log_g(value))`` for
    growth factor ``g`` (default 1.08); a quantile estimate is the
    geometric midpoint of its bucket, so it is within a factor
    ``sqrt(g)`` of the true order statistic — a guaranteed ≤ ~4%
    relative error at the default growth, from a dict that holds one
    integer per *occupied* bucket. Non-positive values are counted in a
    dedicated underflow bucket (they sort below every positive bucket).

    ``count``/``total``/``min``/``max`` are exact.
    """

    __slots__ = ("growth", "_log_g", "buckets", "zeros", "count", "total",
                 "min", "max")

    def __init__(self, growth: float = 1.08) -> None:
        if growth <= 1.0:
            raise ValueError("histogram growth factor must be > 1")
        self.growth = float(growth)
        self._log_g = math.log(self.growth)
        self.buckets: dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            return
        index = math.floor(math.log(value) / self._log_g)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """The ≈``q``-quantile (geometric bucket midpoint; exact at the
        recorded ``min``/``max`` endpoints)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return math.nan
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * (self.count - 1)
        if rank < self.zeros:
            return min(self.min, 0.0)
        cumulative = self.zeros
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if rank < cumulative:
                mid = self.growth ** (index + 0.5)
                # Clamp into the exactly-tracked envelope so q=0/q=1
                # return the true extremes.
                return min(max(mid, self.min), self.max)
        return self.max

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other`` in; requires an identical bucket geometry."""
        if abs(other.growth - self.growth) > 1e-12:
            raise ValueError(
                f"cannot merge histograms with growth {other.growth} into "
                f"{self.growth}"
            )
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zeros += other.zeros
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_json_dict(self) -> dict:
        return {
            "growth": self.growth,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "zeros": self.zeros,
            # JSON object keys are strings; indices restored on load
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "StreamingHistogram":
        hist = cls(growth=float(data.get("growth", 1.08)))
        hist.count = int(data.get("count", 0))
        hist.total = float(data.get("total", 0.0))
        hist.zeros = int(data.get("zeros", 0))
        hist.min = float(data["min"]) if data.get("min") is not None else math.inf
        hist.max = float(data["max"]) if data.get("max") is not None else -math.inf
        hist.buckets = {int(k): int(v) for k, v in data.get("buckets", {}).items()}
        return hist


class MetricsRegistry:
    """Named counters/gauges/histograms, created on first touch."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, StreamingHistogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str, growth: float = 1.08) -> StreamingHistogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = StreamingHistogram(growth=growth)
        return hist

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def snapshot(self, **extra) -> dict:
        """A versioned, JSON-able snapshot of every metric."""
        import time

        return {
            "schema": METRICS_SCHEMA_VERSION,
            "t": time.time(),
            "counters": {k: c.to_json_dict() for k, c in sorted(self._counters.items())},
            "gauges": {k: g.to_json_dict() for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.to_json_dict() for k, h in sorted(self._histograms.items())
            },
            **extra,
        }


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Aggregate worker metrics snapshots (coordinator-side roll-up).

    Counters and histogram streams add; gauges keep the value from the
    most recent snapshot (by its ``t`` stamp). Unknown schema versions
    are skipped rather than mis-merged.
    """
    merged = MetricsRegistry()
    gauge_stamp: dict[str, float] = {}
    n_merged = 0
    for snap in snapshots:
        if snap.get("schema") != METRICS_SCHEMA_VERSION:
            continue
        n_merged += 1
        t = float(snap.get("t", 0.0))
        for name, value in snap.get("counters", {}).items():
            merged.counter(name).inc(int(value))
        for name, value in snap.get("gauges", {}).items():
            if t >= gauge_stamp.get(name, -math.inf):
                merged.gauge(name).set(float(value))
                gauge_stamp[name] = t
        for name, data in snap.get("histograms", {}).items():
            hist = StreamingHistogram.from_json_dict(data)
            merged.histogram(name, growth=hist.growth).merge(hist)
    return merged.snapshot(merged_from=n_merged)
