"""The stdlib ``logging`` bridge: one call site, two destinations.

Library code logs through ordinary stdlib loggers under the ``repro.``
namespace (:func:`get_logger`), attaching structured fields with the
:func:`kv` helper::

    log = get_logger("repro.dist.worker")
    log.info("lease claimed", extra=kv(key=key, worker_id=self.worker_id))

Two handlers consume those records:

* :func:`configure_stderr_logging` installs a human-readable stderr
  handler whose level follows the CLI's ``--verbose``/``--quiet``
  flags (``repro work -v``), rendering the fields as ``key=value``
  suffixes;
* :class:`EventLogHandler` (installed by :func:`repro.obs.enable`)
  forwards every record into the structured event log as a ``log``
  event, fields and bound context included, so the JSONL telemetry
  stream and the console narration can never drift apart.

Nothing is installed by default: a library must not configure logging
behind its host application's back, so without an explicit
``configure_stderr_logging``/``enable`` call these loggers propagate to
whatever the application set up (or stdlib's silent default).
"""

from __future__ import annotations

import logging
import traceback

from repro.obs.events import current_context

__all__ = [
    "get_logger",
    "kv",
    "configure_stderr_logging",
    "verbosity_level",
    "EventLogHandler",
]

#: the namespace root every library logger hangs off
ROOT_LOGGER = "repro"

_FIELDS_ATTR = "obs_fields"


def get_logger(name: str) -> logging.Logger:
    """A stdlib logger under the ``repro.`` namespace."""
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def kv(**fields) -> dict:
    """Structured fields for a log call's ``extra=`` argument."""
    return {_FIELDS_ATTR: fields}


def record_fields(record: logging.LogRecord) -> dict:
    """Bound context + the record's own ``kv`` fields (record wins)."""
    return {**current_context(), **getattr(record, _FIELDS_ATTR, {})}


def verbosity_level(verbose: int = 0, quiet: bool = False) -> int:
    """Map CLI flags to a logging level: ``-q`` → ERROR, default →
    WARNING, ``-v`` → INFO, ``-vv`` → DEBUG."""
    if quiet:
        return logging.ERROR
    return {0: logging.WARNING, 1: logging.INFO}.get(min(verbose, 2), logging.DEBUG)


class _KeyValueFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger: message key=value …``"""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)-7s %(name)s: %(message)s",
                         datefmt="%H:%M:%S")

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        fields = record_fields(record)
        if fields:
            rendered = " ".join(f"{k}={v}" for k, v in fields.items())
            # exc_info text (appended by super) stays last
            head, sep, tail = base.partition("\n")
            base = head + " " + rendered + (sep + tail if sep else "")
        return base


class _StderrHandler(logging.StreamHandler):
    """Marker subclass so reconfiguration can find and replace ours."""


def configure_stderr_logging(
    verbose: int = 0, quiet: bool = False, stream=None
) -> logging.Handler:
    """(Re)install the CLI's stderr handler on the ``repro`` logger.

    Idempotent: a previously installed handler of ours is replaced, not
    stacked, so repeated CLI invocations in one process (tests) never
    double-print.
    """
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if isinstance(handler, _StderrHandler):
            root.removeHandler(handler)
    handler = _StderrHandler(stream)
    handler.setFormatter(_KeyValueFormatter())
    handler.setLevel(verbosity_level(verbose, quiet))
    root.addHandler(handler)
    # The logger itself stays wide open; per-handler levels filter.
    root.setLevel(logging.DEBUG)
    return handler


class EventLogHandler(logging.Handler):
    """Forward stdlib log records into a session's structured event log."""

    def __init__(self, session) -> None:
        super().__init__(level=logging.DEBUG)
        self.session = session

    def emit(self, record: logging.LogRecord) -> None:
        try:
            fields = record_fields(record)
            if record.exc_info and record.exc_info[0] is not None:
                fields["traceback"] = "".join(
                    traceback.format_exception(*record.exc_info, limit=20)
                )
            self.session.event(
                "log",
                level=record.levelname,
                logger=record.name,
                message=record.getMessage(),
                **fields,
            )
        except Exception:  # never let telemetry take down the host
            self.handleError(record)

    def install(self) -> None:
        logging.getLogger(ROOT_LOGGER).addHandler(self)
        logging.getLogger(ROOT_LOGGER).setLevel(logging.DEBUG)

    def uninstall(self) -> None:
        logging.getLogger(ROOT_LOGGER).removeHandler(self)
