"""``repro.obs`` — structured telemetry: events, spans, metrics, logs.

Zero-overhead-when-off instrumentation for the whole stack::

    import repro.obs as obs

    session = obs.enable("telemetry/")        # JSONL events + spans + metrics
    with obs.bind(run_id=session.run_id):
        with obs.span("run", cells=40):
            ...
            obs.event("cell_done", key=key, source="run")
    obs.disable()                             # flush + final metrics snapshot

Three surfaces share one telemetry directory:

* **events** — flat, versioned JSONL records with bound run/worker/cell
  context (:mod:`repro.obs.events`), fed both directly and through the
  stdlib logging bridge (:mod:`repro.obs.logbridge`);
* **spans** — nested timed regions (run → cell → episode), exportable
  as a Chrome-trace/Perfetto file via ``repro trace export``
  (:mod:`repro.obs.spans`);
* **metrics** — constant-memory counters/gauges/streaming histograms
  (:mod:`repro.obs.metrics`), snapshotted to ``metrics-<pid>.json``.

Hot loops never touch this facade: they read
:data:`repro.obs.runtime.session` / ``decision_probe`` (module
attributes that stay ``None`` while telemetry is off) so the disabled
path costs one attribute check. Telemetry is execution-layer "how" —
it never enters task config hashes and never changes a decision.
"""

from __future__ import annotations

import contextlib
import os

from repro.obs import runtime as _runtime
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    bind,
    current_context,
    read_events,
)
from repro.obs.logbridge import (
    EventLogHandler,
    configure_stderr_logging,
    get_logger,
    kv,
    verbosity_level,
)
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    StreamingHistogram,
    merge_snapshots,
)
from repro.obs.progress import ProgressLine
from repro.obs.session import DEFAULT_DECISION_SAMPLE, DecisionProbe, TelemetrySession
from repro.obs.spans import (
    SPAN_SCHEMA_VERSION,
    export_chrome_trace,
    load_spans,
    to_chrome_trace,
)

__all__ = [
    "enable",
    "disable",
    "enabled",
    "session",
    "event",
    "span",
    "metrics",
    "bind",
    "current_context",
    "get_logger",
    "kv",
    "configure_stderr_logging",
    "verbosity_level",
    "read_events",
    "load_spans",
    "to_chrome_trace",
    "export_chrome_trace",
    "merge_snapshots",
    "ProgressLine",
    "TelemetrySession",
    "DecisionProbe",
    "MetricsRegistry",
    "StreamingHistogram",
    "EventLogHandler",
    "EVENT_SCHEMA_VERSION",
    "SPAN_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
    "DEFAULT_DECISION_SAMPLE",
]

_log_handler: EventLogHandler | None = None


def enable(
    directory: "str | os.PathLike | None" = None,
    *,
    run_id: str | None = None,
    sample_decisions: bool = False,
    decision_sample_every: int = DEFAULT_DECISION_SAMPLE,
) -> TelemetrySession:
    """Install a global telemetry session; returns it.

    ``directory`` roots the JSONL sinks (``None`` keeps records in
    memory — tests, or metrics-only use). ``sample_decisions`` arms the
    scheduler decision-latency probe (off by default: it is the one
    surface on the per-decision hot path), timing every
    ``decision_sample_every``-th selection.

    Idempotent while enabled: a second ``enable`` returns the existing
    session unchanged (call :func:`disable` first to reconfigure), so a
    worker following a queue's shared telemetry directory can race a
    CLI flag without stacking sessions.
    """
    global _log_handler
    if _runtime.session is not None:
        return _runtime.session
    session_ = TelemetrySession(
        directory,
        run_id=run_id,
        sample_decisions=sample_decisions,
        decision_sample_every=decision_sample_every,
    )
    _log_handler = EventLogHandler(session_)
    _log_handler.install()
    _runtime.session = session_
    _runtime.decision_probe = session_.decision_probe
    return session_


def disable() -> None:
    """Tear the active session down (flush sinks, final snapshot)."""
    global _log_handler
    session_, _runtime.session = _runtime.session, None
    _runtime.decision_probe = None
    if _log_handler is not None:
        _log_handler.uninstall()
        _log_handler = None
    if session_ is not None:
        session_.close()


def enabled() -> bool:
    return _runtime.session is not None


def session() -> TelemetrySession | None:
    """The active session, or None."""
    return _runtime.session


def event(name: str, **fields) -> None:
    """Emit a structured event (no-op while telemetry is off)."""
    session_ = _runtime.session
    if session_ is not None:
        session_.event(name, **fields)


_NULL_SPAN = contextlib.nullcontext()


def span(name: str, **attrs):
    """A timed-region context manager (null context while off)."""
    session_ = _runtime.session
    if session_ is None:
        return _NULL_SPAN
    return session_.span(name, **attrs)


def metrics() -> MetricsRegistry | None:
    """The active session's metrics registry, or None."""
    session_ = _runtime.session
    return session_.metrics if session_ is not None else None
