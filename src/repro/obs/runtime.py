"""Mutable global telemetry state — the hot path's one attribute check.

This module is deliberately tiny and imports nothing from the rest of
the library so that hot loops (the scheduler selection loop, the
simulator event loop, ``execute_task``) can do::

    from repro.obs import runtime as _obs
    ...
    if _obs.session is not None:        # telemetry off → one attr check
        _obs.session.event(...)

and pay exactly one module-attribute read plus an ``is not None`` test
when telemetry is disabled (the default). The richer facade —
:func:`repro.obs.enable`, spans, metrics, the logging bridge — lives in
:mod:`repro.obs` and mutates these globals.

``decision_probe`` is split out from ``session`` because the per-decision
scheduler loop is the hottest instrumented site in the library
(~tens of µs per decision at full-machine geometry): it stays ``None``
unless decision sampling was explicitly requested, so enabling plain
event/span telemetry adds *nothing* to the decision loop.
"""

from __future__ import annotations

__all__ = ["session", "decision_probe", "enabled"]

#: the active :class:`repro.obs.session.TelemetrySession`, or None
session = None

#: the active :class:`repro.obs.session.DecisionProbe` (sampled
#: decision-latency timing), or None; set only when the session was
#: enabled with ``sample_decisions=True``
decision_probe = None


def enabled() -> bool:
    """Whether a telemetry session is active (slow-path convenience)."""
    return session is not None
