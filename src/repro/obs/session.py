"""The telemetry session: one enabled run's sinks, registry and probe.

A :class:`TelemetrySession` owns the three instrumentation surfaces —
the structured event log, the span recorder and the metrics registry —
rooted at one telemetry directory (or in memory when ``directory`` is
None). Sessions are installed globally through :func:`repro.obs.enable`
so instrumented library code reaches them via the zero-overhead
:mod:`repro.obs.runtime` attribute check.

Telemetry is "how", never "what": nothing in a session participates in
task config hashes, and nothing here consumes RNG or touches simulation
state, so decisions and metrics are bit-identical with a session
enabled or not (pinned by ``tests/integration/test_obs_identity.py``).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from pathlib import Path

from repro.obs.events import JsonlSink, make_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder

__all__ = ["TelemetrySession", "DecisionProbe", "DEFAULT_DECISION_SAMPLE"]

#: default sampling stride for decision-latency timing: one in every
#: ``N`` scheduler selections is wrapped in ``perf_counter`` calls
DEFAULT_DECISION_SAMPLE = 64


class DecisionProbe:
    """Sampled decision-latency timer for the scheduler selection loop.

    The loop asks :meth:`tick` once per selection (one method call — the
    only cost a telemetry-enabled run adds to unsampled decisions) and
    only wraps the ``select`` in timing when it returns True.
    """

    __slots__ = ("registry", "every", "_n")

    def __init__(self, registry: MetricsRegistry, every: int = DEFAULT_DECISION_SAMPLE):
        if every < 1:
            raise ValueError("decision sample stride must be >= 1")
        self.registry = registry
        self.every = int(every)
        self._n = 0

    def tick(self) -> bool:
        """Count one decision; True when this one should be timed."""
        self._n += 1
        return self._n % self.every == 0

    @property
    def decisions(self) -> int:
        return self._n

    def observe(self, scheduler_name: str, seconds: float) -> None:
        self.registry.histogram(f"sched.decision_us.{scheduler_name}").observe(
            seconds * 1e6
        )
        self.registry.counter("sched.decisions_sampled").inc()


class TelemetrySession:
    """Event log + spans + metrics for one enabled telemetry run."""

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        run_id: str | None = None,
        sample_decisions: bool = False,
        decision_sample_every: int = DEFAULT_DECISION_SAMPLE,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id or f"r-{uuid.uuid4().hex[:8]}"
        self.events = JsonlSink(self.directory, "events")
        self.spans = SpanRecorder(self.directory)
        self.metrics = MetricsRegistry()
        self.decision_probe = (
            DecisionProbe(self.metrics, every=decision_sample_every)
            if sample_decisions
            else None
        )
        self.started_at = time.time()

    # -- surfaces ---------------------------------------------------------

    def event(self, name: str, **fields) -> None:
        """Emit one structured event (bound context merged in)."""
        self.events.write(make_event(name, run_id=self.run_id, **fields))

    def span(self, name: str, **attrs):
        """Context manager timing one nested region."""
        return self.spans.span(name, **attrs)

    # -- metrics snapshots -------------------------------------------------

    def metrics_path(self) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"metrics-{os.getpid()}.json"

    def write_metrics(self, **extra) -> Path | None:
        """Atomically persist this process's metrics snapshot."""
        path = self.metrics_path()
        if path is None:
            return None
        snapshot = self.metrics.snapshot(
            run_id=self.run_id, pid=os.getpid(), started_at=self.started_at, **extra
        )
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(snapshot, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def close(self) -> None:
        """Flush everything; final metrics snapshot included."""
        self.write_metrics(closed=True)
        self.events.close()
        self.spans.close()
