"""The structured event log: bound context + versioned JSONL records.

An *event* is one flat JSON object on one line::

    {"schema": 1, "t": 1722340000.123, "event": "cell_done",
     "run_id": "r-1f3a", "worker_id": "host-411-ab12ef",
     "key": "0a4be2…", "source": "run", "wall_s": 1.92}

``schema`` versions the record layout; ``t`` is the wall-clock epoch
stamp; ``event`` names what happened; everything else is payload —
first the *bound context* (run/worker/cell identifiers attached with
:func:`bind` around a region of code), then the call-site fields, which
win on collision.

Writing goes through :class:`JsonlSink`, which is **fork-aware**: files
are suffixed with the writer's pid (``events-<pid>.jsonl``) and the
sink lazily reopens under a new name when it notices the pid changed,
so pool workers forked mid-session never interleave bytes with their
parent. Every record is flushed on write — an event log that loses its
tail on SIGKILL would be useless for exactly the crashes it exists to
explain.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import time
from pathlib import Path

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "JsonlSink",
    "bind",
    "current_context",
    "make_event",
    "read_jsonl",
    "read_events",
]

EVENT_SCHEMA_VERSION = 1

#: stack of bound context dicts (a contextvar so the heartbeat thread
#: and lockstep generators each see their own bindings)
_CONTEXT: contextvars.ContextVar[tuple] = contextvars.ContextVar(
    "repro_obs_context", default=()
)


def current_context() -> dict:
    """The merged bound context, innermost binding winning."""
    merged: dict = {}
    for layer in _CONTEXT.get():
        merged.update(layer)
    return merged


@contextlib.contextmanager
def bind(**context):
    """Attach ``context`` fields to every event emitted in this scope."""
    token = _CONTEXT.set(_CONTEXT.get() + (context,))
    try:
        yield
    finally:
        _CONTEXT.reset(token)


def make_event(name: str, **fields) -> dict:
    """Assemble one event record (context merged, call-site fields win)."""
    return {
        "schema": EVENT_SCHEMA_VERSION,
        "t": time.time(),
        "event": name,
        **current_context(),
        **fields,
    }


class JsonlSink:
    """A pid-suffixed, fork-aware, flush-per-record JSONL writer.

    ``directory=None`` buffers records in memory instead (``.buffer``) —
    used by tests and by sessions that want metrics/progress without
    touching disk.
    """

    def __init__(self, directory: str | os.PathLike | None, prefix: str) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.prefix = prefix
        self.buffer: list[dict] = []
        self._handle = None
        self._pid: int | None = None

    @property
    def path(self) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{self.prefix}-{os.getpid()}.jsonl"

    def write(self, record: dict) -> None:
        if self.directory is None:
            self.buffer.append(record)
            return
        pid = os.getpid()
        if self._handle is None or pid != self._pid:
            # First write in this process (or first after a fork):
            # open this process's own file. The inherited parent handle
            # is abandoned unflushed-empty, never written through.
            self.directory.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a")
            self._pid = pid
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None and self._pid == os.getpid():
            self._handle.close()
        self._handle = None
        self._pid = None


def read_jsonl(directory: str | os.PathLike, prefix: str) -> list[dict]:
    """All ``<prefix>-*.jsonl`` records under ``directory``, time-sorted.

    Torn tails (a record cut mid-write by a crash) are skipped, matching
    the journal-shard convention everywhere else in the library.
    """
    records: list[dict] = []
    directory = Path(directory)
    for path in sorted(directory.glob(f"{prefix}-*.jsonl")):
        with open(path) as handle:
            for line in handle:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    records.append(json.loads(stripped))
                except json.JSONDecodeError:
                    continue
    records.sort(key=lambda r: r.get("t", 0.0))
    return records


def read_events(directory: str | os.PathLike) -> list[dict]:
    """Every event record a session (and its forked children) wrote."""
    return read_jsonl(directory, "events")
