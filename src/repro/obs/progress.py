"""The live stderr progress line for grid runs.

One carriage-return-refreshed line — done/total cells, cache hits,
elapsed and ETA — written only when the stream is a real terminal (or
the caller forces it): piped stderr, CI logs and ``--json`` runs stay
byte-clean. ETA extrapolates from the *executed* cells' rate, not the
instantly-recalled cache hits, so it stays honest on warm caches.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressLine", "format_duration"]


def format_duration(seconds: float) -> str:
    """``47s`` / ``3m12s`` / ``2h05m`` — compact, fixed-ish width."""
    seconds = max(0.0, float(seconds))
    if seconds < 60.0:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressLine:
    """A ``\\r``-refreshed ``[done/total]`` line on a TTY stream.

    ``enabled=None`` auto-detects: active only when ``stream.isatty()``.
    All methods are no-ops when disabled, so callers never branch.
    """

    def __init__(
        self,
        total: int,
        label: str = "cells",
        stream=None,
        enabled: bool | None = None,
        min_interval: float = 0.1,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", lambda: False)
            enabled = bool(isatty())
        self.enabled = enabled
        self.total = int(total)
        self.label = label
        self.min_interval = min_interval
        self.started_at = time.perf_counter()
        self.done = 0
        self.recalled = 0
        self._executed_t0: float | None = None
        self._last_render = 0.0
        self._width = 0

    def update(self, done: int, recalled: int | None = None, force: bool = False):
        """Refresh the line to ``done`` completed cells.

        ``recalled`` counts cells resolved without execution (cache /
        checkpoint hits); the remainder drives the rate and ETA.
        """
        self.done = int(done)
        if recalled is not None:
            self.recalled = int(recalled)
        if not self.enabled:
            return
        now = time.perf_counter()
        executed = self.done - self.recalled
        if executed > 0 and self._executed_t0 is None:
            self._executed_t0 = now
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self._render(now)

    def _render(self, now: float) -> None:
        elapsed = now - self.started_at
        parts = [f"[{self.done}/{self.total} {self.label}]"]
        if self.recalled:
            parts.append(f"{self.recalled} recalled")
        parts.append(f"elapsed {format_duration(elapsed)}")
        executed = self.done - self.recalled
        remaining = self.total - self.done
        if executed > 0 and remaining > 0 and self._executed_t0 is not None:
            rate = executed / max(now - self._executed_t0, 1e-9)
            if rate > 0:
                parts.append(f"eta {format_duration(remaining / rate)}")
        line = "  ".join(parts)
        pad = max(self._width - len(line), 0)
        self._width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def close(self) -> None:
        """Finish the line (final state + newline)."""
        if not self.enabled:
            return
        self.update(self.done, force=True)
        self.stream.write("\n")
        self.stream.flush()
