"""Dynamic resource prioritizing — the Eq. 1 goal vector (paper §III-B).

The goal vector weights each measurement in the scheduling objective.
MRSch recomputes it every scheduling instance so the fiercest-contended
resource gets the most attention:

.. math::

    r_j = \\frac{\\sum_{i=1}^{N} P_{ij} t_i}
               {\\sum_{j=1}^{R} \\sum_{i=1}^{N} P_{ij} t_i}

where :math:`P_{ij}` is job *i*'s request for resource *j* as a fraction
of capacity, and :math:`t_i` is the user runtime estimate for queued
jobs or the *remaining* estimate for running jobs. The numerator is the
(normalised) time needed to drain all demand for resource *j* at full
utilization — a longer drain time means fiercer contention.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.resources import SystemConfig
from repro.workload.job import Job

__all__ = ["goal_vector", "contention_terms"]


def contention_terms(
    queued: list[Job],
    running: list[Job],
    system: SystemConfig,
    now: float,
) -> np.ndarray:
    """Unnormalised per-resource drain times ``Σ_i P_ij · t_i``.

    When ``queued`` is the simulator's
    :class:`~repro.sched.jobqueue.JobQueue` the queued-job sum is one
    matrix-vector product over its columnar request/walltime arrays
    (same terms, vector summation order) — this runs every scheduling
    instance under dynamic prioritizing, so a Python loop over a deep
    queue would dominate an MRSch replay.
    """
    from repro.sched.jobqueue import JobQueue  # late: avoids an import cycle

    names = system.names
    caps = np.array([system.capacity(n) for n in names], dtype=float)
    if isinstance(queued, JobQueue) and list(queued.names) == names:
        totals = queued.contention_totals(caps)
    else:
        totals = np.zeros(len(names))
        for job in queued:
            req = np.array([job.request(n) for n in names], dtype=float)
            totals += (req / caps) * job.walltime
    for job in running:
        if job.start_time is None:
            raise ValueError(f"running job {job.job_id} has no start time")
        remaining = max(job.walltime - (now - job.start_time), 0.0)
        req = np.array([job.request(n) for n in names], dtype=float)
        totals += (req / caps) * remaining
    return totals


def goal_vector(
    queued: list[Job],
    running: list[Job],
    system: SystemConfig,
    now: float,
) -> np.ndarray:
    """Eq. 1: contention-normalised resource weights (a simplex point).

    With no demand at all, falls back to uniform weights — every
    resource matters equally in an idle system.
    """
    totals = contention_terms(queued, running, system, now)
    denom = totals.sum()
    if denom <= 0:
        return np.full(system.n_resources, 1.0 / system.n_resources)
    return totals / denom
