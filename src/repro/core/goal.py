"""Dynamic resource prioritizing — the Eq. 1 goal vector (paper §III-B).

The goal vector weights each measurement in the scheduling objective.
MRSch recomputes it every scheduling instance so the fiercest-contended
resource gets the most attention:

.. math::

    r_j = \\frac{\\sum_{i=1}^{N} P_{ij} t_i}
               {\\sum_{j=1}^{R} \\sum_{i=1}^{N} P_{ij} t_i}

where :math:`P_{ij}` is job *i*'s request for resource *j* as a fraction
of capacity, and :math:`t_i` is the user runtime estimate for queued
jobs or the *remaining* estimate for running jobs. The numerator is the
(normalised) time needed to drain all demand for resource *j* at full
utilization — a longer drain time means fiercer contention.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.resources import SystemConfig
from repro.workload.job import Job

__all__ = ["goal_vector", "contention_terms"]


def contention_terms(
    queued: list[Job],
    running: list[Job],
    system: SystemConfig,
    now: float,
) -> np.ndarray:
    """Unnormalised per-resource drain times ``Σ_i P_ij · t_i``.

    Both halves are one columnar matrix-vector product each,
    ``(P / caps).T @ t`` over rows in queue/start order — this runs
    every scheduling instance under dynamic prioritizing, so a Python
    loop over a deep queue would dominate an MRSch replay. The shared
    convention also makes the result *bit*-identical between the plain
    ``list`` queue form and the simulator's
    :class:`~repro.sched.jobqueue.JobQueue` (whose
    ``contention_totals`` evaluates the identical product over its
    columnar arrays): the historical per-job running-half loop summed
    in a different float order, which let an exact score tie resolve
    differently between queue forms (~1e-15 relative goal drift, since
    resolved; the bound vs the per-job reference order is pinned by a
    hypothesis property in tests/unit/test_goal.py).
    """
    from repro.sched.jobqueue import JobQueue  # late: avoids an import cycle

    names = system.names
    caps = np.array([system.capacity(n) for n in names], dtype=float)
    if isinstance(queued, JobQueue) and list(queued.names) == names:
        totals = queued.contention_totals(caps)
    else:
        totals = _columnar_terms(queued, names, caps, None, now)
    return totals + _columnar_terms(running, names, caps, "remaining", now)


def _columnar_terms(
    jobs, names: list[str], caps: np.ndarray, time_kind: str | None, now: float
) -> np.ndarray:
    """``(P / caps).T @ t`` over ``jobs`` in iteration order.

    ``time_kind`` selects ``t``: ``None`` uses the full walltime
    estimate (queued jobs), ``"remaining"`` the clamped remaining
    estimate ``max(walltime − (now − start), 0)`` (running jobs).
    """
    rows = []
    t = []
    for job in jobs:
        if time_kind == "remaining":
            if job.start_time is None:
                raise ValueError(f"running job {job.job_id} has no start time")
            t.append(max(job.walltime - (now - job.start_time), 0.0))
        else:
            t.append(job.walltime)
        rows.append([job.request(n) for n in names])
    if not rows:
        return np.zeros(len(names))
    mat = np.asarray(rows, dtype=float)
    return (mat / caps).T @ np.asarray(t)


def goal_vector(
    queued: list[Job],
    running: list[Job],
    system: SystemConfig,
    now: float,
) -> np.ndarray:
    """Eq. 1: contention-normalised resource weights (a simplex point).

    With no demand at all, falls back to uniform weights — every
    resource matters equally in an idle system.
    """
    totals = contention_terms(queued, running, system, now)
    denom = totals.sum()
    if denom <= 0:
        return np.full(system.n_resources, 1.0 / system.n_resources)
    return totals / denom
