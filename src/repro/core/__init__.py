"""MRSch core: the paper's primary contribution.

An intelligent multi-resource scheduling agent built on Direct Future
Prediction (DFP, Dosovitskiy & Koltun 2017), adapted to HPC per §III:

``encoding``
    Vector state encoding — (R+2) elements per window job, 2 per
    resource unit (§III-A).
``goal``
    Dynamic resource prioritizing — the Eq. 1 goal vector (§III-B).
``measurements``
    The measurement vector (per-resource utilization, §III-A).
``dfp``
    The DFP network (three input modules, expectation + normalized
    action streams) and the replay-trained agent.
``cnn_state``
    The CNN state-module variant the paper ablates in Fig. 3.
``mrsch``
    :class:`MRSchScheduler` — the agent plugged into the shared
    window/reservation/backfill machinery.
``training``
    Episode runner and the §III-D three-phase curriculum.
"""

from repro.core.cnn_state import build_cnn_state_module
from repro.core.dfp import DFPAgent, DFPConfig, DFPNetwork
from repro.core.encoding import IncrementalStateEncoder, StateEncoder
from repro.core.goal import goal_vector
from repro.core.measurements import measurement_vector
from repro.core.mrsch import MRSchScheduler
from repro.core.training import TrainingResult, curriculum_training, train_episodes

__all__ = [
    "StateEncoder",
    "IncrementalStateEncoder",
    "goal_vector",
    "measurement_vector",
    "DFPConfig",
    "DFPNetwork",
    "DFPAgent",
    "build_cnn_state_module",
    "MRSchScheduler",
    "train_episodes",
    "curriculum_training",
    "TrainingResult",
]
