"""MRSchScheduler — the DFP agent wired into the scheduling machinery.

Each scheduling instance (§III):

1. the **goal vector** is recomputed from the live contention via Eq. 1
   (dynamic resource prioritizing) and logged for Figs 8–9;
2. for every selection, the window/pool state is encoded (§III-A) —
   by default via the incremental encoder, which patches a persistent
   buffer from pool dirty regions instead of rebuilding the
   full-machine vector — the current measurement (per-resource
   utilization) is read, and the DFP agent scores the whole window in
   one batched pass and picks a slot — ε-greedily during training,
   greedily by goal-weighted predicted outcome at test time;
3. the shared base-class machinery starts fitting selections, reserves
   the first non-fitting one, and EASY-backfills (§III-C).

During training the scheduler records (state, measurement, goal,
action) tuples plus the per-decision measurement timeline; at episode
end the agent converts them into future-measurement-change targets and
runs replay updates.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.resources import SystemConfig
from repro.core.cnn_state import build_cnn_state_module
from repro.core.dfp import DFPAgent, DFPConfig
from repro.core.encoding import IncrementalStateEncoder, StateEncoder
from repro.core.goal import goal_vector
from repro.core.measurements import measurement_vector
from repro.nn.serialize import load_params, save_params
from repro.sched.base import DecisionInputs, Scheduler, SchedulingContext
from repro.workload.job import Job

__all__ = ["MRSchScheduler"]


class MRSchScheduler(Scheduler):
    """Multi-resource DFP scheduling agent (the paper's contribution)."""

    name = "mrsch"

    def __init__(
        self,
        system: SystemConfig,
        window_size: int = 10,
        backfill: bool = True,
        dfp_config: DFPConfig | None = None,
        state_module: str = "mlp",
        agent: DFPAgent | None = None,
        seed: int | np.random.Generator | None = None,
        time_scale: float = 4 * 3600.0,
        prior_weight: float = 2.0,
        dynamic_goal: bool = True,
        incremental_encoding: bool = True,
    ) -> None:
        super().__init__(window_size=window_size, backfill=backfill)
        self.system = system
        self.encoder = StateEncoder(system, window_size=window_size, time_scale=time_scale)
        #: decision-state fast path: patch a persistent state buffer via
        #: pool dirty tracking instead of rebuilding ``state_dim`` zeros
        #: per selection. Bit-identical to ``encoder.encode`` (pinned by
        #: tests/unit/test_encoding_incremental.py); False retains the
        #: fresh-encode reference path.
        self.incremental_encoding = incremental_encoding
        self._inc_encoder = IncrementalStateEncoder(self.encoder)
        config = dfp_config or DFPConfig(
            state_dim=self.encoder.state_dim,
            n_measurements=system.n_resources,
            n_actions=window_size,
            slot_dim=self.encoder.job_dim,
        )
        if config.action_stream == "shared" and config.slot_dim != self.encoder.job_dim:
            raise ValueError(
                f"dfp_config.slot_dim={config.slot_dim} does not match the "
                f"encoder's per-job width {self.encoder.job_dim}"
            )
        if config.state_dim != self.encoder.state_dim:
            raise ValueError(
                f"dfp_config.state_dim={config.state_dim} does not match the "
                f"encoder's {self.encoder.state_dim}"
            )
        if config.n_actions != window_size:
            raise ValueError("dfp_config.n_actions must equal window_size")
        if agent is not None:
            self.agent = agent
        elif state_module == "cnn":
            module, out_dim = build_cnn_state_module(config.state_dim, rng=seed)
            self.agent = DFPAgent(
                config, rng=seed, state_module=module, state_module_out=out_dim
            )
        elif state_module == "mlp":
            self.agent = DFPAgent(config, rng=seed)
        else:
            raise ValueError(f"unknown state_module {state_module!r}")
        self.state_module = state_module
        #: weight of the inference-time feasibility prior. The prior
        #: encodes the §III-C intent directly — prefer currently-fitting
        #: jobs (cheapest goal-weighted demand first) and, when nothing
        #: fits, the longest-waiting job — and the DFP predictions
        #: reorder choices within those classes. This is the
        #: heuristics+RL combination the paper cites from MARS; it makes
        #: the agent robust at laptop-scale training budgets. Set to 0.0
        #: for the pure-DFP policy of the original paper (appropriate
        #: with paper-scale training: 40 job sets / 200k jobs).
        self.prior_weight = prior_weight
        #: §III-B dynamic resource prioritizing. False freezes the goal
        #: at uniform weights — the fixed-priority behaviour the paper's
        #: Fig. 1 argues against; kept for the ablation benchmark.
        self.dynamic_goal = dynamic_goal
        self.training = False
        self._caps = np.array(
            [system.capacity(n) for n in system.names], dtype=float
        )
        #: (time, goal vector) samples of the current run — Figs 8–9
        self.goal_log: list[tuple[float, np.ndarray]] = []
        self._goal = np.full(system.n_resources, 1.0 / system.n_resources)
        self._steps: list[tuple[np.ndarray, np.ndarray, np.ndarray, int]] = []
        self._measurements: list[np.ndarray] = []
        #: inputs/outputs of the last select(), for the trace recorder
        self._last_features: dict | None = None
        self._last_prior: np.ndarray | None = None
        self._last_scores: np.ndarray | None = None
        #: per-decision context staged by prepare_decision for
        #: apply_decision: (state, measurement, mask, reqs, fits,
        #: explore_action)
        self._pending: tuple | None = None

    # -- scheduler hooks ---------------------------------------------------

    def reset(self) -> None:
        super().reset()
        self.goal_log = []
        self._goal = np.full(self.system.n_resources, 1.0 / self.system.n_resources)

    def begin_instance(self, ctx: SchedulingContext) -> None:
        """Dynamic resource prioritizing (§III-B): refresh the goal."""
        if self.dynamic_goal:
            self._goal = goal_vector(ctx.queue, ctx.running, self.system, ctx.now)
        self.goal_log.append((ctx.now, self._goal.copy()))

    def _prior(
        self,
        window: list[Job],
        ctx: SchedulingContext,
        reqs: np.ndarray | None = None,
        fits: np.ndarray | None = None,
    ) -> np.ndarray:
        """Feasibility/age prior over window slots.

        Fitting jobs score in [0.5, 1.5] (lower goal-weighted demand →
        higher), non-fitting jobs in [-1.5, -1.0] (longer queued →
        higher, so the reservation protects the oldest starving job).
        The class gap is wide enough that DFP scores reorder within a
        class but cannot promote a non-fitting grab over a fitting one.

        ``reqs``/``fits`` are the window's request matrix and
        feasibility vector when the caller already holds them (the
        incremental encoder caches both as byproducts of the state
        assembly); feasibility is then free, and otherwise collapses to
        one matrix compare against the pool's live free-count vector —
        the same booleans ``can_fit`` returns for validated jobs.
        """
        n = len(window)
        if reqs is None:
            names = ctx.system.names
            reqs = np.array(
                [[job.request(name) for name in names] for job in window], dtype=float
            )
            fits = np.fromiter(
                (ctx.pool.can_fit(job) for job in window), dtype=bool, count=n
            )
        elif fits is None:
            fits = (reqs <= ctx.pool.free_vector()).all(axis=1)
        demand = (reqs / self._caps) @ self._goal
        prior = np.zeros(self.window_size)
        # Queue order = age order: the oldest non-fitting job outranks
        # younger ones by a full tie-break margin, so the reservation
        # always protects the longest waiter.
        prior[:n] = np.where(fits, 1.5 - demand, -1.5 - 0.1 * np.arange(n))
        return prior

    #: cap on the normalised DFP contribution under the guided policy —
    #: enough to reorder near-ties, never enough to cross prior ranks
    _DFP_TIEBREAK_SCALE = 0.02

    # -- split decision protocol -------------------------------------------
    #
    # select() = prepare_decision → score_decision → apply_decision. The
    # split exists so the batched lockstep driver can stack many
    # episodes' prepared inputs into ONE ``action_scores_batch`` call
    # and feed each episode its score row; run sequentially, the three
    # stages reproduce the monolithic select exactly — including the
    # ε-greedy RNG stream (one ``random()`` draw per training decision,
    # one ``choice`` draw on exploration, ε decay after the action).

    def prepare_decision(
        self, window: list[Job], ctx: SchedulingContext
    ) -> DecisionInputs:
        if self.incremental_encoding:
            # Patch the persistent decision buffer (bit-identical to a
            # fresh encode); the window's raw request rows and
            # feasibility bits come along for free and feed the prior.
            state, reqs, fits = self._inc_encoder.encode_decision(
                window, ctx.pool, ctx.now
            )
            if self.training or self.decision_recorder is not None:
                # Training steps and traces retain the state beyond
                # this decision; the shared buffer must not leak.
                state = state.copy()
        else:
            state = self.encoder.encode(window, ctx.pool, ctx.now)
            reqs = None
            fits = None
        measurement = measurement_vector(ctx.pool)
        mask = self.encoder.window_mask(window)
        self._last_prior = None
        self._last_scores = None
        agent = self.agent
        explore_action: int | None = None
        if self.training and agent._sample_rng.random() < agent.epsilon:
            explore_action = int(agent._sample_rng.choice(np.flatnonzero(mask)))
        self._pending = (state, measurement, mask, reqs, fits, explore_action)
        return DecisionInputs(
            state=state,
            measurement=measurement,
            goal=self._goal,
            needs_scores=explore_action is None,
        )

    def score_decision(self, inputs: DecisionInputs) -> np.ndarray:
        """Single-decision scoring (the B=1 path of the batch scorer)."""
        return self.agent.action_scores(inputs.state, inputs.measurement, inputs.goal)

    def apply_decision(
        self, window: list[Job], ctx: SchedulingContext, scores: np.ndarray | None
    ) -> Job | None:
        assert self._pending is not None, "apply_decision without prepare_decision"
        state, measurement, mask, reqs, fits, explore_action = self._pending
        self._pending = None
        agent = self.agent
        if explore_action is not None:
            action = explore_action
        elif self.prior_weight > 0.0:
            # Prior-guided greedy rule: prior ranks, DFP predictions
            # tie-break (normalised so they reorder near-ties but never
            # cross prior ranks).
            assert scores is not None
            peak = float(np.abs(scores[mask]).max()) if mask.any() else 0.0
            if peak > 0:
                scores = scores * (self._DFP_TIEBREAK_SCALE / peak)
            prior = self._prior(window, ctx, reqs, fits)
            combined = self.prior_weight * prior + scores
            combined = np.where(mask, combined, -np.inf)
            action = int(np.argmax(combined))
            self._last_prior = prior
            self._last_scores = combined
        else:
            assert scores is not None
            action = int(np.argmax(np.where(mask, scores, -np.inf)))
        if self.training:
            agent.epsilon = max(
                agent.config.epsilon_min,
                agent.epsilon * agent.config.epsilon_decay,
            )
        if self.decision_recorder is not None:
            # Assembled only while tracing so the untraced hot path stays
            # allocation-free.
            prior = self._last_prior
            if prior is None and self.prior_weight > 0.0:
                # ε-greedy exploration skipped the guided computation,
                # but a trace must still carry the prior that governs
                # this policy's greedy rule — offline replay would
                # otherwise score the decision with a zero prior.
                prior = self._prior(window, ctx, reqs, fits)
            self._last_features = {
                "state": state,
                "measurement": measurement,
                "goal": self._goal.copy(),
                "prior": prior,
                "scores": self._last_scores,
                "slot_dim": self.encoder.job_dim,
            }
        job = window[action]
        if self.training:
            terminal = not ctx.pool.can_fit(job)  # this pick becomes a reservation
            self._steps.append(
                (state, measurement, self._goal.copy(), action, terminal)
            )
            self._measurements.append(measurement)
        return job

    def select(self, window: list[Job], ctx: SchedulingContext) -> Job | None:
        if not window:
            return None
        inputs = self.prepare_decision(window, ctx)
        scores = self.score_decision(inputs) if inputs.needs_scores else None
        return self.apply_decision(window, ctx, scores)

    def batch_scorer(self):
        """Stacked scoring via the shared agent's batched forward pass."""
        return (self.agent, self.agent.action_scores_batch)

    def lockstep_clone(self) -> "MRSchScheduler":
        """A scheduler for one more lockstep episode, sharing the agent.

        The clone owns its own encoder buffers, goal state and episode
        bookkeeping but scores through the *same* agent (weights,
        workspaces, ε state) — which is exactly what the batched driver
        needs: per-episode mutable state apart, one network.
        """
        clone = MRSchScheduler(
            self.system,
            window_size=self.window_size,
            backfill=self.backfill_enabled,
            dfp_config=self.agent.config,
            state_module=self.state_module,
            agent=self.agent,
            time_scale=self.encoder.time_scale,
            prior_weight=self.prior_weight,
            dynamic_goal=self.dynamic_goal,
            incremental_encoding=self.incremental_encoding,
        )
        clone.training = self.training
        return clone

    def decision_features(self, window: list[Job], ctx: SchedulingContext) -> dict | None:
        """The exact inputs/outputs the last :meth:`select` decided on.

        ``scores`` are the final combined decision scores (``None`` on
        ε-greedy exploration steps or the pure-DFP path, where the agent
        keeps them internal); ``prior`` is the raw feasibility/age prior
        before weighting.
        """
        return self._last_features

    # -- episode lifecycle ------------------------------------------------

    def start_episode(self) -> None:
        self._steps = []
        self._measurements = []

    def finish_episode(self) -> float:
        """Learn from the finished episode; returns the mean replay loss."""
        if not self._steps:
            return 0.0
        self.agent.record_episode(self._steps, self._measurements)
        loss = self.agent.train_epoch()
        self._steps = []
        self._measurements = []
        return loss

    # -- persistence --------------------------------------------------------

    def save(self, path: str) -> None:
        """Checkpoint the trained agent to ``path`` (.npz)."""
        save_params(path, self.agent.state_dict())

    def load(self, path: str) -> None:
        """Restore a checkpoint written by :meth:`save`."""
        self.agent.load_state_dict(load_params(path))

    # -- introspection ---------------------------------------------------------

    def goal_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, goal vectors) logged during the last run."""
        if not self.goal_log:
            return np.zeros(0), np.zeros((0, self.system.n_resources))
        times = np.array([t for t, _ in self.goal_log])
        goals = np.vstack([g for _, g in self.goal_log])
        return times, goals
