"""The DFP measurement vector (paper §III-A).

Feedback in DFP is a *vector* of measurements rather than a scalar
reward. MRSch's measurements are the metrics of the site's scheduling
objective — here, as in the paper, the instantaneous utilization of
every schedulable resource (``<node util, burst-buffer util>`` for the
two-resource setup, plus power for §V-E).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.resources import ResourcePool

__all__ = ["measurement_vector"]


def measurement_vector(pool: ResourcePool) -> np.ndarray:
    """Per-resource utilization in config order, each in [0, 1]."""
    return pool.utilizations()
