"""CNN state-module variant for the Fig. 3 ablation.

The original DFP processes its (image) state with a CNN. MRSch replaces
that with an MLP because the state features — job requests, waiting
times, per-unit availability — carry no spatial locality. The paper
demonstrates the choice empirically (Fig. 3: MLP beats CNN by up to 7%);
this module builds the CNN alternative so the experiment can be rerun.

The flat state vector is viewed as a 1-channel sequence and processed by
two strided Conv1D + leaky-rectifier blocks followed by a Dense
projection to the same output width as the MLP module, making the two
variants drop-in interchangeable inside :class:`~repro.core.dfp.DFPNetwork`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv1D, Dense, Flatten, Layer, LeakyReLU
from repro.nn.network import Sequential
from repro.utils.rng import as_generator, spawn_generators

__all__ = ["build_cnn_state_module"]


class _ToSequence(Layer):
    """View a flat (B, F) state as a (B, F, 1) one-channel sequence."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x[:, :, None]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out[:, :, 0]


def build_cnn_state_module(
    state_dim: int,
    out_dim: int = 128,
    channels: tuple[int, int] = (8, 16),
    kernel_sizes: tuple[int, int] = (9, 5),
    strides: tuple[int, int] = (4, 2),
    rng: np.random.Generator | int | None = None,
) -> tuple[Sequential, int]:
    """Build the CNN state module; returns ``(module, out_dim)``.

    Layer shapes are computed from ``state_dim`` so the module fits any
    system configuration. Raises if the state is too short for the
    requested kernels (tiny toy systems should shrink the kernels).
    """
    rng = as_generator(rng)
    rngs = spawn_generators(rng, 3)
    conv1 = Conv1D(1, channels[0], kernel_sizes[0], stride=strides[0], rng=rngs[0])
    len1 = conv1.output_length(state_dim)
    conv2 = Conv1D(channels[0], channels[1], kernel_sizes[1], stride=strides[1], rng=rngs[1])
    len2 = conv2.output_length(len1)
    flat_dim = len2 * channels[1]
    module = Sequential(
        [
            _ToSequence(),
            conv1,
            LeakyReLU(),
            conv2,
            LeakyReLU(),
            Flatten(),
            Dense(flat_dim, out_dim, rng=rngs[2]),
            LeakyReLU(),
        ]
    )
    return module, out_dim
