"""Episode runner and the §III-D three-phase training curriculum.

Both trainable schedulers — MRSch and the scalar-RL baseline — share the
same episode protocol (``training`` flag, ``start_episode`` /
``finish_episode``), so one runner trains either. The curriculum trainer
consumes the job-set dictionary from
:func:`repro.workload.sampling.build_curriculum` in any phase order,
which is exactly what the Fig. 4 ordering study sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.resources import SystemConfig
from repro.sched.base import Scheduler
from repro.sim.simulator import Simulator
from repro.workload.job import Job

__all__ = ["TrainingResult", "train_episodes", "curriculum_training"]

#: canonical Fig. 4 phase order (fastest convergence in the paper)
DEFAULT_PHASE_ORDER = ("sampled", "real", "synthetic")


@dataclass
class TrainingResult:
    """Loss trajectory of one training run."""

    losses: list[float] = field(default_factory=list)
    phases: list[str] = field(default_factory=list)
    epsilons: list[float] = field(default_factory=list)

    @property
    def episodes(self) -> int:
        return len(self.losses)

    def final_loss(self, tail: int = 5) -> float:
        """Mean loss over the last ``tail`` episodes (convergence level)."""
        if not self.losses:
            return 0.0
        return float(np.mean(self.losses[-tail:]))


def _check_trainable(scheduler: Scheduler) -> None:
    for attr in ("training", "start_episode", "finish_episode"):
        if not hasattr(scheduler, attr):
            raise TypeError(
                f"{scheduler.name} is not trainable (missing {attr!r}); "
                "only MRSch and scalar RL learn from episodes"
            )


def train_episodes(
    scheduler: Scheduler,
    jobsets: list[list[Job]],
    system: SystemConfig,
    phase: str = "train",
    result: TrainingResult | None = None,
    batch_episodes: int = 1,
) -> TrainingResult:
    """Run one training episode per job set and learn after each.

    The scheduler is left in inference mode (``training = False``) when
    done. Passing an existing ``result`` appends, so phases chain.

    ``batch_episodes > 1`` collects that many episodes concurrently in
    lockstep (one batched network call per macro-step via
    :class:`~repro.sim.batched.BatchedSimulator`, each lane a
    ``lockstep_clone`` sharing the agent), then learns from them in
    jobset order. Collection within a group is *synchronous*: every
    lane rolls out under the same pre-group weights, and replay updates
    run after the whole group — the A2C-style batched-rollout regime,
    not a bit-identical replay of the sequential schedule (the shared
    ε-greedy stream interleaves across lanes). Loss/ε trajectories keep
    one entry per jobset either way.
    """
    _check_trainable(scheduler)
    result = result or TrainingResult()
    batch = max(1, int(batch_episodes))
    if batch > 1:
        return _train_episodes_lockstep(
            scheduler, jobsets, system, phase, result, batch
        )
    sim = Simulator(system, scheduler, record_timeline=False)
    try:
        scheduler.training = True  # type: ignore[attr-defined]
        for jobs in jobsets:
            scheduler.start_episode()  # type: ignore[attr-defined]
            sim.run(jobs)
            loss = scheduler.finish_episode()  # type: ignore[attr-defined]
            result.losses.append(loss)
            result.phases.append(phase)
            epsilon = getattr(getattr(scheduler, "agent", None), "epsilon", np.nan)
            result.epsilons.append(float(epsilon))
    finally:
        scheduler.training = False  # type: ignore[attr-defined]
    return result


def _train_episodes_lockstep(
    scheduler: Scheduler,
    jobsets: list[list[Job]],
    system: SystemConfig,
    phase: str,
    result: TrainingResult,
    batch: int,
) -> TrainingResult:
    """Group jobsets into lockstep batches; learn after each group."""
    from repro.sim.batched import BatchedSimulator

    try:
        scheduler.training = True  # type: ignore[attr-defined]
        lanes: list[Scheduler] = [scheduler]
        for _ in range(min(batch, len(jobsets)) - 1):
            clone = scheduler.lockstep_clone()
            if clone is None:
                raise ValueError(
                    f"{scheduler.name} does not support lockstep episode "
                    "collection (no lockstep_clone); use batch_episodes=1"
                )
            _check_trainable(clone)
            lanes.append(clone)
        for i in range(0, len(jobsets), batch):
            chunk = jobsets[i : i + batch]
            group = lanes[: len(chunk)]
            for lane in group:
                lane.start_episode()  # type: ignore[attr-defined]
            if len(chunk) == 1:
                Simulator(system, group[0], record_timeline=False).run(chunk[0])
            else:
                BatchedSimulator(system, group, record_timeline=False).run(chunk)
            for lane in group:
                loss = lane.finish_episode()  # type: ignore[attr-defined]
                result.losses.append(loss)
                result.phases.append(phase)
                epsilon = getattr(getattr(scheduler, "agent", None), "epsilon", np.nan)
                result.epsilons.append(float(epsilon))
    finally:
        scheduler.training = False  # type: ignore[attr-defined]
    return result


def curriculum_training(
    scheduler: Scheduler,
    curriculum: dict[str, list[list[Job]]],
    system: SystemConfig,
    order: tuple[str, ...] = DEFAULT_PHASE_ORDER,
) -> TrainingResult:
    """Train through curriculum phases in the given order (§III-D).

    ``order`` must be a permutation of the curriculum's keys; Fig. 4
    compares all six orderings of (sampled, real, synthetic).
    """
    if sorted(order) != sorted(curriculum.keys()):
        raise ValueError(
            f"order {order} must permute the curriculum phases {sorted(curriculum)}"
        )
    result = TrainingResult()
    for phase in order:
        train_episodes(scheduler, curriculum[phase], system, phase=phase, result=result)
    return result
