"""Episode runner and the §III-D three-phase training curriculum.

Both trainable schedulers — MRSch and the scalar-RL baseline — share the
same episode protocol (``training`` flag, ``start_episode`` /
``finish_episode``), so one runner trains either. The curriculum trainer
consumes the job-set dictionary from
:func:`repro.workload.sampling.build_curriculum` in any phase order,
which is exactly what the Fig. 4 ordering study sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.resources import SystemConfig
from repro.sched.base import Scheduler
from repro.sim.simulator import Simulator
from repro.workload.job import Job

__all__ = ["TrainingResult", "train_episodes", "curriculum_training"]

#: canonical Fig. 4 phase order (fastest convergence in the paper)
DEFAULT_PHASE_ORDER = ("sampled", "real", "synthetic")


@dataclass
class TrainingResult:
    """Loss trajectory of one training run."""

    losses: list[float] = field(default_factory=list)
    phases: list[str] = field(default_factory=list)
    epsilons: list[float] = field(default_factory=list)

    @property
    def episodes(self) -> int:
        return len(self.losses)

    def final_loss(self, tail: int = 5) -> float:
        """Mean loss over the last ``tail`` episodes (convergence level)."""
        if not self.losses:
            return 0.0
        return float(np.mean(self.losses[-tail:]))


def _check_trainable(scheduler: Scheduler) -> None:
    for attr in ("training", "start_episode", "finish_episode"):
        if not hasattr(scheduler, attr):
            raise TypeError(
                f"{scheduler.name} is not trainable (missing {attr!r}); "
                "only MRSch and scalar RL learn from episodes"
            )


def train_episodes(
    scheduler: Scheduler,
    jobsets: list[list[Job]],
    system: SystemConfig,
    phase: str = "train",
    result: TrainingResult | None = None,
) -> TrainingResult:
    """Run one training episode per job set and learn after each.

    The scheduler is left in inference mode (``training = False``) when
    done. Passing an existing ``result`` appends, so phases chain.
    """
    _check_trainable(scheduler)
    result = result or TrainingResult()
    sim = Simulator(system, scheduler, record_timeline=False)
    try:
        scheduler.training = True  # type: ignore[attr-defined]
        for jobs in jobsets:
            scheduler.start_episode()  # type: ignore[attr-defined]
            sim.run(jobs)
            loss = scheduler.finish_episode()  # type: ignore[attr-defined]
            result.losses.append(loss)
            result.phases.append(phase)
            epsilon = getattr(getattr(scheduler, "agent", None), "epsilon", np.nan)
            result.epsilons.append(float(epsilon))
    finally:
        scheduler.training = False  # type: ignore[attr-defined]
    return result


def curriculum_training(
    scheduler: Scheduler,
    curriculum: dict[str, list[list[Job]]],
    system: SystemConfig,
    order: tuple[str, ...] = DEFAULT_PHASE_ORDER,
) -> TrainingResult:
    """Train through curriculum phases in the given order (§III-D).

    ``order`` must be a permutation of the curriculum's keys; Fig. 4
    compares all six orderings of (sampled, real, synthetic).
    """
    if sorted(order) != sorted(curriculum.keys()):
        raise ValueError(
            f"order {order} must permute the curriculum phases {sorted(curriculum)}"
        )
    result = TrainingResult()
    for phase in order:
        train_episodes(scheduler, curriculum[phase], system, phase=phase, result=result)
    return result
