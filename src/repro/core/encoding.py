"""Vector state encoding (paper §III-A).

The original DFP consumes images; MRSch replaces them with a fixed-size
vector because HPC jobs span seconds→weeks, which image rows cannot
express. The encoding concatenates:

* **per window job** (R+2 elements): the fraction of each resource's
  capacity requested, the user runtime estimate, and the time the job
  has queued — absent window slots are zero-padded so the vector size is
  fixed at ``(R+2)·W``;
* **per resource unit** (2 elements): an availability bit (1 = free)
  and, for busy units, the difference between the unit's *estimated*
  available time (start + user walltime) and the current time.

For Theta (W=10, 4392 nodes, 1290 BB units) this yields the paper's
[11410, 1] input; the formula ``(R+2)·W + 2·ΣN_j`` holds for any
configuration. Time features are normalised by a configurable scale and
clipped, keeping activations bounded without hiding ordering.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.resources import ResourcePool, SystemConfig
from repro.workload.job import Job

__all__ = ["StateEncoder", "IncrementalStateEncoder"]

try:  # single-pass clamp ufunc (what np.clip wraps); numpy ≥ 2
    from numpy._core.umath import clip as _clip_ufunc
except ImportError:  # pragma: no cover - numpy < 2
    try:
        from numpy.core.umath import clip as _clip_ufunc
    except ImportError:
        _clip_ufunc = None


def _clamp(x: np.ndarray, lo: float, hi: float, out: np.ndarray) -> np.ndarray:
    """``np.clip(x, lo, hi, out=out)`` minus the Python wrapper layers.

    One fused kernel sweep when the raw ufunc is available, else the
    maximum/minimum pair — elementwise identical either way (min∘max
    with lo ≤ hi is exactly what the clip kernel computes).
    """
    if _clip_ufunc is not None:
        return _clip_ufunc(x, lo, hi, out)
    np.maximum(x, lo, out=out)
    return np.minimum(out, hi, out=out)


def _coalesce_releases(chunks: list[tuple]) -> list[tuple]:
    """Merge *adjacent* release chunks into one scatter fill each.

    Job ends arrive in bursts between scheduling instances, and every
    release writes the same values (available, est 0), so consecutive
    release chunks collapse to a single fill. Two restrictions keep
    this exact:

    * only adjacent runs merge — an allocation later in the drain may
      reuse just-released units (the reservation start at the top of
      an instance does exactly this), so relative order with
      allocation chunks must survive;
    * a chunk joins a run only when the concatenation stays sorted
      (each per-grant array is ascending, so one scalar compare
      decides) — the patch loop's contiguous-slice shortcut infers the
      covered range from the first/last element, which is only sound
      on sorted indices.
    """
    out: list[tuple] = []
    run: list[np.ndarray] = []

    def flush() -> None:
        if run:
            out.append(
                (run[0] if len(run) == 1 else np.concatenate(run), False, 0.0)
            )
            run.clear()

    for chunk in chunks:
        if not chunk[1]:
            idx = chunk[0]
            if run and idx[0] < run[-1][-1]:
                flush()
            run.append(idx)
            continue
        flush()
        out.append(chunk)
    flush()
    return out


class StateEncoder:
    """Encodes (window, pool, clock) into the fixed-size DFP state vector."""

    def __init__(
        self,
        system: SystemConfig,
        window_size: int = 10,
        time_scale: float = 4 * 3600.0,
        time_clip: float = 8.0,
        paper_layout: bool = False,
    ) -> None:
        """``paper_layout=True`` reproduces the exact §III-A job vector of
        (R+2) elements. The default additionally appends R per-resource
        *shortfall* fractions, ``max(0, request − free)/capacity``, to
        each job — information already present in the per-unit
        availability block, restated compactly so that whether a job
        currently fits is linearly readable. At the paper's training
        volume the network can distil this from the raw availability
        bits; at laptop-scale budgets the restatement is what makes the
        fit condition learnable (see DESIGN.md §2).
        """
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.system = system
        self.window_size = window_size
        self.time_scale = time_scale
        self.time_clip = time_clip
        self.paper_layout = paper_layout
        self._caps = np.array([system.capacity(n) for n in system.names], dtype=float)
        self._n_units = int(sum(system.capacity(n) for n in system.names))
        # Reused per-call scratch: the window request matrix. Rows are
        # refilled in place each encode, so window-block assembly
        # allocates nothing per decision beyond the state vector itself.
        self._reqs_buf = np.zeros((window_size, system.n_resources))
        self._checked_config: SystemConfig | None = None

    def _check_pool(self, pool: ResourcePool) -> None:
        """Reject pools whose resource layout differs from the system's.

        The encoder reads the pool's config-ordered vectors
        positionally, so name order and capacities must line up.
        Validated once per config object (one identity compare per call
        thereafter) — the config is cached rather than the pool so the
        encoder never pins a finished run's pool state alive.
        """
        config = pool.config
        if config is self._checked_config:
            return
        if config is not self.system and (
            config.names != self.system.names
            or any(
                config.capacity(n) != self.system.capacity(n)
                for n in self.system.names
            )
        ):
            raise ValueError(
                "pool resource layout does not match the encoder's system "
                f"({config.names} vs {self.system.names})"
            )
        self._checked_config = config

    @property
    def n_resources(self) -> int:
        return self.system.n_resources

    @property
    def job_dim(self) -> int:
        """Elements per window job: R request fractions + runtime +
        queued (+ R shortfall fractions unless ``paper_layout``)."""
        base = self.n_resources + 2
        return base if self.paper_layout else base + self.n_resources

    @property
    def state_dim(self) -> int:
        """Total state vector length: ``job_dim·W + 2·ΣN_j``."""
        return self.job_dim * self.window_size + 2 * self._n_units

    def _squash(self, seconds: float | np.ndarray) -> float | np.ndarray:
        return np.clip(np.asarray(seconds) / self.time_scale, 0.0, self.time_clip)

    def encode(self, window: list[Job], pool: ResourcePool, now: float) -> np.ndarray:
        """Build the state vector for one scheduling instance."""
        if len(window) > self.window_size:
            raise ValueError(
                f"window has {len(window)} jobs, encoder sized for {self.window_size}"
            )
        self._check_pool(pool)
        state = np.zeros(self.state_dim)
        per = self.job_dim
        names = self.system.names
        if window:
            # One vectorised fill of every populated slot's feature block.
            # ``free_vector`` is the pool's live config-ordered counter
            # array (read-only here) and ``_reqs_buf`` a reused scratch
            # matrix — no per-call temporaries beyond the state itself.
            free = pool.free_vector()
            reqs = self._reqs_buf[: len(window)]
            for i, job in enumerate(window):
                for k, name in enumerate(names):
                    reqs[i, k] = job.request(name)
            slots = state[: len(window) * per].reshape(len(window), per)
            slots[:, : self.n_resources] = reqs / self._caps
            slots[:, self.n_resources] = self._squash(
                np.array([job.walltime for job in window])
            )
            slots[:, self.n_resources + 1] = self._squash(
                now - np.array([job.submit_time for job in window])
            )
            if not self.paper_layout:
                slots[:, self.n_resources + 2 :] = (
                    np.maximum(reqs - free, 0.0) / self._caps
                )

        offset = per * self.window_size
        for name, cap in zip(names, self._caps):
            n = int(cap)
            avail = state[offset : offset + n]
            ttf = state[offset + n : offset + 2 * n]
            # In-place fill + squash of the per-unit block — the per
            # decision unit_state/clip temporaries this replaces were
            # the encoder's main allocation cost.
            pool.fill_unit_state(name, now, avail, ttf)
            np.divide(ttf, self.time_scale, out=ttf)
            np.clip(ttf, 0.0, self.time_clip, out=ttf)
            offset += 2 * n
        return state

    def window_mask(self, window: list[Job]) -> np.ndarray:
        """Boolean mask of populated window slots (the valid actions)."""
        mask = np.zeros(self.window_size, dtype=bool)
        mask[: min(len(window), self.window_size)] = True
        return mask


class IncrementalStateEncoder:
    """Maintains the §III-A state vector *across* decisions.

    :meth:`StateEncoder.encode` rebuilds the full ``(R+2)·W + 2·ΣN_j``
    vector from zeros for every scheduling decision — at real Theta
    scale an 11k-element reconstruction whose per-unit block barely
    changes between consecutive decisions. This encoder keeps one
    persistent state buffer and patches it instead:

    * **availability bits** are rewritten only at the unit indices a
      registered :class:`~repro.cluster.resources.PoolDirtyTracker`
      reports as touched by ``allocate``/``release`` since the last
      decision;
    * **time-to-free** derives from a contiguous mirror of every unit's
      estimated free time, so a clock advance is one fused vectorized
      subtract → clamp → scale → clip over all units (no per-resource
      Python loop), and decisions *within* a scheduling instance (same
      clock) patch only the dirty units;
    * **window job blocks** cache each job's static features (raw and
      fractional requests, squashed walltime, submit time) keyed by job
      identity, so a window that merely *shifted* after a start costs a
      few row copies; per decision only the queued-time and shortfall
      columns are recomputed, as two short vectorized passes.

    The output is **bit-identical** to ``StateEncoder.encode`` on the
    same (window, pool, clock) — every feature is produced by the same
    elementwise IEEE operations in the same order, only batched
    differently. The hypothesis property test in
    ``tests/unit/test_encoding_incremental.py`` pins this over random
    allocate/release/clock histories in both layout modes.

    The returned array is the encoder's own buffer: valid until the
    next :meth:`encode` call, never to be mutated by the caller. Take a
    ``.copy()`` to retain it (the MRSch scheduler does exactly that
    when training or tracing).
    """

    def __init__(self, base: StateEncoder) -> None:
        self.base = base
        system = base.system
        self._names = system.names
        self._n_res = system.n_resources
        #: per-resource unit counts, state offsets of the avail/ttf
        #: halves, and segment offsets into the contiguous est mirror
        self._unit_counts = [int(system.capacity(n)) for n in self._names]
        self._avail_off: list[int] = []
        self._ttf_off: list[int] = []
        self._seg_off: list[int] = []
        offset = base.job_dim * base.window_size
        seg = 0
        for n_units in self._unit_counts:
            self._avail_off.append(offset)
            self._ttf_off.append(offset + n_units)
            self._seg_off.append(seg)
            offset += 2 * n_units
            seg += n_units
        self._name_pos = {name: r for r, name in enumerate(self._names)}
        # Immutable encoder parameters, denormalised from ``base`` so
        # the per-decision path never re-evaluates properties.
        self._per = base.job_dim
        self._ts = base.time_scale
        self._tclip = base.time_clip
        self._caps = base._caps
        self._paper = base.paper_layout

        self._state = np.zeros(base.state_dim)
        #: the window block as a (W, job_dim) view, cached once
        self._slots_all = self._state[
            : base.window_size * base.job_dim
        ].reshape(base.window_size, base.job_dim)
        #: contiguous est-free mirror of every unit (config order) and
        #: the equally-shaped scratch the fused time-to-free pass fills
        self._est_all = np.zeros(base._n_units)
        self._ttf_scratch = np.zeros(base._n_units)

        w, r = base.window_size, self._n_res
        self._reqs = np.zeros((w, r))
        self._submits: list[float] = [0.0] * w
        self._slot_jobs: list[Job | None] = [None] * w
        self._scr_wr = np.zeros((w, r))
        self._scr_wr_b = np.empty((w, r), dtype=bool)
        self._fits = np.empty(w, dtype=bool)
        self._fits_valid = False
        self._move_scratch = np.empty(w * base.job_dim)
        self._n_slots = 0
        #: id(job) → (job, raw requests, request fractions, squashed
        #: walltime, submit time). The job reference keeps the object
        #: alive, so a live id() can never be recycled onto a different
        #: job; bounded by wholesale clearing when it outgrows any
        #: plausible working set.
        self._job_cache: dict[int, tuple] = {}

        self._pool: ResourcePool | None = None
        self._tracker = None
        self._last_now: float | None = None

    # -- attachment --------------------------------------------------------

    def attach(self, pool: ResourcePool) -> None:
        """Bind to ``pool``; detaches from any previous pool first.

        Called lazily by :meth:`encode` whenever the pool object
        changes (a new simulator run builds a new pool), so callers
        normally never invoke it directly.
        """
        if self._pool is pool:
            return
        self.base._check_pool(pool)
        self.detach()
        self._pool = pool
        self._tracker = pool.register_tracker()
        self._invalidate()

    def detach(self) -> None:
        """Drop the pool binding and its dirty tracker."""
        if self._pool is not None and self._tracker is not None:
            self._pool.unregister_tracker(self._tracker)
        self._pool = None
        self._tracker = None
        self._invalidate()

    def _invalidate(self) -> None:
        self._last_now = None
        self._slot_jobs = [None] * self.base.window_size
        self._state[: self.base.job_dim * self.base.window_size] = 0.0
        self._n_slots = 0
        self._job_cache.clear()
        if self._tracker is not None:
            self._tracker.mark_all()

    # -- encoding ----------------------------------------------------------

    def encode(self, window: list[Job], pool: ResourcePool, now: float) -> np.ndarray:
        """Patch the persistent buffer to (window, pool, now) and return it."""
        base = self.base
        if len(window) > base.window_size:
            raise ValueError(
                f"window has {len(window)} jobs, encoder sized for {base.window_size}"
            )
        if pool is not self._pool:
            self.attach(pool)
        same_clock = self._last_now is not None and now == self._last_now
        self._patch_units(pool, now, same_clock)
        self._fill_window(window, pool, now, same_clock)
        self._last_now = now
        return self._state

    def encode_decision(
        self, window: list[Job], pool: ResourcePool, now: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One call per decision: ``(state, requests, fits)``.

        The scheduler's per-selection bundle — the state buffer plus
        the window's raw request rows and feasibility bits, all three
        views into this encoder's reused storage (valid until the next
        encode, read-only).
        """
        state = self.encode(window, pool, now)
        n = self._n_slots
        self._ensure_fits(pool)
        return state, self._reqs[:n], self._fits[:n]

    def _ensure_fits(self, pool: ResourcePool) -> None:
        """Materialise the feasibility bits for the last encoded window.

        Usually a byproduct of the shortfall columns; this fallback
        covers ``paper_layout`` mode (no shortfall block) and empty
        windows.
        """
        if self._fits_valid:
            return
        n = self._n_slots
        if n:
            np.all(
                self._reqs[:n] <= pool.free_vector(), axis=1, out=self._fits[:n]
            )
        self._fits_valid = True

    def _patch_units(self, pool: ResourcePool, now: float, same_clock: bool) -> None:
        # Clamping goes through :func:`_clamp` (the raw clip kernel)
        # rather than ``np.clip``: identical elementwise results,
        # without np.clip's Python dispatch layers (~µs per call, which
        # at one or two calls per decision is real money here).
        state = self._state
        ts = self._ts
        clip = self._tclip
        dirty = self._tracker.drain()
        if dirty is None:
            # Full rebuild of the availability bits and the est mirror;
            # the fused pass below recomputes every time-to-free.
            for r, name in enumerate(self._names):
                busy, est = pool.unit_arrays(name)
                n = self._unit_counts[r]
                a0 = self._avail_off[r]
                np.subtract(1.0, busy, out=state[a0 : a0 + n])
                s0 = self._seg_off[r]
                self._est_all[s0 : s0 + n] = est
            same_clock = False
        else:
            for name, chunks in dirty.items():
                r = self._name_pos[name]
                n = self._unit_counts[r]
                a0, t0, s0 = self._avail_off[r], self._ttf_off[r], self._seg_off[r]
                if len(chunks) > 8 or sum(c[0].size for c in chunks) * 4 > n:
                    # Wide or fragmented dirty region: contiguous sweeps
                    # from the live pool arrays beat per-chunk patching.
                    busy, est = pool.unit_arrays(name)
                    np.subtract(1.0, busy, out=state[a0 : a0 + n])
                    est_seg = self._est_all[s0 : s0 + n]
                    est_seg[...] = est
                    if same_clock:
                        seg = self._ttf_scratch[s0 : s0 + n]
                        np.subtract(est_seg, now, out=seg)
                        np.divide(seg, ts, out=seg)
                        _clamp(seg, 0.0, clip, out=state[t0 : t0 + n])
                    continue
                if len(chunks) > 1:
                    chunks = _coalesce_releases(chunks)
                avail = state[a0 : a0 + n]
                ttf_block = state[t0 : t0 + n]
                est_seg = self._est_all[s0 : s0 + n]
                for idx, became_busy, est_val in chunks:
                    # One mutation's units share one availability bit,
                    # one estimated free time, and therefore (at a fixed
                    # clock) one time-to-free — three scalar fills, no
                    # reads of the pool arrays at all. The scalar
                    # arithmetic is the same IEEE-double sequence the
                    # reference applies per element.
                    avail_val = 0.0 if became_busy else 1.0
                    lo = int(idx[0])
                    hi = int(idx[-1]) + 1
                    where = slice(lo, hi) if hi - lo == idx.size else idx
                    avail[where] = avail_val
                    est_seg[where] = est_val
                    if same_clock:
                        ttf_block[where] = min(
                            max((est_val - now) / ts, 0.0), clip
                        )
        if not same_clock:
            # Whole-machine time-to-free for the new clock: vectorized
            # sweeps over the contiguous est mirror, the final clamp
            # landing straight in the state's per-resource ttf slices
            # (no per-unit Python work, no intermediate copies). The
            # reference path clamps negatives *before* scaling
            # (max(est−now, 0)/ts then clip); with ts > 0 the clamp
            # commutes with the division, so clamp(x/ts) yields
            # bit-identical values in one fewer sweep.
            scratch = self._ttf_scratch
            np.subtract(self._est_all, now, out=scratch)
            np.divide(scratch, ts, out=scratch)
            for r in range(self._n_res):
                n = self._unit_counts[r]
                t0, s0 = self._ttf_off[r], self._seg_off[r]
                _clamp(scratch[s0 : s0 + n], 0.0, clip, out=state[t0 : t0 + n])

    def _fill_window(
        self, window: list[Job], pool: ResourcePool, now: float, same_clock: bool
    ) -> None:
        state = self._state
        per = self._per
        n = len(window)
        nr = self._n_res
        slot_jobs = self._slot_jobs
        cache = self._job_cache
        ts, tclip = self._ts, self._tclip
        prev_n = self._n_slots
        self._fits_valid = False

        # Shift fast path: the dominant window transition in the §III-C
        # loop is "job at position a started, later slots moved up one".
        # Three block moves relocate every surviving row — state block
        # (queued time rides along, still valid at the same clock),
        # request matrix, submit times — instead of per-slot rewrites.
        if n and prev_n:
            a = 0
            bound = min(n, prev_n)
            while a < bound and slot_jobs[a] is window[a]:
                a += 1
            shift_len = min(prev_n - 1, n) - a
            if shift_len > 0 and all(
                slot_jobs[a + 1 + j] is window[a + j] for j in range(shift_len)
            ):
                hi = a + shift_len
                # Move the surviving rows down through a preallocated
                # scratch (overlapping same-array assignment would make
                # NumPy allocate a temporary per shift).
                move = self._move_scratch[: shift_len * per]
                move[...] = state[(a + 1) * per : (hi + 1) * per]
                state[a * per : hi * per] = move
                self._reqs[a:hi] = self._reqs[a + 1 : hi + 1]
                self._submits[a:hi] = self._submits[a + 1 : hi + 1]
                slot_jobs[a:hi] = slot_jobs[a + 1 : hi + 1]
                slot_jobs[hi] = None  # the vacated tail position is stale

        for i, job in enumerate(window):
            if slot_jobs[i] is job:
                continue
            slot_jobs[i] = job
            entry = cache.get(id(job))
            if entry is None or entry[0] is not job:
                # First sight of this job: extract and pre-normalise its
                # static features. Scalar Python arithmetic — ``/``,
                # ``min``/``max`` — performs the same IEEE-double
                # operations as the reference's vectorized divide/clip,
                # so the cached values are bit-identical to a fresh
                # encode of the same job.
                raw = np.array(
                    [job.request(name) for name in self._names], dtype=float
                )
                entry = (
                    job,
                    raw,
                    raw / self._caps,
                    min(max(job.walltime / ts, 0.0), tclip),
                    job.submit_time,
                )
                if len(cache) > 8192:
                    cache.clear()
                cache[id(job)] = entry
            # Static columns land in the state once per (slot, job)
            # pairing; only the time/feasibility columns below move
            # between decisions.
            self._reqs[i] = entry[1]
            row = state[i * per : (i + 1) * per]
            row[:nr] = entry[2]
            row[nr] = entry[3]
            self._submits[i] = entry[4]
            if same_clock:
                # Queued time for a freshly-placed slot, scalar IEEE
                # arithmetic again; unshifted/shifted rows already
                # carry the correct value for this clock.
                row[nr + 1] = min(max((now - entry[4]) / ts, 0.0), tclip)
        if n:
            slots = self._slots_all[:n]
            if not same_clock:
                # Queued time moved for every populated slot; at W ≤ 10
                # a scalar loop beats vectorized dispatch, and the
                # Python arithmetic is IEEE-identical to the reference.
                submits = self._submits
                col = nr + 1
                for i in range(n):
                    state[i * per + col] = min(
                        max((now - submits[i]) / ts, 0.0), tclip
                    )
            if not self._paper:
                # The shortfall columns depend on the live free counts,
                # which essentially always moved between decisions (a
                # start or a release is what triggers re-selection).
                # The subtract intermediate doubles as the feasibility
                # test: request ≤ free ⟺ request − free ≤ 0 (exact in
                # doubles for unit counts), serving window_fits.
                short = self._scr_wr[:n]
                np.subtract(self._reqs[:n], pool.free_vector(), out=short)
                fits_wr = self._scr_wr_b[:n]
                np.less_equal(short, 0.0, out=fits_wr)
                np.logical_and.reduce(fits_wr, axis=1, out=self._fits[:n])
                self._fits_valid = True
                np.maximum(short, 0.0, out=short)
                np.divide(short, self._caps, out=slots[:, nr + 2 :])
        if n < prev_n:
            # Slots that held jobs last decision but are empty now must
            # read as zero padding, exactly like a fresh encode.
            state[n * per : prev_n * per] = 0.0
            for i in range(n, prev_n):
                slot_jobs[i] = None
        self._n_slots = n

    def window_requests(self, n: int) -> np.ndarray:
        """The raw request matrix of the last encoded window's first
        ``n`` slots (units, not fractions). Valid until the next
        :meth:`encode`; read-only. Lets the MRSch feasibility prior
        reuse the rows instead of re-extracting them per decision.
        """
        if n > self._n_slots:
            raise ValueError(f"last encode populated {self._n_slots} slots, not {n}")
        return self._reqs[:n]

    def window_fits(self, n: int, pool: ResourcePool) -> np.ndarray:
        """Per-slot feasibility of the last encoded window — the same
        booleans ``pool.can_fit`` yields for validated jobs. Usually a
        byproduct of the shortfall columns (computed at that instant's
        free counts); recomputed here only in ``paper_layout`` mode.
        Valid until the next :meth:`encode`; read-only.
        """
        if n > self._n_slots:
            raise ValueError(f"last encode populated {self._n_slots} slots, not {n}")
        self._ensure_fits(pool)
        return self._fits[:n]
