"""Vector state encoding (paper §III-A).

The original DFP consumes images; MRSch replaces them with a fixed-size
vector because HPC jobs span seconds→weeks, which image rows cannot
express. The encoding concatenates:

* **per window job** (R+2 elements): the fraction of each resource's
  capacity requested, the user runtime estimate, and the time the job
  has queued — absent window slots are zero-padded so the vector size is
  fixed at ``(R+2)·W``;
* **per resource unit** (2 elements): an availability bit (1 = free)
  and, for busy units, the difference between the unit's *estimated*
  available time (start + user walltime) and the current time.

For Theta (W=10, 4392 nodes, 1290 BB units) this yields the paper's
[11410, 1] input; the formula ``(R+2)·W + 2·ΣN_j`` holds for any
configuration. Time features are normalised by a configurable scale and
clipped, keeping activations bounded without hiding ordering.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.resources import ResourcePool, SystemConfig
from repro.workload.job import Job

__all__ = ["StateEncoder"]


class StateEncoder:
    """Encodes (window, pool, clock) into the fixed-size DFP state vector."""

    def __init__(
        self,
        system: SystemConfig,
        window_size: int = 10,
        time_scale: float = 4 * 3600.0,
        time_clip: float = 8.0,
        paper_layout: bool = False,
    ) -> None:
        """``paper_layout=True`` reproduces the exact §III-A job vector of
        (R+2) elements. The default additionally appends R per-resource
        *shortfall* fractions, ``max(0, request − free)/capacity``, to
        each job — information already present in the per-unit
        availability block, restated compactly so that whether a job
        currently fits is linearly readable. At the paper's training
        volume the network can distil this from the raw availability
        bits; at laptop-scale budgets the restatement is what makes the
        fit condition learnable (see DESIGN.md §2).
        """
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.system = system
        self.window_size = window_size
        self.time_scale = time_scale
        self.time_clip = time_clip
        self.paper_layout = paper_layout
        self._caps = np.array([system.capacity(n) for n in system.names], dtype=float)
        self._n_units = int(sum(system.capacity(n) for n in system.names))

    @property
    def n_resources(self) -> int:
        return self.system.n_resources

    @property
    def job_dim(self) -> int:
        """Elements per window job: R request fractions + runtime +
        queued (+ R shortfall fractions unless ``paper_layout``)."""
        base = self.n_resources + 2
        return base if self.paper_layout else base + self.n_resources

    @property
    def state_dim(self) -> int:
        """Total state vector length: ``job_dim·W + 2·ΣN_j``."""
        return self.job_dim * self.window_size + 2 * self._n_units

    def _squash(self, seconds: float | np.ndarray) -> float | np.ndarray:
        return np.clip(np.asarray(seconds) / self.time_scale, 0.0, self.time_clip)

    def encode(self, window: list[Job], pool: ResourcePool, now: float) -> np.ndarray:
        """Build the state vector for one scheduling instance."""
        if len(window) > self.window_size:
            raise ValueError(
                f"window has {len(window)} jobs, encoder sized for {self.window_size}"
            )
        state = np.zeros(self.state_dim)
        per = self.job_dim
        names = self.system.names
        if window:
            # One vectorised fill of every populated slot's feature block.
            free = np.array([pool.free_units(n) for n in names], dtype=float)
            reqs = np.array(
                [[job.request(n) for n in names] for job in window], dtype=float
            )
            slots = state[: len(window) * per].reshape(len(window), per)
            slots[:, : self.n_resources] = reqs / self._caps
            slots[:, self.n_resources] = self._squash(
                np.array([job.walltime for job in window])
            )
            slots[:, self.n_resources + 1] = self._squash(
                now - np.array([job.submit_time for job in window])
            )
            if not self.paper_layout:
                slots[:, self.n_resources + 2 :] = (
                    np.maximum(reqs - free, 0.0) / self._caps
                )

        offset = per * self.window_size
        for name, cap in zip(names, self._caps):
            n = int(cap)
            avail = state[offset : offset + n]
            ttf = state[offset + n : offset + 2 * n]
            # In-place fill + squash of the per-unit block — the per
            # decision unit_state/clip temporaries this replaces were
            # the encoder's main allocation cost.
            pool.fill_unit_state(name, now, avail, ttf)
            np.divide(ttf, self.time_scale, out=ttf)
            np.clip(ttf, 0.0, self.time_clip, out=ttf)
            offset += 2 * n
        return state

    def window_mask(self, window: list[Job]) -> np.ndarray:
        """Boolean mask of populated window slots (the valid actions)."""
        mask = np.zeros(self.window_size, dtype=bool)
        mask[: min(len(window), self.window_size)] = True
        return mask
