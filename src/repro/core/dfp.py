"""Direct Future Prediction (DFP) network and agent.

DFP (Dosovitskiy & Koltun, ICLR 2017) is the multi-objective RL
algorithm MRSch builds on. Instead of a scalar value function it learns
to *predict the future measurement changes* each action would cause,
conditioned on the current state, measurement and goal; acting is then
goal-weighted argmax over predictions, which lets the objective change
at runtime simply by changing the goal vector — no retraining.

Architecture (paper §II-B / Fig. 2):

* three input modules — state ``s`` (MLP here, §III-A; CNN variant in
  :mod:`repro.core.cnn_state`), measurement ``m`` and goal ``g`` — whose
  outputs are concatenated into a joint representation ``j``;
* two parallel streams on ``j``, following the dueling architecture:
  an **expectation stream** predicting the action-averaged future
  measurement change, and an **action stream** predicting per-action
  deviations, normalised to zero mean across actions;
* the prediction for action ``a`` is ``expectation + normalised(a)``,
  one value per (measurement, temporal offset) pair.

Training regresses predictions of the *taken* action onto realised
future measurement changes at several temporal offsets (MSE), from an
experience-replay buffer, with an ε-greedy behaviour policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Dense, LeakyReLU
from repro.nn.losses import mse_loss
from repro.nn.network import InferenceWorkspace, Sequential
from repro.nn.optim import Adam
from repro.utils.rng import as_generator, spawn_generators

__all__ = ["DFPConfig", "DFPNetwork", "DFPAgent", "Experience", "StratifiedReplay"]


@dataclass(frozen=True)
class DFPConfig:
    """Hyper-parameters of the DFP network and agent.

    Defaults are sized for the miniature experiment system; the paper's
    full-scale Theta network (§IV-C: 4000/1000 hidden units, 512-d state
    output, 128-unit measurement/goal modules) is available via
    :meth:`paper_scale`.
    """

    state_dim: int
    n_measurements: int
    n_actions: int
    #: temporal offsets, in scheduling decisions, at which future
    #: measurement changes are predicted. Starting at 2 (not 1) dilutes
    #: the instantaneous "grab the biggest job" signal that short
    #: horizons over-reward; see EXPERIMENTS.md calibration notes.
    offsets: tuple[int, ...] = (2, 4, 8, 16)
    #: relative weight of each offset in the action-selection objective;
    #: later offsets matter more (long-term effect), as in the DFP paper
    temporal_weights: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    state_hidden: tuple[int, int] = (256, 128)
    state_out: int = 128
    module_hidden: int = 64
    module_out: int = 64
    stream_hidden: int = 128
    #: action-stream weight sharing: "shared" scores every window slot
    #: with one head over (joint representation, that slot's job
    #: features) — far more sample-efficient at laptop training budgets;
    #: "dense" is the paper's monolithic stream (one output block per
    #: action), appropriate at paper-scale training volumes.
    action_stream: str = "shared"
    #: per-slot feature width inside the state vector (R+2 for the
    #: §III-A encoding); used only by the shared action stream, which
    #: slices slot features from the state input.
    slot_dim: int | None = None
    lr: float = 5e-4
    batch_size: int = 64
    replay_capacity: int = 20_000
    train_batches_per_episode: int = 128
    epsilon_start: float = 1.0
    epsilon_min: float = 0.03
    #: per-decision ε decay rate (paper: α = 0.995 per episode at
    #: paper-scale training; per-decision 0.999 at laptop scale)
    epsilon_decay: float = 0.999
    grad_clip: float = 10.0

    def __post_init__(self) -> None:
        if self.state_dim <= 0 or self.n_measurements <= 0 or self.n_actions <= 0:
            raise ValueError("dimensions must be positive")
        if len(self.offsets) != len(self.temporal_weights):
            raise ValueError("offsets and temporal_weights must have equal length")
        if any(o <= 0 for o in self.offsets):
            raise ValueError("offsets must be positive")
        if list(self.offsets) != sorted(self.offsets):
            raise ValueError("offsets must be increasing")
        if not 0.0 <= self.epsilon_min <= self.epsilon_start <= 1.0:
            raise ValueError("invalid epsilon range")
        if not 0.0 < self.epsilon_decay <= 1.0:
            raise ValueError("epsilon_decay must be in (0, 1]")
        if self.action_stream not in ("shared", "dense"):
            raise ValueError("action_stream must be 'shared' or 'dense'")
        if self.action_stream == "shared":
            slot = self.slot_dim if self.slot_dim is not None else 0
            if slot <= 0:
                # Default to the §III-A layout: R+2 features per slot.
                object.__setattr__(self, "slot_dim", self.n_measurements + 2)
            if self.slot_dim * self.n_actions > self.state_dim:
                raise ValueError(
                    "state vector too short for n_actions slots of slot_dim features"
                )

    @property
    def n_offsets(self) -> int:
        return len(self.offsets)

    @property
    def pred_dim(self) -> int:
        """Prediction size per action: one value per (measurement, offset)."""
        return self.n_measurements * self.n_offsets

    @classmethod
    def paper_scale(cls, state_dim: int, n_measurements: int, n_actions: int) -> "DFPConfig":
        """The §IV-C full-scale architecture."""
        return cls(
            state_dim=state_dim,
            n_measurements=n_measurements,
            n_actions=n_actions,
            state_hidden=(4000, 1000),
            state_out=512,
            module_hidden=128,
            module_out=128,
            stream_hidden=512,
            action_stream="dense",
        )


@dataclass
class Experience:
    """One decision: inputs, the action taken, and its realised future.

    ``terminal`` marks a selection whose job did not fit (it became the
    instance's reservation). These are structurally rare — at most one
    per scheduling instance — so replay sampling stratifies on the flag
    to keep the "don't grab what doesn't fit" signal from being drowned
    out by the abundant fitting-selection experiences.
    """

    state: np.ndarray
    measurement: np.ndarray
    goal: np.ndarray
    action: int
    target: np.ndarray  # (pred_dim,) realised future measurement changes
    terminal: bool = False


class StratifiedReplay:
    """Bounded experience store with O(1)-indexable terminal strata.

    The stratified minibatch draw needs the terminal and non-terminal
    experiences as separately indexable sequences. Filtering the whole
    buffer per minibatch — the previous implementation — is an
    O(capacity) scan repeated ``train_batches_per_episode`` times per
    episode (millions of touches at the default 20k capacity). This
    store maintains the two strata incrementally instead: appends go to
    the chronological list *and* their stratum, evictions at capacity
    advance head cursors (the oldest element overall is by construction
    the oldest of its stratum), and dead prefixes are compacted away
    amortized O(1).

    Iteration order, indexing and eviction order are exactly those of a
    ``deque(maxlen=capacity)``, and the strata match what filtering that
    deque would produce — the replay draw is bit-identical.
    """

    def __init__(self, maxlen: int) -> None:
        if maxlen <= 0:
            raise ValueError("replay capacity must be positive")
        self.maxlen = maxlen
        self._all: list[Experience] = []
        self._term: list[Experience] = []
        self._reg: list[Experience] = []
        self._all_head = 0
        self._term_head = 0
        self._reg_head = 0

    def __len__(self) -> int:
        return len(self._all) - self._all_head

    def __iter__(self):
        return iter(self._all[self._all_head :])

    def __getitem__(self, index: int) -> Experience:
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("replay index out of range")
        return self._all[self._all_head + index]

    @property
    def n_terminal(self) -> int:
        return len(self._term) - self._term_head

    @property
    def n_regular(self) -> int:
        return len(self._reg) - self._reg_head

    def terminal_at(self, index: int) -> Experience:
        return self._term[self._term_head + index]

    def regular_at(self, index: int) -> Experience:
        return self._reg[self._reg_head + index]

    def append(self, experience: Experience) -> None:
        self._all.append(experience)
        (self._term if experience.terminal else self._reg).append(experience)
        if len(self) > self.maxlen:
            oldest = self._all[self._all_head]
            self._all_head += 1
            if oldest.terminal:
                self._term_head += 1
            else:
                self._reg_head += 1
        self._compact()

    def _compact(self) -> None:
        for attr, head_attr in (
            ("_all", "_all_head"),
            ("_term", "_term_head"),
            ("_reg", "_reg_head"),
        ):
            head = getattr(self, head_attr)
            if head > 1024 and head * 2 > len(getattr(self, attr)):
                setattr(self, attr, getattr(self, attr)[head:])
                setattr(self, head_attr, 0)


def _mlp(dims: list[int], rngs: list[np.random.Generator], final_activation: bool) -> Sequential:
    layers: list = []
    for i in range(len(dims) - 1):
        layers.append(Dense(dims[i], dims[i + 1], rng=rngs[i]))
        if i < len(dims) - 2 or final_activation:
            layers.append(LeakyReLU())
    return Sequential(layers)


class DFPNetwork:
    """Three input modules → joint representation → dueling streams."""

    def __init__(
        self,
        config: DFPConfig,
        rng: np.random.Generator | int | None = None,
        state_module: Sequential | None = None,
        state_module_out: int | None = None,
    ) -> None:
        self.config = config
        rng = as_generator(rng)
        rngs = spawn_generators(rng, 16)
        c = config
        if state_module is not None:
            if state_module_out is None:
                raise ValueError("state_module_out required with a custom state module")
            self.state_net = state_module
            state_out = state_module_out
        else:
            # §III-A: input layer, two leaky-rectified FC layers, output.
            self.state_net = _mlp(
                [c.state_dim, c.state_hidden[0], c.state_hidden[1], c.state_out],
                rngs[0:3],
                final_activation=True,
            )
            state_out = c.state_out
        self._state_out = state_out
        # §IV-C: three-layer fully-connected measurement and goal modules.
        self.meas_net = _mlp(
            [c.n_measurements, c.module_hidden, c.module_out], rngs[3:5], True
        )
        self.goal_net = _mlp(
            [c.n_measurements, c.module_hidden, c.module_out], rngs[5:7], True
        )
        joint = state_out + 2 * c.module_out
        self._joint_dim = joint
        self.expectation_stream = _mlp(
            [joint, c.stream_hidden, c.pred_dim], rngs[7:9], False
        )
        if c.action_stream == "shared":
            # One head applied to every slot: (joint ⊕ slot features) → P.
            self.action_stream = _mlp(
                [joint + c.slot_dim, c.stream_hidden, c.pred_dim], rngs[9:11], False
            )
        else:
            self.action_stream = _mlp(
                [joint, c.stream_hidden, c.n_actions * c.pred_dim], rngs[9:11], False
            )
        self._joint_splits: tuple[int, int] = (state_out, state_out + c.module_out)
        # Reused inference buffers: one workspace per entry shape class
        # (per-decision scoring vs batched replay scoring), so the two
        # paths do not thrash each other's buffers. Float64 by default —
        # the workspace path is bit-identical to the allocating one;
        # see :meth:`set_inference_dtype` for the reduced-precision mode.
        self._score_ws = InferenceWorkspace()
        self._batch_ws = InferenceWorkspace()

    def set_inference_dtype(self, dtype: np.dtype | str | None) -> None:
        """Choose the inference precision (training is unaffected).

        ``float32`` halves the memory traffic of every scoring matmul;
        scores then deviate from the float64 path by ~1e-6 relative —
        far below any scheduling-relevant margin, but *opt-in* because
        the default contract is bit-identical scoring. ``None`` restores
        float64.
        """
        self._score_ws = InferenceWorkspace(dtype or np.float64)
        self._batch_ws = InferenceWorkspace(dtype or np.float64)

    @property
    def inference_dtype(self) -> np.dtype:
        return self._score_ws.dtype

    def notify_params_changed(self) -> None:
        """Invalidate cast-parameter caches after a weight update."""
        self._score_ws.invalidate_params()
        self._batch_ws.invalidate_params()

    @property
    def layers(self) -> list:
        return (
            self.state_net.layers
            + self.meas_net.layers
            + self.goal_net.layers
            + self.expectation_stream.layers
            + self.action_stream.layers
        )

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def parameter_count(self) -> int:
        return sum(p.size for layer in self.layers for p in layer.params.values())

    # -- forward / backward ------------------------------------------------

    def forward(
        self,
        state: np.ndarray,
        measurement: np.ndarray,
        goal: np.ndarray,
        training: bool = False,
    ) -> np.ndarray:
        """Predict future measurement changes: (B, n_actions, pred_dim)."""
        c = self.config
        s = self.state_net.forward(state, training=training)
        m = self.meas_net.forward(measurement, training=training)
        g = self.goal_net.forward(goal, training=training)
        joint = np.concatenate([s, m, g], axis=1)
        expectation = self.expectation_stream.forward(joint, training=training)
        batch = joint.shape[0]
        if c.action_stream == "shared":
            slots = state[:, : c.n_actions * c.slot_dim].reshape(
                batch, c.n_actions, c.slot_dim
            )
            head_in = np.concatenate(
                [
                    np.repeat(joint[:, None, :], c.n_actions, axis=1),
                    slots,
                ],
                axis=2,
            ).reshape(batch * c.n_actions, self._joint_dim + c.slot_dim)
            actions = self.action_stream.forward(head_in, training=training).reshape(
                batch, c.n_actions, c.pred_dim
            )
        else:
            raw = self.action_stream.forward(joint, training=training)
            actions = raw.reshape(batch, c.n_actions, c.pred_dim)
        # Dueling normalisation: per-(measurement, offset) zero mean
        # across actions, so the expectation stream carries the average.
        normalised = actions - actions.mean(axis=1, keepdims=True)
        return expectation[:, None, :] + normalised

    def _joint_into(
        self,
        ws: InferenceWorkspace,
        state: np.ndarray,
        measurement: np.ndarray,
        goal: np.ndarray,
    ) -> np.ndarray:
        """Run the three input modules and pack them into the reused
        joint-representation buffer (what ``np.concatenate`` built)."""
        s = self.state_net.infer(state, ws, "state")
        m = self.meas_net.infer(measurement, ws, "meas")
        g = self.goal_net.infer(goal, ws, "goal")
        joint = ws.buffer("joint", (state.shape[0], self._joint_dim))
        i, j = self._joint_splits
        joint[:, :i] = s
        joint[:, i:j] = m
        joint[:, j:] = g
        return joint

    def _shared_head_in(
        self, ws: InferenceWorkspace, state: np.ndarray, joint: np.ndarray
    ) -> np.ndarray:
        """(B·A, joint ⊕ slot) input of the shared action head, packed
        into a reused buffer instead of repeat+concatenate copies."""
        c = self.config
        batch = joint.shape[0]
        width = self._joint_dim + c.slot_dim
        head = ws.buffer("head_in", (batch, c.n_actions, width))
        head[:, :, : self._joint_dim] = joint[:, None, :]
        head[:, :, self._joint_dim :] = state[:, : c.n_actions * c.slot_dim].reshape(
            batch, c.n_actions, c.slot_dim
        )
        return head.reshape(batch * c.n_actions, width)

    def forward_scores(
        self,
        state: np.ndarray,
        measurement: np.ndarray,
        goal: np.ndarray,
        weights: np.ndarray,
    ) -> np.ndarray:
        """Goal-weighted action scores, (B, n_actions) — the inference
        fast path.

        The final layer of each stream is linear and the dueling
        normalisation commutes with a dot product, so the objective
        weights fold into the last Dense layer:
        ``(h @ W + b) @ w == h @ (W @ w) + b @ w``. That collapses the
        widest matmul of the forward pass (hidden → pred_dim per action)
        to a single vector product and never materialises the full
        (B, n_actions, pred_dim) prediction tensor. Numerically equal to
        ``forward(...) @ weights`` up to float re-association.

        Every intermediate activation lives in the network's reused
        inference workspace — the per-decision tile allocations of the
        layer-by-layer path are gone, and the scheduler's once-per-
        selection call runs allocation-free in steady state. The
        returned array is freshly allocated and safe to keep.
        """
        c = self.config
        ws = self._score_ws
        state = ws.cast("in_state", np.ascontiguousarray(state))
        measurement = ws.cast("in_meas", np.ascontiguousarray(measurement))
        goal = ws.cast("in_goal", np.ascontiguousarray(goal))
        weights = ws.cast("in_weights", weights)
        joint = self._joint_into(ws, state, measurement, goal)
        batch = joint.shape[0]

        exp_h = joint
        for li, layer in enumerate(self.expectation_stream.layers[:-1]):
            exp_h = layer.infer(exp_h, ws, ("exp", li))
        exp_last = self.expectation_stream.layers[-1]
        expectation = exp_h @ (ws.param(exp_last, "W") @ weights) + (
            ws.param(exp_last, "b") @ weights
        )  # (B,)

        act_last = self.action_stream.layers[-1]
        if c.action_stream == "shared":
            act_h = self._shared_head_in(ws, state, joint)
            for li, layer in enumerate(self.action_stream.layers[:-1]):
                act_h = layer.infer(act_h, ws, ("act", li))
            actions = (
                act_h @ (ws.param(act_last, "W") @ weights)
                + ws.param(act_last, "b") @ weights
            ).reshape(batch, c.n_actions)
        else:
            act_h = joint
            for li, layer in enumerate(self.action_stream.layers[:-1]):
                act_h = layer.infer(act_h, ws, ("act", li))
            w_fold = ws.param(act_last, "W").reshape(
                -1, c.n_actions, c.pred_dim
            ) @ weights  # (in_features, n_actions)
            b_fold = ws.param(act_last, "b").reshape(c.n_actions, c.pred_dim) @ weights
            actions = act_h @ w_fold + b_fold
        actions = actions - actions.mean(axis=1, keepdims=True)
        return expectation[:, None] + actions

    def forward_infer(
        self,
        state: np.ndarray,
        measurement: np.ndarray,
        goal: np.ndarray,
    ) -> np.ndarray:
        """:meth:`forward` for inference: same predictions (bit-identical
        in float64), no gradient caches, intermediates in the batched
        workspace. Used by replay-time batch scoring, where rows carry
        different goals and the weight folding of
        :meth:`forward_scores` does not apply.
        """
        c = self.config
        ws = self._batch_ws
        state = ws.cast("in_state", np.ascontiguousarray(state))
        measurement = ws.cast("in_meas", np.ascontiguousarray(measurement))
        goal = ws.cast("in_goal", np.ascontiguousarray(goal))
        joint = self._joint_into(ws, state, measurement, goal)
        batch = joint.shape[0]
        expectation = self.expectation_stream.infer(joint, ws, "exp")
        if c.action_stream == "shared":
            head_in = self._shared_head_in(ws, state, joint)
            actions = self.action_stream.infer(head_in, ws, "act").reshape(
                batch, c.n_actions, c.pred_dim
            )
        else:
            raw = self.action_stream.infer(joint, ws, "act")
            actions = raw.reshape(batch, c.n_actions, c.pred_dim)
        normalised = actions - actions.mean(axis=1, keepdims=True)
        return expectation[:, None, :] + normalised

    def backward(self, grad_pred: np.ndarray) -> None:
        """Backpropagate d(loss)/d(prediction) through both streams."""
        c = self.config
        batch = grad_pred.shape[0]
        grad_exp = grad_pred.sum(axis=1)
        # y_a = A_a - mean_a(A)  =>  dA_a = dy_a - mean_a(dy).
        grad_act = grad_pred - grad_pred.mean(axis=1, keepdims=True)
        grad_joint = self.expectation_stream.backward(grad_exp)
        if c.action_stream == "shared":
            grad_head_in = self.action_stream.backward(
                grad_act.reshape(batch * c.n_actions, c.pred_dim)
            )
            # Joint features were broadcast to every slot; gradients sum
            # back over slots. Slot features are raw inputs — no
            # parameters behind them, so their gradient is dropped.
            grad_joint = grad_joint + grad_head_in[:, : self._joint_dim].reshape(
                batch, c.n_actions, self._joint_dim
            ).sum(axis=1)
        else:
            grad_joint = grad_joint + self.action_stream.backward(
                grad_act.reshape(batch, c.n_actions * c.pred_dim)
            )
        i, j = self._joint_splits
        self.state_net.backward(grad_joint[:, :i])
        self.meas_net.backward(grad_joint[:, i:j])
        self.goal_net.backward(grad_joint[:, j:])

    # -- persistence ---------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for branch, net in self._branches():
            for key, value in net.state_dict().items():
                out[f"{branch}.{key}"] = value
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for branch, net in self._branches():
            prefix = f"{branch}."
            sub = {k[len(prefix) :]: v for k, v in state.items() if k.startswith(prefix)}
            net.load_state_dict(sub)

    def _branches(self) -> list[tuple[str, Sequential]]:
        return [
            ("state", self.state_net),
            ("meas", self.meas_net),
            ("goal", self.goal_net),
            ("expectation", self.expectation_stream),
            ("action", self.action_stream),
        ]


class DFPAgent:
    """ε-greedy, replay-trained DFP agent.

    The agent is environment-agnostic: :class:`~repro.core.mrsch.MRSchScheduler`
    feeds it encoded states/measurements/goals and reports episode
    measurement histories; the agent owns prediction, action selection,
    target construction and learning.
    """

    def __init__(
        self,
        config: DFPConfig,
        rng: np.random.Generator | int | None = None,
        state_module: Sequential | None = None,
        state_module_out: int | None = None,
    ) -> None:
        self.config = config
        self.rng = as_generator(rng)
        net_rng, self._sample_rng = spawn_generators(self.rng, 2)
        self.network = DFPNetwork(
            config, rng=net_rng, state_module=state_module, state_module_out=state_module_out
        )
        self.optimizer = Adam(self.network.layers, lr=config.lr)
        self.replay = StratifiedReplay(config.replay_capacity)
        self.epsilon = config.epsilon_start
        # Goal vectors are constant within a scheduling instance but the
        # agent scores once per selection — memoise the last flattening.
        self._weights_key: bytes | None = None
        self._weights: np.ndarray | None = None

    # -- acting ------------------------------------------------------------

    def _objective_weights(self, goal: np.ndarray) -> np.ndarray:
        """The memoised (pred_dim,) objective vector — no defensive copy.

        Internal fast path: the scoring calls below only *read* the
        vector, so the per-decision copy the public accessor makes is
        pure overhead there.
        """
        key = goal.tobytes()
        if key != self._weights_key:
            c = self.config
            w = np.asarray(c.temporal_weights)
            self._weights = (w[:, None] * goal[None, :]).reshape(c.pred_dim)
            self._weights_key = key
        return self._weights

    def objective_weights(self, goal: np.ndarray) -> np.ndarray:
        """Flatten goal × temporal weights to a (pred_dim,) vector.

        The pursued objective is ``Σ_τ w_τ · g · Δm̂_τ`` — the dot
        product of predicted measurement changes with the goal, weighted
        over temporal offsets.
        """
        # Copy so a caller mutating the result cannot poison the cache.
        return self._objective_weights(goal).copy()

    def action_scores(
        self, state: np.ndarray, measurement: np.ndarray, goal: np.ndarray
    ) -> np.ndarray:
        """Goal-weighted predicted outcomes, one score per action.

        This is the scheduler's one-batch window scorer: the state
        vector already carries every candidate's job block, and
        ``forward_scores`` evaluates all ``n_actions`` slots in a
        single fused pass (per-candidate blocks ride as rows of the
        shared action head; the dense stream emits every action from
        one matmul) with the objective folded into the final layer —
        there is no per-candidate encode or per-candidate forward.
        """
        scores = self.network.forward_scores(
            state[None, :],
            measurement[None, :],
            goal[None, :],
            self._objective_weights(goal),
        )
        return scores[0]

    def action_scores_batch(
        self, states: np.ndarray, measurements: np.ndarray, goals: np.ndarray
    ) -> np.ndarray:
        """Score a whole batch of decision points in one forward pass.

        Accepts (B, ·) arrays and returns (B, n_actions). Rows may carry
        *different* goals, so the objective weights cannot be folded into
        the network; the full prediction tensor is contracted per row
        instead. One batched pass amortises the network's Python/NumPy
        dispatch overhead over B decision points — the fast path for
        offline policy evaluation and replay scoring.
        """
        c = self.config
        preds = self.network.forward_infer(states, measurements, goals)  # (B, A, P)
        w = np.asarray(c.temporal_weights, dtype=preds.dtype)
        weights = (w[None, :, None] * goals[:, None, :]).reshape(-1, c.pred_dim)
        return np.einsum("bap,bp->ba", preds, weights)

    def act(
        self,
        state: np.ndarray,
        measurement: np.ndarray,
        goal: np.ndarray,
        valid_mask: np.ndarray,
        explore: bool = False,
        score_bonus: np.ndarray | None = None,
    ) -> int:
        """Choose an action; ε-greedy when ``explore`` is set.

        ``score_bonus`` is added to the goal-weighted predicted scores
        before the argmax — the hook for the scheduler-level policy
        prior (see :class:`~repro.core.mrsch.MRSchScheduler`).
        """
        valid = np.flatnonzero(valid_mask)
        if valid.size == 0:
            raise ValueError("no valid actions")
        if explore and self._sample_rng.random() < self.epsilon:
            action = int(self._sample_rng.choice(valid))
        else:
            scores = self.action_scores(state, measurement, goal)
            if score_bonus is not None:
                scores = scores + score_bonus
            scores = np.where(valid_mask, scores, -np.inf)
            action = int(np.argmax(scores))
        if explore:
            self.epsilon = max(
                self.config.epsilon_min, self.epsilon * self.config.epsilon_decay
            )
        return action

    # -- learning ----------------------------------------------------------

    def build_targets(self, measurements: list[np.ndarray]) -> np.ndarray:
        """Realised future measurement changes for every episode step.

        ``targets[t, k·M:(k+1)·M] = m_{t+τ_k} − m_t``; steps whose offset
        reaches past the episode end use the final measurement (the
        standard DFP treatment of terminal frames).
        """
        c = self.config
        if not measurements:
            return np.zeros((0, c.pred_dim))
        stack = np.vstack(measurements)
        steps = stack.shape[0]
        targets = np.empty((steps, c.pred_dim))
        for k, offset in enumerate(c.offsets):
            future_idx = np.minimum(np.arange(steps) + offset, steps - 1)
            targets[:, k * c.n_measurements : (k + 1) * c.n_measurements] = (
                stack[future_idx] - stack
            )
        return targets

    def record_episode(
        self,
        steps: list[tuple[np.ndarray, np.ndarray, np.ndarray, int, bool]],
        measurements: list[np.ndarray],
    ) -> None:
        """Convert an episode's decisions into replayable experiences.

        Each step is ``(state, measurement, goal, action, terminal)``
        with ``terminal`` true when the selected job did not fit.
        """
        if len(steps) != len(measurements):
            raise ValueError("one measurement per decision step is required")
        targets = self.build_targets(measurements)
        for (state, meas, goal, action, terminal), target in zip(steps, targets):
            self.replay.append(
                Experience(state, meas, goal, action, target, terminal)
            )

    def _sample_batch(self, n: int) -> list[Experience]:
        """Stratified replay draw: half terminal, half non-terminal.

        Falls back to uniform sampling when one class is absent. The
        strata are maintained incrementally by :class:`StratifiedReplay`
        — same draws as filtering the buffer per batch, without the
        O(capacity) scans.
        """
        replay = self.replay
        n_term, n_reg = replay.n_terminal, replay.n_regular
        rng = self._sample_rng
        if not n_term or not n_reg:
            idx = rng.choice(len(replay), size=n, replace=len(replay) < n)
            return [replay[int(i)] for i in idx]
        half = n // 2
        picks = [
            replay.terminal_at(int(i))
            for i in rng.choice(n_term, size=half, replace=n_term < half)
        ]
        picks += [
            replay.regular_at(int(i))
            for i in rng.choice(n_reg, size=n - half, replace=n_reg < n - half)
        ]
        return picks

    def train_batch(self) -> float:
        """One minibatch of MSE regression on taken-action predictions."""
        c = self.config
        if len(self.replay) == 0:
            return 0.0
        n = min(c.batch_size, len(self.replay))
        batch = self._sample_batch(n)
        states = np.vstack([e.state for e in batch])
        meas = np.vstack([e.measurement for e in batch])
        goals = np.vstack([e.goal for e in batch])
        actions = np.array([e.action for e in batch])
        targets_taken = np.vstack([e.target for e in batch])

        preds = self.network.forward(states, meas, goals, training=True)
        targets = preds.copy()
        targets[np.arange(n), actions] = targets_taken
        mask = np.zeros_like(preds)
        mask[np.arange(n), actions] = 1.0

        loss, grad = mse_loss(preds, targets, mask=mask)
        self.optimizer.zero_grad()
        self.network.backward(grad)
        self.optimizer.clip_gradients(c.grad_clip)
        self.optimizer.step()
        self.network.notify_params_changed()
        return loss

    def train_epoch(self, n_batches: int | None = None) -> float:
        """Run ``n_batches`` replay updates; returns the mean loss."""
        n_batches = n_batches or self.config.train_batches_per_episode
        losses = [self.train_batch() for _ in range(n_batches)]
        return float(np.mean(losses)) if losses else 0.0

    # -- persistence ---------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        out = self.network.state_dict()
        out["__epsilon__"] = np.array([self.epsilon])
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        state = dict(state)
        eps = state.pop("__epsilon__", None)
        if eps is not None:
            self.epsilon = float(np.asarray(eps).ravel()[0])
        self.network.load_state_dict(state)
        self.network.notify_params_changed()

    def set_inference_dtype(self, dtype: np.dtype | str | None) -> None:
        """Opt-in reduced-precision scoring — see
        :meth:`DFPNetwork.set_inference_dtype`. Training precision is
        untouched; only ``action_scores``/``action_scores_batch`` (and
        anything built on them) run in the requested dtype.
        """
        self.network.set_inference_dtype(dtype)
