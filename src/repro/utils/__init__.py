"""Shared utilities: deterministic RNG handling and small helpers."""

from repro.utils.rng import as_generator, spawn_generators

__all__ = ["as_generator", "spawn_generators"]
