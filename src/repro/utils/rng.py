"""Deterministic random-number handling.

Every stochastic component in the library accepts either an integer seed,
``None`` (fresh entropy) or an existing :class:`numpy.random.Generator`.
This module centralises the coercion so behaviour is reproducible and no
module ever touches NumPy's legacy global RNG state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so components can
    share one stream when the caller wants correlated sampling.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Uses :meth:`numpy.random.Generator.spawn` semantics via ``SeedSequence``
    so child streams are statistically independent and reproducible.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(n)]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]
