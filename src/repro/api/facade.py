"""The stable programmatic surface: run scenarios, compare methods, list
components.

Everything here compiles down to :class:`~repro.exp.records.ExperimentTask`
cells executed by the :class:`~repro.exp.runner.ExperimentRunner`, so the
engine's guarantees (serial ≡ parallel determinism, config-hash result
caching, resumable checkpoints) hold for every entry point::

    import repro.api as api

    result = api.run_scenario("examples/scenarios/bb_heavy_mix.json", n_workers=4)
    print(result.summary())

    reports = api.compare(workloads=["S1", "S4"], methods=["mrsch", "heuristic"])
"""

from __future__ import annotations

import os
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.api.registry import (
    SCHEDULERS,
    SYSTEMS,
    WORKLOADS,
    paper_methods,
)
from repro.api.scenario import Scenario, load_scenario
from repro.exp.records import ExperimentTask, TaskResult
from repro.exp.runner import ExperimentRunner, pivot_results

if TYPE_CHECKING:
    from repro.cluster.resources import SystemConfig
    from repro.eval.stats import ComparisonReport
    from repro.experiments.harness import ExperimentConfig
    from repro.sim.metrics import MetricReport

__all__ = [
    "ScenarioResult",
    "run_scenario",
    "compare",
    "run_single",
    "evaluate_traces",
    "list_schedulers",
    "list_workloads",
    "list_systems",
    "make_system",
    "describe_components",
    "render_reports",
]


@dataclass
class ScenarioResult:
    """Everything a scenario run produced, raw and pivoted."""

    scenario: Scenario
    tasks: list[ExperimentTask]
    results: list[TaskResult]
    #: ``{workload: {method label: MetricReport}}`` in scenario order
    reports: "dict[str, dict[str, MetricReport]]"
    #: offline policy comparison, when the scenario's ``evaluation``
    #: block names policies; None otherwise
    evaluation: "ComparisonReport | None" = None
    #: trace store location used by this run, when traces were captured
    trace_dir: "str | None" = None

    def report(self, workload: str, method: str) -> "MetricReport":
        return self.reports[workload][method]

    def summary(self) -> str:
        """Aligned per-workload metric tables (the CLI's output)."""
        text = render_reports(self.reports, self.scenario.name)
        if self.evaluation is not None:
            text += "\n\n" + self.evaluation.summary()
        return text

    def to_json_dict(self) -> dict:
        out = {
            "scenario": self.scenario.to_dict(),
            "scenario_hash": self.scenario.config_hash(),
            "reports": {
                w: {m: rep.full_dict() for m, rep in per.items()}
                for w, per in self.reports.items()
            },
            "wall_times": {r.key: r.wall_time for r in self.results},
            "sources": {r.key: r.source for r in self.results},
        }
        if self.trace_dir is not None:
            out["trace_dir"] = self.trace_dir
            out["trace_keys"] = sorted(
                key for r in self.results for key in r.trace_keys
            )
        if self.evaluation is not None:
            out["evaluation"] = self.evaluation.to_json_dict()
        return out


def render_reports(
    reports: "dict[str, dict[str, MetricReport]]", title: str
) -> str:
    """Render ``{workload: {method: report}}`` as aligned text tables."""
    from repro.experiments.report import format_table

    blocks = []
    for workload, per_method in reports.items():
        columns = list(next(iter(per_method.values())).as_dict())
        rows = {
            label: [rep.as_dict().get(c, 0.0) for c in columns]
            for label, rep in per_method.items()
        }
        blocks.append(format_table(f"{title} — {workload}", columns, rows))
    return "\n\n".join(blocks)


def _ordered_reports(
    scenario: Scenario, results: list[TaskResult]
) -> "dict[str, dict[str, MetricReport]]":
    """Pivot results, preserving the scenario's workload/method order."""
    pivoted = pivot_results(results)
    multi_seed = len({r.seed for r in results}) > 1
    out: dict = {}
    for workload in scenario.workloads:
        per = pivoted[workload]
        if multi_seed:
            out[workload] = dict(per)  # labels carry "@seed" suffixes
        else:
            # Single-seed labels are exactly the canonical method names.
            out[workload] = {m: per[m] for m in scenario.methods}
    return out


def run_scenario(
    source: "Scenario | Mapping | str | Path",
    *,
    config: "ExperimentConfig | None" = None,
    runner: ExperimentRunner | None = None,
    n_workers: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    checkpoint_path: str | os.PathLike | None = None,
    trace_dir: str | os.PathLike | None = None,
    queue_dir: str | os.PathLike | None = None,
    progress: bool | None = None,
) -> ScenarioResult:
    """Load, compile and execute a scenario on the experiment engine.

    ``source`` may be a :class:`Scenario`, a plain mapping, or a path to
    a scenario file. ``config`` substitutes a pre-built
    :class:`ExperimentConfig` for the scenario-derived one (the harness
    shims use this); ``runner`` supplies a fully configured engine,
    otherwise one is built from ``n_workers``/``cache_dir``/
    ``checkpoint_path``. Results are bit-identical for any worker count.

    A scenario with an ``evaluation`` block records decision traces and,
    when the block names ``policies``, runs the offline comparison
    afterwards — the report lands on :attr:`ScenarioResult.evaluation`.
    The trace store comes from exactly one place: an explicit
    ``runner`` supplies its own ``trace_dir`` (combining it with the
    ``trace_dir`` argument is rejected, like ``cache_dir``); otherwise
    the ``trace_dir`` argument is used, falling back to the block's
    ``trace_dir`` field.

    A scenario with an ``execution`` block picks its dispatch mode:
    ``{"dispatch": "queue", "queue_dir": ..., "workers": N}`` runs the
    grid through the shared-directory work queue (:mod:`repro.dist`) —
    elastic ``repro work`` workers may join mid-run. Explicit
    ``n_workers``/``queue_dir`` arguments override the block's values;
    metrics are bit-identical in every mode.
    """
    scenario = load_scenario(source)
    if trace_dir is not None and not scenario.evaluation:
        raise ValueError(
            f"trace_dir given but scenario {scenario.name!r} has no "
            "'evaluation' block, so no cell would record decision traces; "
            "add one (e.g. {\"evaluation\": {\"policies\": [\"fcfs\"]}}) "
            "or drop trace_dir"
        )
    if config is not None:
        # The scenario validated against its own system section; a
        # substituted config may name a different system entirely.
        scenario.validate_system(config)
    if runner is not None and (
        cache_dir is not None or checkpoint_path is not None or trace_dir is not None
    ):
        raise ValueError(
            "pass cache_dir/checkpoint_path/trace_dir either to run_scenario "
            "or to the ExperimentRunner, not both — the explicit runner "
            "would silently run without them"
        )
    if trace_dir is None and scenario.evaluation:
        trace_dir = scenario.evaluation.get("trace_dir")
        if trace_dir is None and runner is None:
            raise ValueError(
                "scenario enables offline evaluation; give the trace store "
                "location via run_scenario(trace_dir=...) or the scenario's "
                "evaluation.trace_dir field"
            )
    if runner is not None and scenario.evaluation and runner.trace_dir is None:
        # Fail here with the remedy instead of the runner's generic
        # "no trace_dir" error deep inside run().
        suggested = scenario.evaluation.get("trace_dir")
        raise ValueError(
            "scenario enables offline evaluation but the explicit runner has "
            "no trace store; construct it with ExperimentRunner(trace_dir=...)"
            + (f" — the scenario suggests {suggested!r}" if suggested else "")
        )
    execution = scenario.execution or {}
    if queue_dir is not None and runner is not None:
        raise ValueError(
            "pass queue_dir either to run_scenario or to the "
            "ExperimentRunner, not both"
        )
    effective_queue_dir = (
        queue_dir if queue_dir is not None else execution.get("queue_dir")
    )
    dispatch = execution.get("dispatch", "pool")
    if queue_dir is not None:
        dispatch = "queue"
    if n_workers is None:
        n_workers = int(execution.get("workers", 1))
    runner = runner or ExperimentRunner(
        n_workers=n_workers,
        cache_dir=cache_dir,
        checkpoint_path=checkpoint_path,
        trace_dir=trace_dir,
        trace_compact=bool(
            scenario.evaluation.get("compact_traces", False)
            if scenario.evaluation
            else False
        ),
        dispatch=dispatch,
        queue_dir=effective_queue_dir if dispatch == "queue" else None,
        lease_ttl=float(execution.get("lease_ttl", 30.0)),
        cell_timeout_s=(
            float(execution["cell_timeout_s"])
            if execution.get("cell_timeout_s")
            else None
        ),
        supervise=bool(execution.get("supervise", False)),
        progress=progress,
    )
    tasks = scenario.compile(config=config)
    results = runner.run(tasks)

    evaluation = None
    effective_trace_dir = (
        str(runner.trace_dir) if runner.trace_dir is not None else None
    )
    policies = scenario.evaluation.get("policies") if scenario.evaluation else None
    if policies:
        from repro.eval.evaluator import evaluate_traces as _evaluate
        from repro.eval.trace import TraceStore

        store = TraceStore(runner.trace_dir)
        trace_keys = sorted({key for r in results for key in r.trace_keys})
        evaluation = _evaluate(
            store.load_all(trace_keys),
            policies=list(policies),
            n_bootstrap=int(scenario.evaluation.get("bootstrap", 1000)),
            bootstrap_seed=int(scenario.evaluation.get("seed", 0)),
        )
    return ScenarioResult(
        scenario=scenario,
        tasks=tasks,
        results=results,
        reports=_ordered_reports(scenario, results),
        evaluation=evaluation,
        trace_dir=effective_trace_dir if scenario.evaluation else None,
    )


def compare(
    workloads: Sequence[str],
    methods: Sequence[str] | None = None,
    config: "ExperimentConfig | None" = None,
    *,
    seeds: Sequence[int] | None = None,
    replications: int = 1,
    train: bool = True,
    case_study: bool | None = None,
    goal: Mapping | None = None,
    options: Mapping | None = None,
    runner: ExperimentRunner | None = None,
    n_workers: int = 1,
) -> "dict[str, dict[str, MetricReport]]":
    """Run a (method × workload × seed) comparison grid.

    The programmatic equivalent of ``repro compare``: builds an inline
    :class:`Scenario` and returns ``{workload: {method: MetricReport}}``
    in the caller's ordering. ``methods`` defaults to the paper's four
    §IV-D methods; ``config`` carries the sizing (its seed is the grid's
    root seed).
    """
    requested = tuple(methods or paper_methods())
    scenario = Scenario(
        name="compare",
        methods=requested,
        workloads=tuple(workloads),
        # Mirror the caller's config so validation (workload resource
        # requirements in particular) runs against the system that will
        # actually execute, not the default mini_theta.
        system=(
            {"name": config.system_name, "nodes": config.nodes,
             "bb_units": config.bb_units}
            if config is not None
            else {"name": "mini_theta"}
        ),
        seed=config.seed if config is not None else 2022,
        seeds=tuple(seeds) if seeds is not None else None,
        replications=replications,
        train=train,
        case_study=case_study,
        goal=dict(goal or {}),
        options=dict(options or {}),
    )
    result = run_scenario(
        scenario, config=config, runner=runner, n_workers=n_workers
    )
    # Scenario canonicalises spellings ("Heuristic" → "heuristic"); hand
    # the caller back their own names, as the legacy harness did. Multi-
    # seed labels carry an "@seed" suffix after the method name.
    rename = {c: r for c, r in zip(scenario.methods, requested) if c != r}
    if not rename:
        return result.reports

    def restore(label: str) -> str:
        name, sep, seed = label.partition("@")
        return rename.get(name, name) + sep + seed

    return {
        w: {restore(label): rep for label, rep in per.items()}
        for w, per in result.reports.items()
    }


def run_single(
    workload: str,
    method: str,
    config: "ExperimentConfig | None" = None,
    train: bool = True,
    **kwargs,
):
    """Run one (method, workload) pair; returns ``(result, scheduler)``.

    The scheduler instance is returned so callers can inspect agent
    internals (e.g. the MRSch goal-vector log behind Figs 8–9). Extra
    ``kwargs`` reach the scheduler constructor — pass a scenario's
    per-method options to inspect the identically-configured agent.
    """
    from repro.experiments.harness import run_single as _run_single

    return _run_single(workload, method, config=config, train=train, **kwargs)


def evaluate_traces(
    trace_dir: str | os.PathLike,
    policies: Sequence[str] | Mapping,
    *,
    keys: Sequence[str] | None = None,
    dfp_checkpoint: str | os.PathLike | None = None,
    n_bootstrap: int = 1000,
    bootstrap_seed: int = 0,
) -> "ComparisonReport":
    """Offline policy comparison over a store of recorded traces.

    The programmatic equivalent of ``repro eval``: loads the decision
    traces under ``trace_dir`` (all of them, or the given store
    ``keys``) and replays every policy over the shared decision points.
    ``policies`` is a list of registered offline policy names or a
    mapping ``{label: scorer}``; ``dfp_checkpoint`` additionally replays
    a saved DFP agent (sized from the traces) as policy ``"dfp"``.
    """
    from repro.eval.evaluator import evaluate_traces as _evaluate
    from repro.eval.policies import DFPReplayPolicy, build_policies
    from repro.eval.trace import TraceStore

    store = TraceStore(trace_dir)
    traces = store.load_all(tuple(keys) if keys is not None else None)
    if not traces:
        raise ValueError(
            f"no decision traces found under {store.trace_dir}; record some "
            "by running a scenario with an 'evaluation' block"
        )
    policies = build_policies(policies)
    if dfp_checkpoint is not None:
        # One agent is sized from the traces' dimensions, so the store
        # must be homogeneous — fail with the mismatch, not a shape
        # error from deep inside a matmul.
        dims = {
            (
                int(t.meta.get("state_dim", t.states.shape[1])),
                int(t.meta.get("n_measurements", t.measurements.shape[1])),
                t.window_size,
                int(t.meta.get("slot_dim", 0)),
            )
            for t in traces
        }
        if len(dims) > 1:
            raise ValueError(
                "dfp_checkpoint needs traces with one (state_dim, "
                "n_measurements, window_size, slot_dim) signature, but the "
                f"store mixes {sorted(dims)}; restrict with keys=..."
            )
        policies["dfp"] = DFPReplayPolicy.from_checkpoint(
            str(dfp_checkpoint), traces[0]
        )
    return _evaluate(
        traces,
        policies=policies,
        n_bootstrap=n_bootstrap,
        bootstrap_seed=bootstrap_seed,
    )


# -- component listings -------------------------------------------------------


def list_schedulers() -> tuple[str, ...]:
    """Registered scheduler names, registration order."""
    return SCHEDULERS.names()


def list_workloads() -> tuple[str, ...]:
    """Registered workload names, registration order."""
    return WORKLOADS.names()


def list_systems() -> tuple[str, ...]:
    """Registered system names, registration order."""
    return SYSTEMS.names()


def make_system(name: str = "mini_theta", **sizing) -> "SystemConfig":
    """Build a registered system (``nodes=...``/``bb_units=...`` sizing)."""
    return SYSTEMS.get(name).build(**sizing)


def describe_components() -> dict:
    """Structured snapshot of all three registries (CLI ``list --json``)."""
    return {
        "schedulers": [
            {"name": e.name, "description": e.description, **e.capabilities()}
            for e in SCHEDULERS.entries()
        ],
        "workloads": [
            {"name": e.name, "description": e.description, **e.capabilities()}
            for e in WORKLOADS.entries()
        ],
        "systems": [
            {"name": e.name, "description": e.description}
            for e in SYSTEMS.entries()
        ],
    }
