"""repro.api — the stable declarative surface of the library.

Three layers, each importable from here:

* **Registries** (:mod:`repro.api.registry`) — decorator-based plugin
  points for schedulers, workloads and systems. Registering a component
  makes it addressable by name everywhere: scenario files, the facade,
  the ``repro`` CLI.
* **Scenario** (:mod:`repro.api.scenario`) — a validated, serializable
  experiment description that compiles to
  :class:`~repro.exp.records.ExperimentTask` grids.
* **Facade** (:mod:`repro.api.facade`) — :func:`run_scenario`,
  :func:`compare`, :func:`run_single` and the component listings; every
  call executes on the :class:`~repro.exp.runner.ExperimentRunner`.

This module is the compatibility contract: symbols exported here keep
their signatures across releases, while the implementation modules
behind them may move.
"""

from repro.api.facade import (
    ScenarioResult,
    compare,
    describe_components,
    evaluate_traces,
    list_schedulers,
    list_systems,
    list_workloads,
    make_system,
    run_scenario,
    run_single,
)
from repro.api.registry import (
    SCHEDULERS,
    SYSTEMS,
    WORKLOADS,
    Registry,
    SchedulerEntry,
    SystemEntry,
    WorkloadEntry,
    paper_methods,
    paper_workloads,
    register_scheduler,
    register_system,
    register_workload,
)
from repro.api.scenario import Scenario, load_scenario

__all__ = [
    # facade
    "run_scenario",
    "compare",
    "run_single",
    "evaluate_traces",
    "ScenarioResult",
    "list_schedulers",
    "list_workloads",
    "list_systems",
    "make_system",
    "describe_components",
    # scenario spec
    "Scenario",
    "load_scenario",
    # registries
    "Registry",
    "SchedulerEntry",
    "WorkloadEntry",
    "SystemEntry",
    "SCHEDULERS",
    "WORKLOADS",
    "SYSTEMS",
    "register_scheduler",
    "register_workload",
    "register_system",
    "paper_methods",
    "paper_workloads",
]
