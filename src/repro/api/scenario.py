"""The declarative scenario spec and its compilation to experiment tasks.

A :class:`Scenario` is a validated, serializable description of one
study: which **system** to build, which **workloads** to derive, which
**schedulers** to compare, what **goal** emphasis to apply, and how many
**seeds/replications** to run. It compiles to the same
:class:`~repro.exp.records.ExperimentTask` cells the PR-1 harness
produces, so every scenario executes on the
:class:`~repro.exp.runner.ExperimentRunner` with its determinism,
caching and checkpointing guarantees intact — a scenario with the same
content always compiles to tasks with the same config hashes, so the
on-disk result cache keeps working across runs and across processes.

Scenarios load from plain dicts or JSON files (JSON is a strict YAML
subset, so scenario files are valid YAML too; ``.yaml`` files load when
PyYAML happens to be installed). Example::

    {
      "name": "bb-heavy",
      "methods": ["mrsch", "heuristic"],
      "workloads": ["S2", "S4"],
      "system": {"name": "mini_theta", "nodes": 128, "bb_units": 64},
      "seed": 2022,
      "replications": 2,
      "train": true,
      "goal": {"prior_weight": 1.0},
      "config": {"n_jobs": 150, "window_size": 10}
    }

Every validation failure raises :class:`ValueError` naming the offending
field and the accepted alternatives.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.api.registry import SCHEDULERS, SYSTEMS, WORKLOADS
from repro.exp.records import ExperimentTask, canonical_json

if TYPE_CHECKING:
    from repro.experiments.harness import ExperimentConfig

__all__ = ["Scenario", "load_scenario"]

#: top-level scenario keys (``schedulers`` is accepted as an alias for
#: ``methods``)
_ALLOWED_KEYS = frozenset(
    {
        "name",
        "description",
        "methods",
        "schedulers",
        "workloads",
        "system",
        "seed",
        "seeds",
        "replications",
        "train",
        "case_study",
        "goal",
        "options",
        "config",
        "evaluation",
        "execution",
    }
)
_SYSTEM_KEYS = frozenset({"name", "nodes", "bb_units"})
_EVALUATION_KEYS = frozenset(
    {"policies", "trace_dir", "bootstrap", "seed", "compact_traces"}
)
_EXECUTION_KEYS = frozenset(
    {"dispatch", "queue_dir", "workers", "lease_ttl", "cell_timeout_s",
     "supervise"}
)
_CONFIG_KEYS = frozenset(
    {
        "n_jobs",
        "window_size",
        "jobs_per_trainset",
        "curriculum_sets",
        "mean_interarrival",
        "ga",
    }
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class Scenario:
    """A declarative, serializable experiment description.

    Construct directly, from :meth:`from_dict`, or from a JSON file via
    :meth:`from_file`. Instances are validated eagerly — every name is
    resolved against the component registries at construction time.
    """

    methods: tuple[str, ...]
    workloads: tuple[str, ...]
    name: str = "scenario"
    description: str = ""
    #: system section: ``{"name": <registry name>, "nodes": n, "bb_units": n}``
    system: Mapping = field(default_factory=lambda: {"name": "mini_theta"})
    seed: int = 2022
    #: explicit seed axis; overrides ``replications``
    seeds: tuple[int, ...] | None = None
    #: independent repetitions (seeds spawned from ``seed`` when > 1)
    replications: int = 1
    train: bool = True
    #: None = derived from the selected workloads' registry metadata
    case_study: bool | None = None
    #: goal emphasis, translated per method via its ``goal_options`` map
    goal: Mapping = field(default_factory=dict)
    #: per-method constructor overrides: ``{"mrsch": {"prior_weight": 0}}``
    options: Mapping = field(default_factory=dict)
    #: :class:`~repro.experiments.harness.ExperimentConfig` overrides
    config: Mapping = field(default_factory=dict)
    #: offline-evaluation section: any non-empty mapping turns on
    #: decision-trace capture for every compiled cell. Keys:
    #: ``policies`` (registered offline policy names compared after the
    #: run), ``trace_dir`` (trace store location, overridable by the
    #: ``run_scenario`` argument), ``bootstrap`` (resample count) and
    #: ``seed`` (bootstrap RNG seed).
    evaluation: Mapping = field(default_factory=dict)
    #: execution section — *how* the grid runs, never *what* it
    #: computes (task keys and metrics are dispatch-invariant). Keys:
    #: ``dispatch`` ("pool" | "queue"), ``queue_dir`` (shared work-queue
    #: directory, required for "queue"), ``workers`` (local worker
    #: count) and ``lease_ttl`` (queue-mode lease expiry, seconds).
    execution: Mapping = field(default_factory=dict)

    # -- validation -------------------------------------------------------

    def __post_init__(self) -> None:
        for field_name in ("methods", "workloads", "seeds"):
            value = getattr(self, field_name)
            if value is None and field_name == "seeds":
                continue
            _require(
                not isinstance(value, str),
                f"scenario.{field_name} must be a list of names, not the "
                f"string {value!r}",
            )
            try:
                value = tuple(value)
            except TypeError:
                raise ValueError(
                    f"scenario.{field_name} must be a list, got {value!r}"
                ) from None
            if field_name == "seeds":
                try:
                    value = tuple(int(s) for s in value)
                except (TypeError, ValueError):
                    raise ValueError(
                        f"scenario.seeds must be a list of ints, got {value!r}"
                    ) from None
            object.__setattr__(self, field_name, value)
        _require(bool(self.methods), "scenario needs at least one method")
        _require(bool(self.workloads), "scenario needs at least one workload")
        # Canonicalise method spellings ("MRSch" → "mrsch") so task keys,
        # pivot labels and per-method options all agree on one name.
        object.__setattr__(
            self,
            "methods",
            tuple(self._lookup(SCHEDULERS, m).name for m in self.methods),
        )
        _require(
            len(set(self.methods)) == len(self.methods),
            f"scenario.methods contains duplicates: {list(self.methods)}",
        )
        entries = [self._lookup(WORKLOADS, w) for w in self.workloads]
        _require(
            len({e.name for e in entries}) == len(entries),
            f"scenario.workloads contains duplicates: {list(self.workloads)}",
        )

        flavours = {e.case_study for e in entries}
        _require(
            len(flavours) == 1,
            "scenario mixes case-study (power) and plain workloads: "
            f"{[e.name for e in entries]}; split them into two scenarios",
        )
        flavour = flavours.pop()
        if self.case_study is None:
            object.__setattr__(self, "case_study", flavour)
        else:
            # An explicit flag that contradicts the workloads' registry
            # metadata would crash deep inside a worker (jobs built for
            # the wrong system); reject it here with the remedy.
            _require(
                bool(self.case_study) == flavour,
                f"case_study={self.case_study!r} contradicts the selected "
                f"workloads ({[e.name for e in entries]} are "
                f"{'case-study (power)' if flavour else 'plain'} workloads); "
                "drop the case_study field to derive it automatically",
            )

        _require(
            isinstance(self.system, Mapping),
            f"scenario.system must be a mapping, got {type(self.system).__name__}",
        )
        unknown = set(self.system) - _SYSTEM_KEYS
        _require(
            not unknown,
            f"unknown system field(s) {sorted(unknown)}; "
            f"allowed: {sorted(_SYSTEM_KEYS)}",
        )
        self._lookup(SYSTEMS, self.system.get("name", "mini_theta"))

        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"scenario.seed must be an int, got {self.seed!r}",
        )
        _require(
            isinstance(self.replications, int) and self.replications >= 1,
            f"scenario.replications must be a positive int, got {self.replications!r}",
        )
        _require(
            self.seeds is None or self.replications == 1,
            "give either explicit seeds or replications, not both",
        )
        _require(
            self.seeds is None or len(self.seeds) > 0,
            "scenario.seeds must be non-empty when given",
        )
        _require(
            self.seeds is None or len(set(self.seeds)) == len(self.seeds),
            f"scenario.seeds contains duplicates: {list(self.seeds or ())} "
            "(identical cells would silently collapse to one report)",
        )

        _require(
            isinstance(self.goal, Mapping),
            f"scenario.goal must be a mapping, got {type(self.goal).__name__}",
        )
        if self.goal:
            # Valid goal keys come from the registry (plugins included),
            # not a hardcoded list: a key is usable when some registered
            # scheduler declares it, and must be consumed by at least
            # one *selected* method to have any effect.
            known = {
                key for e in SCHEDULERS.entries() for key, _ in e.goal_options
            }
            unknown = set(self.goal) - known
            _require(
                not unknown,
                f"unknown goal option(s) {sorted(unknown)}; options declared "
                f"by registered schedulers: {sorted(known)}",
            )
            consumed = {
                key
                for m in self.methods
                for key, _ in SCHEDULERS.get(m).goal_options
            }
            dangling = set(self.goal) - consumed
            _require(
                not dangling,
                f"goal option(s) {sorted(dangling)} are consumed by none of "
                f"{list(self.methods)}; schedulers accepting them: "
                f"{self._goal_consumers(dangling)}",
            )

        _require(
            isinstance(self.options, Mapping),
            "scenario.options must map method name -> kwargs mapping",
        )
        canonical_options: dict = {}
        for method, kwargs in self.options.items():
            # Accept the same alternate spellings `methods` accepts.
            canonical = self._lookup(SCHEDULERS, method).name
            _require(
                canonical in self.methods,
                f"options given for {method!r}, which is not in "
                f"scenario.methods {list(self.methods)}",
            )
            _require(
                canonical not in canonical_options,
                f"options given twice for {canonical!r}",
            )
            _require(
                isinstance(kwargs, Mapping),
                f"options[{method!r}] must be a mapping of constructor kwargs",
            )
            canonical_options[canonical] = kwargs
        object.__setattr__(self, "options", canonical_options)
        # Reject typo'd option keys for factories whose constructor
        # kwargs are declared/derivable, instead of a worker TypeError.
        for method in self.methods:
            entry = SCHEDULERS.get(method)
            unknown_kwargs = entry.unknown_kwargs(dict(self._method_extra(method)))
            _require(
                not unknown_kwargs,
                f"options for {method!r} include kwargs its constructor "
                f"does not accept: {list(unknown_kwargs)}; accepted: "
                f"{sorted(entry.allowed_kwargs or ())}",
            )

        _require(
            isinstance(self.evaluation, Mapping),
            f"scenario.evaluation must be a mapping, got "
            f"{type(self.evaluation).__name__}",
        )
        if self.evaluation:
            unknown = set(self.evaluation) - _EVALUATION_KEYS
            _require(
                not unknown,
                f"unknown evaluation field(s) {sorted(unknown)}; "
                f"allowed: {sorted(_EVALUATION_KEYS)}",
            )
            policies = self.evaluation.get("policies")
            if policies is not None:
                _require(
                    isinstance(policies, (list, tuple)) and len(policies) > 0,
                    f"evaluation.policies must be a non-empty list, got {policies!r}",
                )
                # Resolved against the offline-policy registry so a typo
                # fails at load time, not after the whole grid has run.
                from repro.eval.policies import get_eval_policy

                for policy in policies:
                    try:
                        get_eval_policy(policy)
                    except KeyError as exc:
                        raise ValueError(exc.args[0]) from None
            trace_dir = self.evaluation.get("trace_dir")
            _require(
                trace_dir is None or (isinstance(trace_dir, str) and trace_dir),
                f"evaluation.trace_dir must be a non-empty string, got {trace_dir!r}",
            )
            bootstrap = self.evaluation.get("bootstrap")
            _require(
                bootstrap is None
                or (isinstance(bootstrap, int) and not isinstance(bootstrap, bool)
                    and bootstrap >= 1),
                f"evaluation.bootstrap must be a positive int, got {bootstrap!r}",
            )
            eval_seed = self.evaluation.get("seed")
            _require(
                eval_seed is None
                or (isinstance(eval_seed, int) and not isinstance(eval_seed, bool)),
                f"evaluation.seed must be an int, got {eval_seed!r}",
            )
            compact = self.evaluation.get("compact_traces")
            _require(
                compact is None or isinstance(compact, bool),
                f"evaluation.compact_traces must be a bool, got {compact!r}",
            )

        _require(
            isinstance(self.execution, Mapping),
            f"scenario.execution must be a mapping, got "
            f"{type(self.execution).__name__}",
        )
        if self.execution:
            unknown = set(self.execution) - _EXECUTION_KEYS
            _require(
                not unknown,
                f"unknown execution field(s) {sorted(unknown)}; "
                f"allowed: {sorted(_EXECUTION_KEYS)}",
            )
            dispatch = self.execution.get("dispatch", "pool")
            _require(
                dispatch in ("pool", "queue"),
                f"execution.dispatch must be 'pool' or 'queue', got {dispatch!r}",
            )
            queue_dir = self.execution.get("queue_dir")
            _require(
                queue_dir is None or (isinstance(queue_dir, str) and queue_dir),
                f"execution.queue_dir must be a non-empty string, got {queue_dir!r}",
            )
            _require(
                dispatch != "queue" or queue_dir is not None,
                "execution.dispatch='queue' needs execution.queue_dir "
                "(the shared work-queue directory)",
            )
            _require(
                queue_dir is None or dispatch == "queue",
                "execution.queue_dir given but execution.dispatch is "
                "'pool'; set dispatch='queue' to use the work queue",
            )
            workers = self.execution.get("workers")
            _require(
                workers is None
                or (isinstance(workers, int) and not isinstance(workers, bool)
                    and workers >= 1),
                f"execution.workers must be a positive int, got {workers!r}",
            )
            lease_ttl = self.execution.get("lease_ttl")
            _require(
                lease_ttl is None
                or (isinstance(lease_ttl, (int, float))
                    and not isinstance(lease_ttl, bool) and lease_ttl > 0),
                f"execution.lease_ttl must be a positive number, got {lease_ttl!r}",
            )
            cell_timeout = self.execution.get("cell_timeout_s")
            _require(
                cell_timeout is None
                or (isinstance(cell_timeout, (int, float))
                    and not isinstance(cell_timeout, bool) and cell_timeout > 0),
                f"execution.cell_timeout_s must be a positive number, "
                f"got {cell_timeout!r}",
            )
            supervise = self.execution.get("supervise", False)
            _require(
                isinstance(supervise, bool),
                f"execution.supervise must be a bool, got {supervise!r}",
            )

        _require(
            isinstance(self.config, Mapping),
            f"scenario.config must be a mapping, got {type(self.config).__name__}",
        )
        unknown = set(self.config) - _CONFIG_KEYS
        _require(
            not unknown,
            f"unknown config field(s) {sorted(unknown)}; "
            f"allowed: {sorted(_CONFIG_KEYS)}",
        )
        # Surface sizing errors (negative n_jobs, bad curriculum shape,
        # system/sizing mismatches, missing workload resources, unhashable
        # option values) now rather than deep inside a worker at run time.
        self.validate_system(self.build_config())
        try:
            canonical_json(
                [dict(self.goal), *(dict(kw) for kw in self.options.values())]
            )
        except TypeError as exc:
            raise ValueError(
                f"scenario.goal/options values must be JSON-serialisable: {exc}"
            ) from None

    @staticmethod
    def _lookup(registry, name: str):
        try:
            return registry.get(name)
        except KeyError as exc:
            raise ValueError(exc.args[0]) from None

    @staticmethod
    def _goal_consumers(keys: set) -> dict:
        return {
            key: [
                e.name
                for e in SCHEDULERS.entries()
                if key in dict(e.goal_options)
            ]
            for key in sorted(keys)
        }

    # -- (de)serialisation ------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping) -> "Scenario":
        """Build and validate a scenario from a plain mapping."""
        _require(
            isinstance(data, Mapping),
            f"scenario must be a mapping, got {type(data).__name__}",
        )
        unknown = set(data) - _ALLOWED_KEYS
        _require(
            not unknown,
            f"unknown scenario field(s) {sorted(unknown)}; "
            f"allowed: {sorted(_ALLOWED_KEYS - {'schedulers'})}",
        )
        _require(
            not ("methods" in data and "schedulers" in data),
            "give either 'methods' or its alias 'schedulers', not both",
        )
        methods = data.get("methods", data.get("schedulers"))
        _require(methods is not None, "scenario is missing required field 'methods'")
        _require("workloads" in data, "scenario is missing required field 'workloads'")
        kwargs = {k: v for k, v in data.items() if k not in ("methods", "schedulers")}
        # __post_init__ normalises list-like fields (and rejects strings
        # and non-iterables with named-field errors).
        return cls(methods=methods, **kwargs)

    @classmethod
    def from_file(cls, path: str | Path) -> "Scenario":
        """Load a scenario from a JSON (or, with PyYAML, YAML) file."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"scenario file not found: {path}")
        text = path.read_text()
        if path.suffix in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError:
                raise ValueError(
                    f"cannot load {path.name}: PyYAML is not installed; "
                    "write the scenario as JSON (a strict YAML subset)"
                ) from None
            data = yaml.safe_load(text)
        else:
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path.name} is not valid JSON: {exc}") from None
        try:
            return cls.from_dict(data)
        except ValueError as exc:
            raise ValueError(f"{path.name}: {exc}") from None

    def to_dict(self) -> dict:
        """Plain-dict rendering; ``from_dict`` round-trips it exactly."""
        out: dict = {
            "name": self.name,
            "methods": list(self.methods),
            "workloads": list(self.workloads),
            "system": dict(self.system),
            "seed": self.seed,
            "replications": self.replications,
            "train": self.train,
            "case_study": self.case_study,
        }
        if self.description:
            out["description"] = self.description
        if self.seeds is not None:
            out["seeds"] = list(self.seeds)
        if self.goal:
            out["goal"] = dict(self.goal)
        if self.options:
            out["options"] = {m: dict(kw) for m, kw in self.options.items()}
        if self.config:
            out["config"] = dict(self.config)
        if self.evaluation:
            out["evaluation"] = dict(self.evaluation)
        if self.execution:
            out["execution"] = dict(self.execution)
        return out

    def config_hash(self) -> str:
        """Stable digest of the scenario's semantic content.

        Key ordering in source files does not matter; two scenarios with
        the same content hash identically, which is what keeps the task
        config hashes — and therefore the result cache — stable. The
        ``execution`` section is excluded: it decides *how* cells run
        (pool vs queue, worker count), never what they compute, so
        flipping dispatch modes must not invalidate anything.
        """
        doc = self.to_dict()
        doc.pop("execution", None)
        return hashlib.sha256(canonical_json(doc).encode()).hexdigest()[:16]

    # -- compilation ------------------------------------------------------

    def validate_system(self, config: "ExperimentConfig") -> None:
        """Check the workloads' resource requirements against ``config``.

        Runs automatically for the scenario's own config; callers that
        substitute a pre-built :class:`ExperimentConfig` (``compare``,
        ``run_scenario(config=...)``) get the same up-front guarantee
        instead of a ``KeyError`` deep inside a worker.
        """
        system = config.system()
        for workload in self.workloads:
            entry = WORKLOADS.get(workload)
            missing = [r for r in entry.requires if r not in system.names]
            _require(
                not missing,
                f"workload {entry.name!r} requires resource(s) {missing} "
                f"that system {config.system_name!r} "
                f"(resources: {system.names}) does not provide",
            )

    def build_config(self) -> "ExperimentConfig":
        """Materialise the :class:`ExperimentConfig` this scenario sizes.

        A fixed-scale system factory (e.g. ``"theta"``) that ignores the
        sizing arguments defines the experiment's ``nodes``/``bb_units``
        itself — the trace is sized from the built system's capacities,
        and explicitly requesting a different size is an error.
        """
        from repro.cluster.resources import BURST_BUFFER, NODE
        from repro.experiments.harness import ExperimentConfig
        from repro.sched.ga import NSGA2Config

        system_name = self.system.get("name", "mini_theta")
        kwargs: dict = {"seed": self.seed, "system_name": system_name}
        probe = self._lookup(SYSTEMS, system_name).build(
            nodes=self.system.get("nodes"), bb_units=self.system.get("bb_units")
        )
        for key, resource in (("nodes", NODE), ("bb_units", BURST_BUFFER)):
            requested = self.system.get(key)
            if resource in probe.names:
                actual = probe.capacity(resource)
                _require(
                    requested is None or requested == actual,
                    f"system {system_name!r} fixes {resource} at {actual} "
                    f"units; it cannot be resized to {requested}",
                )
                kwargs[key] = actual
            elif requested is not None:
                kwargs[key] = requested
        for key in ("n_jobs", "window_size", "jobs_per_trainset", "mean_interarrival"):
            if key in self.config:
                kwargs[key] = self.config[key]
        if "curriculum_sets" in self.config:
            sets = self.config["curriculum_sets"]
            _require(
                isinstance(sets, (list, tuple)) and len(sets) == 3,
                f"config.curriculum_sets must be a 3-item list, got {sets!r}",
            )
            kwargs["curriculum_sets"] = tuple(int(s) for s in sets)
        if "ga" in self.config:
            ga = self.config["ga"]
            _require(
                isinstance(ga, Mapping),
                f"config.ga must be a mapping of NSGA-II fields, got {ga!r}",
            )
            try:
                kwargs["ga_config"] = NSGA2Config(**ga)
            except TypeError as exc:
                raise ValueError(f"config.ga: {exc}") from None
        return ExperimentConfig(**kwargs)

    def _method_extra(self, method: str) -> tuple[tuple[str, object], ...]:
        """Merged per-method constructor kwargs: goal translation + options."""
        entry = SCHEDULERS.get(method)
        merged: dict = {}
        translations = dict(entry.goal_options)
        for key, value in self.goal.items():
            if key in translations:
                merged[translations[key]] = value
        merged.update(self.options.get(method, {}))
        return tuple(sorted(merged.items()))

    def compile(self, config: "ExperimentConfig | None" = None) -> list[ExperimentTask]:
        """Compile to the (method × seed) grid cells the engine executes.

        Mirrors :func:`repro.exp.runner.grid_tasks` exactly — same seed
        spawning, same cell ordering — so a scenario equivalent to a
        harness comparison produces bit-identical tasks (and therefore
        bit-identical metrics and cache keys). ``config`` overrides the
        scenario-built :class:`ExperimentConfig`; scenario seeds still
        apply.
        """
        from repro.exp.runner import spawn_grid_seeds

        config = config if config is not None else self.build_config()
        if self.seeds is not None:
            seeds = list(self.seeds)
        elif self.replications == 1:
            seeds = [config.seed]
        else:
            seeds = spawn_grid_seeds(config.seed, self.replications)
        return [
            ExperimentTask(
                method=method,
                workloads=self.workloads,
                seed=int(seed),
                config=config,
                train=self.train,
                case_study=bool(self.case_study),
                extra=self._method_extra(method),
                capture_traces=bool(self.evaluation),
            )
            for seed in seeds
            for method in self.methods
        ]

    def replace(self, **changes) -> "Scenario":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


def load_scenario(source: "Scenario | Mapping | str | Path") -> Scenario:
    """Coerce any accepted scenario source into a :class:`Scenario`."""
    if isinstance(source, Scenario):
        return source
    if isinstance(source, Mapping):
        return Scenario.from_dict(source)
    if isinstance(source, (str, Path)):
        return Scenario.from_file(source)
    raise TypeError(
        f"cannot load a scenario from {type(source).__name__}; "
        "pass a Scenario, a mapping, or a file path"
    )
