"""Built-in registrations: the paper's methods, workloads and systems.

Imported (once) by :mod:`repro.api.registry` on first lookup. Scheduler
factories import their implementation modules lazily so that listing
names — the CLI's ``repro list``, scenario validation — never pays for
the neural-network stack.

Registration order is the paper's reporting order; it defines what
:func:`repro.api.registry.paper_methods` and
:func:`repro.api.registry.paper_workloads` return.
"""

from __future__ import annotations

from repro.api.registry import (
    register_scheduler,
    register_system,
    register_workload,
)
from repro.workload.suites import (
    CASE_STUDY_SPECS,
    WORKLOAD_SPECS,
    build_workload,
)

# -- schedulers (§IV-D comparison methods) -----------------------------------


@register_scheduler(
    "mrsch",
    description="MRSch: multi-resource DFP agent with dynamic goal (the paper)",
    trainable=True,
    paper=True,
    goal_options={"dynamic": "dynamic_goal", "prior_weight": "prior_weight"},
    allowed_kwargs=("backfill", "dfp_config", "state_module", "agent",
                    "time_scale", "prior_weight", "dynamic_goal"),
)
def _make_mrsch(system, window_size=10, seed=None, **kwargs):
    from repro.core.mrsch import MRSchScheduler

    return MRSchScheduler(system, window_size=window_size, seed=seed, **kwargs)


@register_scheduler(
    "optimization",
    description="NSGA-II multi-objective window ordering (Optimization baseline)",
    paper=True,
    config_options={"ga_config": "config"},
    allowed_kwargs=("backfill", "config"),
)
def _make_ga(system, window_size=10, seed=None, **kwargs):
    from repro.sched.ga import GAScheduler

    return GAScheduler(window_size=window_size, seed=seed, **kwargs)


@register_scheduler(
    "scalar_rl",
    description="Fixed-weight REINFORCE over scalarised utilization (Scalar RL baseline)",
    trainable=True,
    paper=True,
    goal_options={"weights": "reward_weights"},
    allowed_kwargs=("backfill", "hidden", "lr", "gamma", "reward_weights",
                    "walltime_scale", "wait_scale"),
)
def _make_scalar_rl(system, window_size=10, seed=None, **kwargs):
    from repro.sched.scalar_rl import ScalarRLScheduler

    return ScalarRLScheduler(system, window_size=window_size, seed=seed, **kwargs)


@register_scheduler(
    "heuristic",
    description="FCFS list scheduling with EASY backfilling (Heuristic baseline)",
    seeded=False,
    paper=True,
    allowed_kwargs=("backfill",),
)
def _make_fcfs(system, window_size=10, seed=None, **kwargs):
    from repro.sched.fcfs import FCFSScheduler

    return FCFSScheduler(window_size=window_size, **kwargs)


# -- workloads (Table III and §V-E) ------------------------------------------


def _register_spec_workloads() -> None:
    for spec in WORKLOAD_SPECS.values():
        register_workload(
            spec.name,
            description=(
                f"Table III {spec.name}: {spec.bb_fraction:.0%} of jobs with "
                f"BB requests in [{spec.bb_lo_frac:.3f}, {spec.bb_hi_frac:.3f}] "
                f"of capacity"
                + (", half-scale node requests" if spec.node_scale != 1.0 else "")
            ),
            paper=True,
        )(lambda base, system, seed, _spec=spec: build_workload(_spec, base, system, seed=seed))
    for spec in CASE_STUDY_SPECS.values():
        register_workload(
            spec.name,
            description=(
                f"§V-E {spec.name}: {spec.bb_fraction:.0%} BB jobs plus "
                f"100–215 W/node power profiles under the facility budget"
            ),
            case_study=True,
            paper=True,
        )(lambda base, system, seed, _spec=spec: build_workload(_spec, base, system, seed=seed))


_register_spec_workloads()


# -- systems -----------------------------------------------------------------


@register_system(
    "mini_theta",
    description="Proportional miniature of Theta (contention ratios preserved)",
)
def _make_mini_theta(nodes=128, bb_units=64):
    from repro.cluster.resources import SystemConfig

    return SystemConfig.mini_theta(nodes=nodes, bb_units=bb_units)


@register_system(
    "theta",
    description="Full-scale Theta: 4,392 KNL nodes + 1.26 PB burst buffer",
)
def _make_theta():
    from repro.cluster.resources import SystemConfig

    return SystemConfig.theta()
