"""``repro`` — the command-line front door to the scenario API.

Four subcommands, each a thin shell over :mod:`repro.api`:

``repro list``
    Show every registered scheduler, workload and system with its
    capability metadata.
``repro run scenario.json``
    Load, validate and execute a scenario file on the experiment
    engine; print per-workload metric tables (or ``--json``).
``repro compare --methods mrsch heuristic --workloads S1 S4``
    Run an inline comparison grid without writing a scenario file.
``repro eval --trace-dir traces --policies fcfs shortest_job``
    Replay recorded decision traces through offline policies and print
    the agreement / rank-correlation / regret comparison (record traces
    with ``repro run`` on a scenario that has an ``evaluation`` block).
``repro bench --scale smoke --check``
    Run the hot-path micro-benchmarks (``repro.perf``), print the
    timing table, optionally append a ``BENCH_hotpath.json`` trajectory
    entry and enforce the normalised regression guard.
``repro work --queue DIR``
    Join a shared-directory work queue as an elastic worker: claim
    lease-able grid cells, execute them, publish durably, repeat until
    the queue drains (``--wait`` keeps polling for new cells, exiting
    with a distinct status once the run manifest completes). Start or
    kill any number of these, on any host sharing the directory, at any
    point mid-grid. ``--supervise N`` runs N workers under a supervisor
    that respawns crashed processes with exponential backoff and a
    crash-loop circuit breaker.
``repro queue-status --queue DIR``
    One snapshot of a work queue's progress: done/leased/expired cell
    counts, failures, workers seen, and — once workers have published
    metrics snapshots — cells/sec throughput with an ETA.
    ``--watch N`` refreshes the snapshot every N seconds until the
    queue drains.
``repro doctor QUEUE_DIR``
    Audit a queue directory after an incident: corrupt/unsealed
    manifests, orphan or expired leases, dead coordinators, stale
    worker registrations, leftover staging/temp files, quarantine and
    spool backlog. Dry-run by default; ``--repair`` applies the safe
    mechanical repairs. Exit 0 when the audit is clean.
``repro trace export --telemetry DIR``
    Convert a ``--telemetry`` run's span records into one Chrome-trace
    JSON file that chrome://tracing and https://ui.perfetto.dev load
    directly; ``repro trace summary`` prints span/event/metric counts.

Telemetry: ``repro run --telemetry[=DIR]`` and ``repro work
--telemetry[=DIR]`` enable the :mod:`repro.obs` instrumentation
(structured events, spans, metrics snapshots) rooted at DIR (default
``telemetry/``). Purely observational — decisions, metrics and cache
keys are bit-identical with telemetry on or off.

Exit codes: 0 on success, 1 on a validation/runtime error (with a
single-line message on stderr), 2 on bad command-line usage (argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.api.registry import SCHEDULERS, SYSTEMS, WORKLOADS

__all__ = ["main", "build_parser"]


def _split_names(values: Sequence[str]) -> list[str]:
    """Flatten ``--methods a b`` and ``--methods a,b`` alike."""
    out: list[str] = []
    for value in values:
        out.extend(part for part in value.split(",") if part)
    return out


def _first_line(text: str) -> str:
    return text.splitlines()[0] if text else ""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative scenario runner for the MRSch reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list", help="list registered schedulers, workloads and systems"
    )
    p_list.add_argument("--json", action="store_true", help="machine-readable output")

    p_run = sub.add_parser("run", help="execute a scenario file")
    p_run.add_argument("scenario", help="path to a scenario .json file")
    p_run.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes (results identical at any "
                            "width; default: the scenario's "
                            "execution.workers, else 1)")
    p_run.add_argument("--queue", default=None, metavar="DIR",
                       help="dispatch through the shared work queue at DIR "
                            "(repro.dist) instead of the local process "
                            "pool; elastic 'repro work' workers may join")
    p_run.add_argument("--seed", type=int, default=None,
                       help="override the scenario's root seed (replaces an "
                            "explicit seeds list)")
    p_run.add_argument("--replications", type=int, default=None, metavar="N",
                       help="override the scenario's replication count")
    train_group = p_run.add_mutually_exclusive_group()
    train_group.add_argument("--train", dest="train", action="store_true",
                             default=None, help="force curriculum training on")
    train_group.add_argument("--no-train", dest="train", action="store_false",
                             help="force curriculum training off")
    p_run.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="enable the on-disk result cache")
    p_run.add_argument("--checkpoint", default=None, metavar="FILE",
                       help="enable resumable JSONL checkpointing")
    p_run.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="decision-trace store for scenarios with an "
                            "'evaluation' block (overrides the scenario's "
                            "evaluation.trace_dir)")
    p_run.add_argument("--compact-traces", action="store_true",
                       help="store recorded decision traces as float32 "
                            "(~half the bytes; storage fidelity only — "
                            "equivalent to evaluation.compact_traces)")
    p_run.add_argument("--telemetry", nargs="?", const="telemetry", default=None,
                       metavar="DIR",
                       help="record structured telemetry (events, spans, "
                            "metrics) under DIR (default: ./telemetry); "
                            "export with 'repro trace export'. Decisions "
                            "and metrics are bit-identical either way")
    p_run.add_argument("--telemetry-decisions", action="store_true",
                       help="additionally sample scheduler decision "
                            "latencies (1-in-64) into the telemetry "
                            "metrics; requires --telemetry")
    p_run.add_argument("--no-progress", action="store_true",
                       help="suppress the live stderr progress line "
                            "(auto-suppressed off-TTY and with --json)")
    p_run.add_argument("--json", action="store_true", help="machine-readable output")

    p_cmp = sub.add_parser("compare", help="run an inline comparison grid")
    p_cmp.add_argument("--methods", nargs="+", default=None, metavar="NAME",
                       help="schedulers to compare (default: the paper's four)")
    p_cmp.add_argument("--workloads", nargs="+", required=True, metavar="NAME")
    p_cmp.add_argument("--seeds", nargs="+", type=int, default=None, metavar="SEED",
                       help="explicit seed axis (one grid row per seed)")
    p_cmp.add_argument("--seed", type=int, default=2022, help="root seed")
    p_cmp.add_argument("--replications", type=int, default=1, metavar="N")
    p_cmp.add_argument("--nodes", type=int, default=128)
    p_cmp.add_argument("--bb-units", type=int, default=64)
    p_cmp.add_argument("--n-jobs", type=int, default=150)
    p_cmp.add_argument("--window-size", type=int, default=10)
    p_cmp.add_argument("--train", action="store_true",
                       help="curriculum-train trainable methods (slower)")
    p_cmp.add_argument("--workers", type=int, default=1, metavar="N")
    p_cmp.add_argument("--json", action="store_true", help="machine-readable output")

    p_eval = sub.add_parser(
        "eval",
        help="compare offline policies on recorded decision traces",
        description="Replay a store of recorded decision traces through two "
                    "or more offline policies (no simulation) and print "
                    "agreement, rank-correlation, counterfactual-regret and "
                    "paired-bootstrap statistics. Traces are recorded by "
                    "'repro run' when the scenario has an 'evaluation' block.",
    )
    p_eval.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="trace store written by a scenario run "
                             "(required unless --list-policies)")
    p_eval.add_argument("--policies", nargs="+", default=None, metavar="NAME",
                        help="offline policies to compare (default: fcfs + "
                             "shortest_job + prior; see --list-policies)")
    p_eval.add_argument("--keys", nargs="+", default=None, metavar="KEY",
                        help="restrict to specific trace store keys")
    p_eval.add_argument("--dfp-checkpoint", default=None, metavar="FILE",
                        help="also replay a saved DFP agent checkpoint "
                             "(policy name 'dfp') via the batched scorer")
    p_eval.add_argument("--bootstrap", type=int, default=1000, metavar="N",
                        help="paired bootstrap resamples")
    p_eval.add_argument("--bootstrap-seed", type=int, default=0, metavar="SEED")
    p_eval.add_argument("--list-policies", action="store_true",
                        help="list registered offline policies and exit")
    p_eval.add_argument("--json", action="store_true", help="machine-readable output")

    p_bench = sub.add_parser(
        "bench",
        help="run the hot-path micro-benchmarks (repro.perf)",
        description="Time the simulate→decide→replay hot path: a saturated "
                    "FCFS replay, an MRSch training episode, and pool/DFP "
                    "micro-benchmarks. Timings are normalised by an "
                    "on-machine calibration loop; --append records a "
                    "BENCH_hotpath.json trajectory entry, --check fails "
                    "(exit 1) when the run regresses more than --threshold "
                    "versus the last committed entry at the same scale.",
    )
    p_bench.add_argument("--scale", "--suite", dest="scale",
                         choices=("full", "smoke"), default="full",
                         help="benchmark suite sizing (smoke: seconds, for "
                              "CI); --suite is an alias")
    p_bench.add_argument("--list", action="store_true", dest="list_benches",
                         help="list available benchmarks with their "
                              "per-suite sizings and exit")
    p_bench.add_argument("--only", nargs="+", default=None, metavar="NAME",
                         help="run only the named benchmark(s); see --list")
    p_bench.add_argument("--label", default="local",
                         help="trajectory label for this run")
    p_bench.add_argument("--out", default=None, metavar="FILE",
                         help="trajectory file (default: BENCH_hotpath.json "
                              "at the repository root)")
    p_bench.add_argument("--append", action="store_true",
                         help="append this run to the trajectory file")
    p_bench.add_argument("--check", action="store_true",
                         help="fail if slower than the committed baseline")
    p_bench.add_argument("--threshold", type=float, default=1.5,
                         help="allowed normalised slowdown for --check")
    p_bench.add_argument("--no-float32", action="store_true",
                         help="skip the float32 scoring benchmark")
    p_bench.add_argument("--json", action="store_true",
                         help="machine-readable output")

    p_work = sub.add_parser(
        "work",
        help="join a shared work queue as an elastic worker",
        description="Claim, execute and durably publish grid cells from a "
                    "shared-directory work queue (written by "
                    "ExperimentRunner(dispatch='queue'), 'repro run "
                    "--queue', or another worker's deterministic grid "
                    "expansion). Workers may be started or killed at any "
                    "time mid-grid: a crashed worker's cells re-issue after "
                    "its lease expires, and re-issued results are "
                    "bit-identical by construction.",
    )
    p_work.add_argument("--queue", required=True, metavar="DIR",
                        help="the work-queue directory")
    p_work.add_argument("--worker-id", default=None, metavar="ID",
                        help="journal-shard / lease owner id "
                             "(default: host-pid-random)")
    p_work.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                        help="lease expiry override in seconds "
                             "(default: 30)")
    p_work.add_argument("--poll", type=float, default=0.5, metavar="S",
                        help="idle scan interval")
    p_work.add_argument("--max-cells", type=int, default=None, metavar="N",
                        help="exit after executing N cells")
    p_work.add_argument("--wait", action="store_true",
                        help="keep polling after the queue drains instead "
                             "of exiting (long-lived elastic worker)")
    p_work.add_argument("--cell-timeout", type=float, default=None,
                        metavar="S",
                        help="per-cell execution deadline in seconds: a "
                             "hung cell is abandoned, recorded as a failed "
                             "attempt and its lease released (default: the "
                             "queue meta's execution.cell_timeout_s, if any)")
    p_work.add_argument("--supervise", type=int, default=None, metavar="N",
                        help="run N workers under a supervisor that "
                             "respawns crashed worker processes with "
                             "exponential backoff and opens a circuit "
                             "breaker on a crash loop (exit 2)")
    p_work.add_argument("--max-crashes", type=int, default=5, metavar="N",
                        help="consecutive crashes that open a supervised "
                             "slot's circuit breaker (with --supervise)")
    p_work.add_argument("--backoff", type=float, default=0.5, metavar="S",
                        help="base respawn backoff in seconds, doubled per "
                             "consecutive crash (with --supervise)")
    p_work.add_argument("--faults", default=None, metavar="FILE",
                        help="scripted FaultPlan JSON file (fault-injection "
                             "testing; REPRO_DIST_FAULTS env overrides)")
    p_work.add_argument("--telemetry", nargs="?", const="telemetry", default=None,
                        metavar="DIR",
                        help="record structured telemetry under DIR; a "
                             "queue whose coordinator enabled telemetry "
                             "turns this on automatically via meta.json")
    p_work.add_argument("-v", "--verbose", action="count", default=0,
                        help="stderr log level: -v lifecycle events (INFO), "
                             "-vv everything (DEBUG); default WARNING "
                             "(reaps, straggles, failures)")
    p_work.add_argument("-q", "--quiet", action="store_true",
                        help="errors only on stderr")
    p_work.add_argument("--json", action="store_true",
                        help="machine-readable exit report")

    p_qstat = sub.add_parser(
        "queue-status",
        help="show a work queue's progress snapshot",
    )
    p_qstat.add_argument("--queue", required=True, metavar="DIR",
                         help="the work-queue directory")
    p_qstat.add_argument("--watch", type=float, default=None, metavar="S",
                         help="refresh the snapshot every S seconds until "
                              "the queue drains (throughput/ETA appear "
                              "once workers publish metrics snapshots)")
    p_qstat.add_argument("--json", action="store_true",
                         help="machine-readable output (one JSON document "
                              "per refresh with --watch)")

    p_doctor = sub.add_parser(
        "doctor",
        help="audit (and repair) a work-queue directory",
        description="Walk one queue directory and report every anomaly "
                    "the dispatch layer understands: corrupt or unsealed "
                    "run manifests, unpromoted/orphan batch files, dead "
                    "coordinators, orphan and expired leases, stale "
                    "worker registrations, leftover temp files, "
                    "quarantine contents and spool backlog. Dry-run by "
                    "default: nothing is touched without --repair. Exit "
                    "0 when nothing unrepaired at warning-or-worse "
                    "severity remains, else 1.",
    )
    p_doctor.add_argument("queue_dir", metavar="QUEUE_DIR",
                          help="the work-queue directory to audit")
    p_doctor.add_argument("--repair", action="store_true",
                          help="apply the safe mechanical repairs "
                               "(promote/release/reap/delete); default is "
                               "a dry run that only reports")
    p_doctor.add_argument("--stale-after", type=float, default=300.0,
                          metavar="S",
                          help="age in seconds after which a worker "
                               "registration with no exit record counts "
                               "as stale")
    p_doctor.add_argument("--json", action="store_true",
                          help="machine-readable report")

    p_trace = sub.add_parser(
        "trace",
        help="export or summarize a telemetry run",
        description="Work with the telemetry directory a '--telemetry' run "
                    "wrote. 'export' merges the span records (and, by "
                    "default, the structured events as instant markers) "
                    "into one Chrome-trace JSON file loadable in "
                    "chrome://tracing or https://ui.perfetto.dev; "
                    "'summary' prints span/event/metric roll-ups.",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    t_export = trace_sub.add_parser(
        "export", help="write a Chrome-trace/Perfetto JSON file"
    )
    t_export.add_argument("--telemetry", required=True, metavar="DIR",
                          help="telemetry directory of a --telemetry run")
    t_export.add_argument("--out", default=None, metavar="FILE",
                          help="output path (default: DIR/trace.json)")
    t_export.add_argument("--no-events", action="store_true",
                          help="omit structured events (instant markers)")
    t_summary = trace_sub.add_parser(
        "summary", help="print span/event/metric counts for a telemetry run"
    )
    t_summary.add_argument("--telemetry", required=True, metavar="DIR",
                           help="telemetry directory of a --telemetry run")
    t_summary.add_argument("--json", action="store_true",
                           help="machine-readable output")

    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.api.facade import describe_components

    snapshot = describe_components()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print("Schedulers:")
    for entry in SCHEDULERS.entries():
        flags = ", ".join(
            flag
            for flag, on in (
                ("trainable", entry.trainable),
                ("seeded", entry.seeded),
                ("multi-resource", entry.multi_resource),
                ("paper", entry.paper),
            )
            if on
        )
        print(f"  {entry.name:<14} {_first_line(entry.description)}  [{flags}]")
    print("\nWorkloads:")
    for entry in WORKLOADS.entries():
        tag = "case-study" if entry.case_study else "table-III" if entry.paper else "plugin"
        print(f"  {entry.name:<14} {_first_line(entry.description)}  [{tag}]")
    print("\nSystems:")
    for entry in SYSTEMS.entries():
        print(f"  {entry.name:<14} {_first_line(entry.description)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api.facade import run_scenario
    from repro.api.scenario import Scenario

    scenario = Scenario.from_file(args.scenario)
    overrides: dict = {}
    if args.seed is not None:
        # An explicit seeds axis would otherwise shadow the new root
        # seed in Scenario.compile — re-seeding replaces it.
        overrides["seed"] = args.seed
        overrides["seeds"] = None
    if args.replications is not None:
        overrides["replications"] = args.replications
        overrides["seeds"] = None
    if args.train is not None:
        overrides["train"] = args.train
    if args.compact_traces:
        if not scenario.evaluation:
            raise ValueError(
                "--compact-traces requires a scenario with an 'evaluation' "
                "block (nothing records traces otherwise)"
            )
        overrides["evaluation"] = {**scenario.evaluation, "compact_traces": True}
    if overrides:
        scenario = scenario.replace(**overrides)

    if args.telemetry_decisions and args.telemetry is None:
        raise ValueError(
            "--telemetry-decisions samples into the telemetry metrics; "
            "enable them with --telemetry[=DIR]"
        )
    telemetry = None
    if args.telemetry is not None:
        import repro.obs as obs

        telemetry = obs.enable(
            args.telemetry, sample_decisions=args.telemetry_decisions
        )
    try:
        result = run_scenario(
            scenario,
            n_workers=args.workers,
            cache_dir=args.cache_dir,
            checkpoint_path=args.checkpoint,
            trace_dir=args.trace_dir,
            queue_dir=args.queue,
            # --json output must stay byte-clean even on a TTY.
            progress=False if (args.json or args.no_progress) else None,
        )
    finally:
        if telemetry is not None:
            import repro.obs as obs

            obs.disable()
    if args.json:
        print(json.dumps(result.to_json_dict(), indent=2, sort_keys=True))
    else:
        n_cells = len(result.tasks)
        wall = sum(r.wall_time for r in result.results)
        print(
            f"scenario {scenario.name!r} ({scenario.config_hash()}): "
            f"{n_cells} cell(s), {wall:.1f} s task time\n"
        )
        print(result.summary())
        if telemetry is not None and telemetry.directory is not None:
            print(
                f"\ntelemetry written to {telemetry.directory} "
                f"(export: repro trace export --telemetry "
                f"{telemetry.directory})"
            )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.api.facade import compare, render_reports
    from repro.experiments.harness import ExperimentConfig

    config = ExperimentConfig(
        nodes=args.nodes,
        bb_units=args.bb_units,
        n_jobs=args.n_jobs,
        window_size=args.window_size,
        seed=args.seed,
    )
    reports = compare(
        workloads=_split_names(args.workloads),
        methods=_split_names(args.methods) if args.methods else None,
        config=config,
        seeds=args.seeds,
        replications=args.replications,
        train=args.train,
        n_workers=args.workers,
    )
    if args.json:
        print(json.dumps(
            {w: {m: r.full_dict() for m, r in per.items()} for w, per in reports.items()},
            indent=2,
            sort_keys=True,
        ))
        return 0
    print(render_reports(reports, "compare"))
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.api.facade import evaluate_traces
    from repro.eval.policies import build_policies, describe_eval_policies

    if args.list_policies:
        print("Offline policies:")
        for name, description in describe_eval_policies().items():
            print(f"  {name:<16} {description}")
        return 0
    if args.trace_dir is None:
        raise ValueError(
            "give the trace store via --trace-dir (written by 'repro run' on "
            "a scenario with an 'evaluation' block)"
        )

    names = _split_names(args.policies) if args.policies else [
        "fcfs", "shortest_job", "prior"
    ]
    policies = build_policies(names)
    if len(policies) + (1 if args.dfp_checkpoint else 0) < 2:
        raise ValueError(
            f"repro eval compares policies — give at least two via "
            f"--policies (got {list(policies)})"
        )
    report = evaluate_traces(
        args.trace_dir,
        policies,
        keys=_split_names(args.keys) if args.keys else None,
        dfp_checkpoint=args.dfp_checkpoint,
        n_bootstrap=args.bootstrap,
        bootstrap_seed=args.bootstrap_seed,
    )
    if args.json:
        print(json.dumps(report.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"trace store {args.trace_dir}: {report.n_traces} trace(s), "
            f"{report.n_decisions} decisions\n"
        )
        print(report.summary())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import (
        TRAJECTORY_PATH,
        append_entry,
        calibrate,
        check_regression,
        load_trajectory,
        make_entry,
        run_suite,
    )
    from repro.perf import list_benches
    from repro.perf.trajectory import format_entry, latest_entry

    if args.list_benches:
        benches = list_benches()
        if args.json:
            print(json.dumps(benches, indent=2, sort_keys=True))
            return 0
        print("Hot-path benchmarks:")
        for bench in benches:
            print(f"  {bench['name']:<22} {bench['description']}")
            for scale_name, size in bench["sizes"].items():
                sizing = ", ".join(f"{k}={v}" for k, v in size.items()) or "defaults"
                print(f"  {'':<22}   {scale_name}: {sizing}")
        return 0

    if args.only and args.append:
        # A partial entry would become the scale's newest baseline and
        # silently blind --check for every benchmark it omits.
        raise ValueError(
            "--append records a full-suite baseline; it cannot be "
            "combined with --only (drop --append, or run the whole suite)"
        )

    path = args.out if args.out is not None else TRAJECTORY_PATH
    calibration = calibrate()
    results = run_suite(
        scale=args.scale,
        float32=not args.no_float32,
        only=_split_names(args.only) if args.only else None,
    )
    entry = make_entry(
        args.label, results, calibration_s=calibration, scale=args.scale
    )

    failures: list[str] = []
    baseline = None
    if args.check:
        # The baseline is resolved before any --append, so the current
        # run can never be compared against itself — no label games.
        baseline = latest_entry(load_trajectory(path), scale=args.scale)
        if baseline is None:
            raise ValueError(
                f"--check needs a committed baseline entry at scale "
                f"{args.scale!r} in {path}; record one with --append first"
            )
        compared = set(entry["results"]) & set(baseline.get("results", {}))
        if not compared:
            # check_regression skips non-overlapping names; a guard that
            # compared nothing must not report success.
            raise ValueError(
                f"--check compared no benchmarks: the baseline entry "
                f"{baseline.get('label', '?')!r} has none of "
                f"{sorted(entry['results'])} — run the full suite or pick "
                f"--only names the baseline covers"
            )
        failures = check_regression(entry, baseline, threshold=args.threshold)

    appended = False
    if args.append and not failures:
        # Never record a run the guard rejected: it would become the
        # newest same-scale entry and silently rebase later --check
        # runs onto the regression.
        append_entry(entry, path)
        appended = True

    if args.json:
        print(json.dumps(
            {"entry": entry,
             "baseline": baseline,
             "regressions": failures,
             "trajectory_path": str(path)},
            indent=2, sort_keys=True,
        ))
    else:
        print(format_entry(entry))
        if appended:
            print(f"\nappended to {path}")
        elif args.append and failures:
            print(f"\nNOT appended to {path}: the regression guard failed")
        if baseline is not None and not failures:
            print(f"\nregression guard OK vs {baseline.get('label', '?')} "
                  f"({baseline.get('commit', '?')}, threshold "
                  f"{args.threshold:.2f}x)")
    if failures:
        for failure in failures:
            print(f"repro bench: REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    from repro.dist import FaultPlan, QueueWorker, StoreUnavailable, WorkQueue
    from repro.obs.logbridge import configure_stderr_logging

    configure_stderr_logging(verbose=args.verbose, quiet=args.quiet)
    if args.telemetry is not None:
        import repro.obs as obs

        obs.enable(args.telemetry)
    plan = FaultPlan.from_env()
    if plan is None and args.faults:
        from pathlib import Path

        plan = FaultPlan.from_json(Path(args.faults).read_text())
    if args.supervise is not None:
        return _run_supervised(args, plan)
    worker = QueueWorker(
        WorkQueue(args.queue, create=False),
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        poll_interval=args.poll,
        max_cells=args.max_cells,
        wait_for_work=args.wait,
        cell_timeout_s=args.cell_timeout,
        faults=plan,
    )
    try:
        report = worker.run()
    except (StoreUnavailable, RuntimeError) as exc:
        # A store that stayed down through the strike budget: the
        # worker already spooled any finished results locally and the
        # message says where — surface it without a traceback wall.
        print(f"repro work: error: {exc}", file=sys.stderr)
        return 2
    # The worker may also have enabled telemetry from the queue's
    # meta.json; either way, flush and close before reporting.
    import repro.obs as obs

    if obs.enabled():
        obs.disable()
    if args.json:
        print(json.dumps({
            "worker_id": report.worker_id,
            "executed": report.executed,
            "reaped": report.reaped,
            "straggled": report.straggled,
            "failed": report.failed,
            "timed_out": report.timed_out,
            "spooled": report.spooled,
            "exit_reason": report.exit_reason,
        }, indent=2, sort_keys=True))
    else:
        print(
            f"worker {report.worker_id}: {report.cells_done} cell(s) "
            f"executed, {len(report.reaped)} expired lease(s) reaped, "
            f"{len(report.failed)} failed"
            + (f", {len(report.timed_out)} timed out"
               if report.timed_out else "")
            + (f" [{report.exit_reason}]" if report.exit_reason else "")
        )
    return 1 if report.failed else 0


def _run_supervised(args: argparse.Namespace, plan) -> int:
    """The ``repro work --supervise N`` branch: spawn-and-respawn N
    worker processes instead of running one inline loop."""
    from repro.dist import WorkerSupervisor

    if args.supervise < 1:
        raise ValueError(
            f"--supervise needs at least one worker slot, "
            f"got {args.supervise}"
        )
    if args.backoff <= 0:
        raise ValueError(f"--backoff must be positive, got {args.backoff}")
    if args.max_crashes < 1:
        raise ValueError(
            f"--max-crashes must be at least 1, got {args.max_crashes}"
        )
    supervisor = WorkerSupervisor(
        args.queue,
        args.supervise,
        lease_ttl=args.lease_ttl,
        backoff_base_s=args.backoff,
        max_crashes=args.max_crashes,
        wait_for_work=args.wait,
        cell_timeout_s=args.cell_timeout,
        worker_poll_interval=args.poll,
        # A scripted plan applies to each slot's *first* incarnation
        # only — respawned workers run clean, which is exactly the
        # crash-then-recover rehearsal the flag exists for.
        spawn_faults=[[plan] for _ in range(args.supervise)] if plan else None,
    )
    try:
        report = supervisor.run()
    except KeyboardInterrupt:
        supervisor.stop()
        report = supervisor.report
        report.exit_reason = report.exit_reason or "stopped"
    if args.json:
        print(json.dumps({
            "slots": report.slots,
            "spawned": report.spawned,
            "crashes": report.crashes,
            "strikes": report.strikes,
            "circuit_open": report.circuit_open,
            "exit_reason": report.exit_reason,
        }, indent=2, sort_keys=True))
    else:
        print(
            f"supervisor: {report.slots} slot(s), {report.spawned} "
            f"spawn(s), {report.crashes} crash(es), {report.strikes} "
            f"lease strike(s)"
            + (f", circuit open on slot(s) {report.circuit_open}"
               if report.circuit_open else "")
            + (f" [{report.exit_reason}]" if report.exit_reason else "")
        )
    return 2 if report.exit_reason == "circuit_open" else 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.dist import audit_queue

    report = audit_queue(
        args.queue_dir,
        repair=args.repair,
        stale_worker_s=args.stale_after,
    )
    if args.json:
        print(json.dumps(report.to_json_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_queue_status(args: argparse.Namespace) -> int:
    import time

    from repro.dist import WorkQueue

    queue = WorkQueue(args.queue, create=False)

    def show(status) -> None:
        if args.json:
            print(json.dumps(status.to_json_dict(), indent=2, sort_keys=True))
        else:
            print(status.summary())

    if args.watch is None:
        show(queue.status())
        return 0
    if args.watch <= 0:
        raise ValueError("--watch interval must be positive seconds")
    clear = sys.stdout.isatty() and not args.json
    while True:
        status = queue.status()
        if clear:
            # Home + clear-to-end keeps one live panel instead of a
            # scrolling log; off-TTY we just append snapshots.
            sys.stdout.write("\x1b[H\x1b[2J")
        show(status)
        if not args.json:
            print(f"(refreshing every {args.watch:g}s; ctrl-c to stop)")
        sys.stdout.flush()
        if status.pending == 0:
            return 0
        time.sleep(args.watch)


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "export":
        from repro.obs import export_chrome_trace

        out = export_chrome_trace(
            args.telemetry, args.out, include_events=not args.no_events
        )
        print(f"wrote {out}")
        return 0

    # summary
    from collections import Counter as _Counter
    from pathlib import Path

    from repro.obs import load_spans, merge_snapshots, read_events

    directory = Path(args.telemetry)
    if not directory.is_dir():
        raise FileNotFoundError(f"telemetry directory not found: {directory}")
    spans = load_spans(directory)
    events = read_events(directory)
    snapshots = []
    for path in sorted(directory.glob("metrics-*.json")):
        try:
            snapshots.append(json.loads(path.read_text()))
        except (json.JSONDecodeError, OSError):
            continue
    metrics = merge_snapshots(snapshots)
    span_names = _Counter(s["name"] for s in spans)
    event_names = _Counter(e.get("event", "?") for e in events)
    if args.json:
        print(json.dumps(
            {"spans": dict(span_names),
             "events": dict(event_names),
             "metrics": metrics},
            indent=2, sort_keys=True,
        ))
        return 0
    print(f"telemetry {directory}: {len(spans)} span(s), "
          f"{len(events)} event(s), {len(snapshots)} metrics snapshot(s)")
    for name, count in sorted(span_names.items()):
        print(f"  span   {name:<14} ×{count}")
    for name, count in sorted(event_names.items()):
        print(f"  event  {name:<14} ×{count}")
    for name, value in metrics.get("counters", {}).items():
        print(f"  count  {name:<28} {value}")
    for name, hist in metrics.get("histograms", {}).items():
        print(f"  hist   {name:<28} n={hist.get('count', 0)}")
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "eval": _cmd_eval,
    "bench": _cmd_bench,
    "work": _cmd_work,
    "queue-status": _cmd_queue_status,
    "doctor": _cmd_doctor,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, KeyError, FileNotFoundError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro {args.command}: error: {message}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
