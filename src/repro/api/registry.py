"""Pluggable component registries: schedulers, workloads, systems.

Every name-based lookup in the library resolves through one of three
process-global registries:

* :data:`SCHEDULERS` — policies implementing the
  :class:`~repro.sched.base.Scheduler` interface, with capability
  metadata (trainable, seeded, multi-resource) the scenario compiler
  and CLI read;
* :data:`WORKLOADS` — workload builders that transform a base trace
  into the job mix a scenario evaluates (the paper's S1–S10 plus any
  site-specific mixes);
* :data:`SYSTEMS` — factories producing a
  :class:`~repro.cluster.resources.SystemConfig`.

Extending the library is a registration, not a core-code edit::

    from repro.api import register_scheduler

    @register_scheduler("random", description="uniform random pick")
    class RandomScheduler(Scheduler):
        ...

    run_scenario({"methods": ["random", "heuristic"], "workloads": ["S4"]})

The paper's built-in components live in :mod:`repro.api._builtins` and
are loaded lazily on first lookup, so importing this module stays
dependency-free (no cycles with the packages whose components it
names).

Note on process pools: registrations made at runtime are inherited by
``fork``-started workers (the default on Linux) but not by ``spawn``
workers, which start from a fresh interpreter. Plugins therefore
register at import time in an importable module;
:func:`registration_modules` lists the modules behind the current
registrations and :func:`import_plugin_modules` re-imports them inside
a worker — :class:`~repro.exp.runner.ExperimentRunner` wires the pair
through its pool initializer, so spawn-based grids resolve plugins
exactly like fork-based ones. Components registered from ``__main__``
cannot be re-imported by name and remain fork-only.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, field

__all__ = [
    "Registry",
    "SchedulerEntry",
    "WorkloadEntry",
    "SystemEntry",
    "SCHEDULERS",
    "WORKLOADS",
    "SYSTEMS",
    "register_scheduler",
    "register_workload",
    "register_system",
    "registration_modules",
    "import_plugin_modules",
    "paper_methods",
    "paper_workloads",
]


def _call_adapting(factory: Callable, candidates: dict, kwargs: dict):
    """Call ``factory`` passing only the ``candidates`` it accepts.

    Lets plain classes register directly: ``FCFSScheduler`` takes no
    ``system`` or ``seed``, ``MRSchScheduler`` takes both — the adapter
    inspects the signature instead of forcing one shape on every
    constructor. Explicit user ``kwargs`` are always forwarded and
    *override* colliding candidates (e.g. a per-method ``window_size``
    option beats the grid-wide default) instead of raising a duplicate-
    keyword TypeError.
    """
    try:
        params = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins/C callables: pass everything
        return factory(**{**candidates, **kwargs})
    if not any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        candidates = {k: v for k, v in candidates.items() if k in params}
    return factory(**{**candidates, **kwargs})


@dataclass(frozen=True)
class SchedulerEntry:
    """One registered scheduling policy plus its capability metadata."""

    name: str
    factory: Callable
    description: str = ""
    #: implements ``finish_episode`` and is curriculum-trained by default
    trainable: bool = False
    #: consumes a ``seed`` (stochastic policy or stochastic initialisation)
    seeded: bool = True
    #: handles systems with more than two resources
    multi_resource: bool = True
    #: one of the paper's §IV-D comparison methods
    paper: bool = False
    #: scenario ``goal`` keys this policy consumes, mapped to the
    #: constructor kwarg each one sets (e.g. ``dynamic → dynamic_goal``)
    goal_options: tuple[tuple[str, str], ...] = ()
    #: :class:`ExperimentConfig` attributes injected as constructor
    #: kwargs by the harness, e.g. ``(("ga_config", "config"),)`` hands
    #: the experiment's GA budget to the NSGA-II scheduler
    config_options: tuple[tuple[str, str], ...] = ()
    #: constructor kwargs the factory accepts, for up-front validation of
    #: scenario options; ``None`` = unknown (accept anything, fail late)
    allowed_kwargs: tuple[str, ...] | None = None

    def build(self, system, window_size: int = 10, seed=None, **kwargs):
        """Instantiate the policy on ``system`` with signature adaptation."""
        candidates = {"system": system, "window_size": window_size, "seed": seed}
        return _call_adapting(self.factory, candidates, kwargs)

    def unknown_kwargs(self, names) -> tuple[str, ...]:
        """The subset of ``names`` this policy's constructor rejects."""
        if self.allowed_kwargs is None:
            return ()
        allowed = set(self.allowed_kwargs) | {"system", "window_size", "seed"}
        return tuple(n for n in names if n not in allowed)

    def capabilities(self) -> dict:
        return {
            "trainable": self.trainable,
            "seeded": self.seeded,
            "multi_resource": self.multi_resource,
            "paper": self.paper,
            "goal_options": [k for k, _ in self.goal_options],
        }


@dataclass(frozen=True)
class WorkloadEntry:
    """One registered workload builder.

    ``builder(base_jobs, system, seed)`` returns the transformed job
    list; it must treat ``base_jobs`` as read-only and derive all
    randomness from ``seed`` so scenario replays stay deterministic.
    """

    name: str
    builder: Callable
    description: str = ""
    #: needs the §V-E power-extended system (evaluated case-study style)
    case_study: bool = False
    #: one of the paper's Table III / §V-E rows
    paper: bool = False
    #: resource names the builder assumes the system provides; scenario
    #: validation rejects a system missing any of them up front. The
    #: default matches the Theta-trace builders; register a workload for
    #: exotic systems with ``requires=()`` (or its actual needs).
    requires: tuple[str, ...] = ("node", "burst_buffer")

    def build(self, base_jobs, system, seed=None):
        return self.builder(base_jobs, system, seed)

    def capabilities(self) -> dict:
        return {
            "case_study": self.case_study,
            "paper": self.paper,
            "requires": list(self.requires),
        }


@dataclass(frozen=True)
class SystemEntry:
    """One registered system factory.

    ``factory`` receives the scenario's ``nodes``/``bb_units`` sizing
    (when it accepts them) and returns a
    :class:`~repro.cluster.resources.SystemConfig`.
    """

    name: str
    factory: Callable
    description: str = ""

    def build(self, nodes: int | None = None, bb_units: int | None = None):
        candidates = {}
        if nodes is not None:
            candidates["nodes"] = nodes
        if bb_units is not None:
            candidates["bb_units"] = bb_units
        return _call_adapting(self.factory, candidates, {})


@dataclass
class Registry:
    """Ordered name → entry mapping with actionable lookup errors."""

    kind: str
    _entries: dict = field(default_factory=dict)

    def register(self, entry) -> None:
        # Load builtins first so a plugin colliding with a builtin name
        # is rejected here, at its decorator, not at some later lookup.
        _load_builtins()
        # Case-insensitive collision check: lookup falls back to the
        # lowercased name, so "Heuristic" would otherwise silently
        # shadow the builtin "heuristic" for some spellings only.
        clashes = [n for n in self._entries if n.lower() == entry.name.lower()]
        if clashes:
            raise ValueError(
                f"{self.kind} {entry.name!r} is already registered"
                f"{'' if entry.name in clashes else f' (as {clashes[0]!r})'}; "
                f"unregister it first to replace it"
            )
        self._entries[entry.name] = entry

    def unregister(self, name: str) -> None:
        """Remove a registration (plugin teardown / test isolation).

        Case-insensitive, like every other lookup on the registry.
        """
        folded = str(name).lower()
        for key in [n for n in self._entries if n.lower() == folded]:
            del self._entries[key]

    def get(self, name: str):
        _load_builtins()
        entry = self._entries.get(name)
        if entry is None:
            # Case-insensitive fallback, symmetric with register()'s
            # collision check (which guarantees at most one match).
            folded = str(name).lower()
            entry = next(
                (e for n, e in self._entries.items() if n.lower() == folded),
                None,
            )
        if entry is None:
            raise KeyError(
                f"unknown {self.kind} {name!r}; available: "
                f"{', '.join(self.names())}"
            )
        return entry

    def names(self) -> tuple[str, ...]:
        _load_builtins()
        return tuple(self._entries)

    def entries(self) -> tuple:
        _load_builtins()
        return tuple(self._entries.values())

    def __contains__(self, name: str) -> bool:
        _load_builtins()
        folded = str(name).lower()
        return any(n.lower() == folded for n in self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


SCHEDULERS = Registry("scheduler")
WORKLOADS = Registry("workload")
SYSTEMS = Registry("system")

_builtins_loaded = False
_builtins_loading = False


def _load_builtins() -> None:
    global _builtins_loaded, _builtins_loading
    if _builtins_loaded or _builtins_loading:
        return
    # The loading flag breaks the recursion: _builtins itself registers
    # entries, and register() calls back into this function. The loaded
    # flag is only set after a *successful* import, and a failed partial
    # import is evicted from sys.modules, so a failure surfaces loudly on
    # every lookup instead of leaving a silently half-populated registry.
    _builtins_loading = True
    try:
        import repro.api._builtins  # noqa: F401  (registers on import)
    except BaseException:
        import sys

        sys.modules.pop("repro.api._builtins", None)
        raise
    finally:
        _builtins_loading = False
    _builtins_loaded = True


# -- spawn-safe plugin shipping -----------------------------------------------


def registration_modules() -> tuple[str, ...]:
    """Importable modules behind the current plugin registrations.

    Derived from each entry's factory/builder ``__module__``; library
    builtins (re-created by the lazy ``_load_builtins`` in any process)
    and ``__main__`` registrations (not importable by name in a spawn
    worker) are excluded. Importing every listed module re-creates the
    runtime registrations, which is exactly what a ``spawn``-started
    worker needs before it resolves plugin names.
    """
    modules: set[str] = set()
    for registry in (SCHEDULERS, WORKLOADS, SYSTEMS):
        for entry in registry.entries():
            obj = getattr(entry, "factory", None) or getattr(entry, "builder", None)
            module = getattr(obj, "__module__", None)
            if not module or module == "__main__" or module.startswith("repro."):
                continue
            modules.add(module)
    return tuple(sorted(modules))


def import_plugin_modules(modules: tuple[str, ...]) -> None:
    """Process-pool initializer: re-create registrations in a worker.

    Under ``fork`` the modules are already imported and each import is
    a cached no-op; under ``spawn`` the fresh interpreter executes each
    module, whose import-time ``@register_*`` decorators re-register
    the plugins.
    """
    import importlib

    for module in modules:
        importlib.import_module(module)


# -- decorators --------------------------------------------------------------


def _derive_allowed_kwargs(obj: Callable) -> tuple[str, ...] | None:
    """Constructor kwargs a factory accepts, or None when unknowable.

    ``**kwargs`` factories (the lazy builtin wrappers, say) forward to a
    constructor this inspection cannot see, so they return None and
    should declare ``allowed_kwargs`` explicitly at registration.
    """
    try:
        params = inspect.signature(obj).parameters
    except (TypeError, ValueError):
        return None
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return None
    return tuple(n for n in params if n != "self")


def register_scheduler(
    name: str,
    *,
    description: str = "",
    trainable: bool = False,
    seeded: bool = True,
    multi_resource: bool = True,
    paper: bool = False,
    goal_options: Mapping[str, str] | tuple[tuple[str, str], ...] = (),
    config_options: Mapping[str, str] | tuple[tuple[str, str], ...] = (),
    allowed_kwargs: tuple[str, ...] | None = None,
) -> Callable:
    """Register a scheduler class or factory under ``name``.

    The decorated callable is invoked as ``factory(system=...,
    window_size=..., seed=..., **kwargs)`` with arguments it does not
    declare filtered out, so plain ``Scheduler`` subclasses register
    without wrapper boilerplate. ``allowed_kwargs`` (derived from the
    signature when possible) lets scenario validation reject a typo'd
    option up front instead of crashing inside a worker.
    """
    if isinstance(goal_options, Mapping):
        goal_options = tuple(goal_options.items())
    if isinstance(config_options, Mapping):
        config_options = tuple(config_options.items())

    def decorator(obj: Callable) -> Callable:
        SCHEDULERS.register(
            SchedulerEntry(
                name=name,
                factory=obj,
                description=description or inspect.getdoc(obj) or "",
                trainable=trainable,
                seeded=seeded,
                multi_resource=multi_resource,
                paper=paper,
                goal_options=tuple(goal_options),
                config_options=tuple(config_options),
                allowed_kwargs=(
                    allowed_kwargs
                    if allowed_kwargs is not None
                    else _derive_allowed_kwargs(obj)
                ),
            )
        )
        return obj

    return decorator


def register_workload(
    name: str,
    *,
    description: str = "",
    case_study: bool = False,
    paper: bool = False,
    requires: tuple[str, ...] = ("node", "burst_buffer"),
) -> Callable:
    """Register a workload builder ``(base_jobs, system, seed) -> jobs``."""

    def decorator(obj: Callable) -> Callable:
        WORKLOADS.register(
            WorkloadEntry(
                name=name,
                builder=obj,
                description=description or inspect.getdoc(obj) or "",
                case_study=case_study,
                paper=paper,
                requires=tuple(requires),
            )
        )
        return obj

    return decorator


def register_system(name: str, *, description: str = "") -> Callable:
    """Register a system factory ``(nodes=..., bb_units=...) -> SystemConfig``."""

    def decorator(obj: Callable) -> Callable:
        SYSTEMS.register(
            SystemEntry(
                name=name,
                factory=obj,
                description=description or inspect.getdoc(obj) or "",
            )
        )
        return obj

    return decorator


# -- canonical orderings ------------------------------------------------------


def paper_methods() -> tuple[str, ...]:
    """The §IV-D comparison methods, in the paper's reporting order."""
    return tuple(e.name for e in SCHEDULERS.entries() if e.paper)


def paper_workloads(case_study: bool = False) -> tuple[str, ...]:
    """Table III rows (S1–S5), or the §V-E power rows with ``case_study``."""
    return tuple(
        e.name
        for e in WORKLOADS.entries()
        if e.paper and e.case_study == case_study
    )
