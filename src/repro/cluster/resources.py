"""Schedulable resources: specs, system configurations, allocation pool.

The pool tracks, per resource, which units are busy and each busy unit's
*estimated* available time (start + user walltime, §III-A). Estimates —
never actual runtimes — feed the state encoding and the reservation /
backfill machinery, exactly as a production scheduler would operate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # imported lazily to avoid a package-level cycle
    from repro.workload.job import Job

__all__ = [
    "ResourceSpec",
    "SystemConfig",
    "ResourcePool",
    "PoolDirtyTracker",
    "NODE",
    "BURST_BUFFER",
    "POWER",
]

#: Canonical resource names used by the paper's experiments.
NODE = "node"
BURST_BUFFER = "burst_buffer"
POWER = "power"


@dataclass(frozen=True)
class ResourceSpec:
    """One schedulable resource: a name and a unit count.

    ``unit_label`` documents what a unit physically is (a node, a TB of
    burst buffer, a kW of power budget).
    """

    name: str
    units: int
    unit_label: str = "unit"

    def __post_init__(self) -> None:
        if self.units <= 0:
            raise ValueError(f"resource {self.name!r} must have positive units")
        if not self.name:
            raise ValueError("resource name must be non-empty")


@dataclass(frozen=True)
class SystemConfig:
    """An ordered collection of resource specs describing one system."""

    resources: tuple[ResourceSpec, ...]

    def __post_init__(self) -> None:
        names = [r.name for r in self.resources]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate resource names: {names}")
        if not self.resources:
            raise ValueError("a system needs at least one resource")

    @property
    def names(self) -> list[str]:
        return [r.name for r in self.resources]

    @property
    def n_resources(self) -> int:
        return len(self.resources)

    def capacity(self, name: str) -> int:
        for spec in self.resources:
            if spec.name == name:
                return spec.units
        raise KeyError(f"unknown resource {name!r}")

    def validate_job(self, job: Job) -> None:
        """Reject jobs that request unknown resources or exceed capacity."""
        for name, amount in job.requests.items():
            if amount == 0:
                continue
            if name not in self.names:
                raise ValueError(f"job {job.job_id} requests unknown resource {name!r}")
            if amount > self.capacity(name):
                raise ValueError(
                    f"job {job.job_id} requests {amount} {name} units, "
                    f"capacity is {self.capacity(name)}"
                )

    # -- canonical configurations ---------------------------------------

    @classmethod
    def theta(cls) -> "SystemConfig":
        """Full-scale Theta: 4,392 KNL nodes + 1.26 PB shared burst buffer
        in 1 TB units (paper §IV-A)."""
        return cls(
            resources=(
                ResourceSpec(NODE, 4392, "KNL node"),
                ResourceSpec(BURST_BUFFER, 1290, "TB of burst buffer"),
            )
        )

    @classmethod
    def mini_theta(cls, nodes: int = 128, bb_units: int = 64) -> "SystemConfig":
        """Proportional miniature of Theta for fast simulation.

        Contention *ratios* — not absolute unit counts — drive every
        result in the paper, so the experiment harness defaults to this
        configuration (see DESIGN.md §5).
        """
        return cls(
            resources=(
                ResourceSpec(NODE, nodes, "node"),
                ResourceSpec(BURST_BUFFER, bb_units, "TB of burst buffer"),
            )
        )

    def with_power(self, power_units: int) -> "SystemConfig":
        """Extend this system with a power-budget resource (§V-E).

        A power unit is one kW of the facility budget; the paper caps the
        system at 500 kW.
        """
        return SystemConfig(
            resources=self.resources + (ResourceSpec(POWER, power_units, "kW of power budget"),)
        )


class PoolDirtyTracker:
    """Per-consumer record of which pool units changed since last drain.

    The incremental state encoder keeps a persistent copy of the
    per-unit availability/estimated-free blocks; rebuilding them from
    the pool every decision is O(ΣN) at full machine scale (Theta:
    5,682 units). A tracker registered on the pool turns that into a
    patch: ``allocate``/``release`` append the exact unit-index arrays
    they touched, ``reset`` (or overflow) degrades to a full-rebuild
    flag, and the consumer drains the accumulated regions on its next
    encode.

    Each chunk is one mutation: ``(idx, busy, est)`` — the sorted unit
    indices it touched, whether they became busy, and their (shared)
    new estimated free time. A unit allocated and released between two
    drains appears in two chunks; consumers apply chunks in order, so
    the last write is the pool's current state. Once the accumulated
    count exceeds half the machine, patching stops paying for itself
    and the tracker collapses to ``full`` on its own.
    """

    __slots__ = ("full", "_dirty", "_count", "_limit")

    def __init__(self, config: SystemConfig) -> None:
        self.full: bool = True  # a fresh tracker knows nothing yet
        self._dirty: dict[str, list[tuple[np.ndarray, bool, float]]] = {
            n: [] for n in config.names
        }
        self._count = 0
        total = sum(spec.units for spec in config.resources)
        self._limit = max(64, total // 2)

    def mark(self, name: str, idx: np.ndarray, busy: bool, est: float) -> None:
        """Record that the units ``idx`` of ``name`` changed state."""
        if self.full:
            return
        self._dirty[name].append((idx, busy, est))
        self._count += idx.size
        if self._count >= self._limit:
            self.mark_all()

    def mark_all(self) -> None:
        """Degrade to a full rebuild (reset, overflow, first use)."""
        self.full = True
        for chunks in self._dirty.values():
            chunks.clear()
        self._count = 0

    def drain(self) -> dict[str, list[tuple[np.ndarray, bool, float]]] | None:
        """Dirty chunks per resource since the last drain, mutation order.

        Returns ``None`` when everything must be rebuilt (the tracker
        then forgets the flag); otherwise a mapping holding only the
        resources that changed, each a list of ``(idx, busy, est)``
        chunks. Chunks are kept separate — not concatenated — because a
        single grant is very often a contiguous run of units whose new
        per-unit values are *constants*, which consumers can patch with
        scalar slice fills instead of gather/scatter. Either way the
        tracker is left clean.
        """
        if self.full:
            self.full = False
            self._count = 0
            for chunks in self._dirty.values():
                chunks.clear()
            return None
        out: dict[str, list[tuple[np.ndarray, bool, float]]] = {}
        for name, chunks in self._dirty.items():
            if not chunks:
                continue
            out[name] = chunks
            self._dirty[name] = []
        self._count = 0
        return out


class ResourcePool:
    """Allocation state for every resource of a system.

    Per resource ``r`` the pool keeps two parallel arrays of length
    ``capacity(r)``:

    * ``busy``    — boolean, unit currently allocated,
    * ``est_free``— estimated time the unit frees (start + walltime);
      meaningful only where ``busy`` is set.

    Units are interchangeable; allocation picks the lowest-index free
    units so behaviour is deterministic.
    """

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self._names: list[str] = config.names
        self._busy: dict[str, np.ndarray] = {
            spec.name: np.zeros(spec.units, dtype=bool) for spec in config.resources
        }
        self._est_free: dict[str, np.ndarray] = {
            spec.name: np.zeros(spec.units) for spec in config.resources
        }
        # Incremental accounting: free-unit counters maintained by
        # allocate/release so the hot-path queries (can_fit, free_units,
        # utilization — called for every window job at every scheduling
        # instance) are O(resources) instead of O(units).
        self._capacity: dict[str, int] = {
            spec.name: spec.units for spec in config.resources
        }
        self._free: dict[str, int] = dict(self._capacity)
        self._caps_arr = np.array(
            [spec.units for spec in config.resources], dtype=float
        )
        # The same counters as a config-ordered vector, for the
        # vectorized backfill pass (read-only to callers).
        self._free_arr = np.array(
            [spec.units for spec in config.resources], dtype=float
        )
        self._name_pos: dict[str, int] = {
            spec.name: i for i, spec in enumerate(config.resources)
        }
        # Lazily-maintained sorted estimated-free-time arrays of the
        # *busy* units of each resource. earliest_fit_time/free_units_at
        # are order-statistic queries; sorting once per pool mutation and
        # answering each query with a searchsorted amortizes an EASY
        # pass (shadow time + per-resource spare units) to O(log units)
        # per query instead of a fresh O(units) partition each.
        self._sorted_busy: dict[str, np.ndarray | None] = {
            spec.name: None for spec in config.resources
        }
        #: job_id -> {resource: unit index array}
        self._allocations: dict[int, dict[str, np.ndarray]] = {}
        #: dirty-region consumers (incremental state encoders); kept in
        #: a plain list so the no-tracker hot path costs one truth test
        #: per mutation.
        self._trackers: list[PoolDirtyTracker] = []

    # -- queries ---------------------------------------------------------

    def free_units(self, name: str) -> int:
        return self._free[name]

    def busy_units(self, name: str) -> int:
        return self._capacity[name] - self._free[name]

    def utilization(self, name: str) -> float:
        """Instantaneous busy fraction of a resource."""
        capacity = self._capacity[name]
        return (capacity - self._free[name]) / capacity

    def utilizations(self) -> np.ndarray:
        """Instantaneous utilization of every resource, config order."""
        return (self._caps_arr - self._free_arr) / self._caps_arr

    def can_fit(self, job: Job) -> bool:
        """True when every requested resource has enough free units."""
        free = self._free
        return all(
            free[name] >= amount
            for name, amount in job.requests.items()
            if amount > 0
        )

    def free_vector(self) -> np.ndarray:
        """Free-unit counts in config order.

        A live internal array — callers must treat it as read-only; it
        exists so the vectorized EASY pass can compare the whole queue's
        request matrix against it without rebuilding a vector per start.
        """
        return self._free_arr

    def unit_arrays(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """The live ``(busy, est_free)`` unit arrays of ``name``.

        Internal state exposed for the incremental encoder's patching
        path — callers must treat both arrays as read-only; mutations
        belong to :meth:`allocate`/:meth:`release`/:meth:`reset` so
        registered dirty trackers stay truthful.
        """
        return self._busy[name], self._est_free[name]

    def running_jobs(self) -> list[int]:
        return list(self._allocations)

    # -- dirty-region tracking ---------------------------------------------

    def register_tracker(self) -> PoolDirtyTracker:
        """Attach a new dirty tracker fed by every future mutation."""
        tracker = PoolDirtyTracker(self.config)
        self._trackers.append(tracker)
        return tracker

    def unregister_tracker(self, tracker: PoolDirtyTracker) -> None:
        """Detach ``tracker``; unknown trackers are ignored."""
        try:
            self._trackers.remove(tracker)
        except ValueError:
            pass

    def allocation_of(self, job_id: int) -> dict[str, np.ndarray]:
        return {k: v.copy() for k, v in self._allocations[job_id].items()}

    # -- state transitions -------------------------------------------------

    def allocate(self, job: Job, now: float) -> None:
        """Allocate units for ``job`` starting at ``now``.

        Estimated free time is ``now + walltime`` — the scheduler-visible
        estimate, not the hidden actual runtime.
        """
        if job.job_id in self._allocations:
            raise RuntimeError(f"job {job.job_id} is already allocated")
        if not self.can_fit(job):
            raise RuntimeError(f"job {job.job_id} does not fit")
        grant: dict[str, np.ndarray] = {}
        est = now + job.walltime
        trackers = self._trackers
        for name, amount in job.requests.items():
            if amount <= 0:
                continue
            free_idx = np.flatnonzero(~self._busy[name])[:amount]
            self._busy[name][free_idx] = True
            self._est_free[name][free_idx] = est
            self._free[name] -= amount
            self._free_arr[self._name_pos[name]] -= amount
            self._sorted_busy[name] = None
            grant[name] = free_idx
            if trackers:
                for tracker in trackers:
                    tracker.mark(name, free_idx, True, est)
        self._allocations[job.job_id] = grant
        job.allocation = {k: v.tolist() for k, v in grant.items()}

    def release(self, job: Job) -> None:
        """Free every unit held by ``job``."""
        grant = self._allocations.pop(job.job_id, None)
        if grant is None:
            raise RuntimeError(f"job {job.job_id} holds no allocation")
        trackers = self._trackers
        for name, idx in grant.items():
            self._busy[name][idx] = False
            self._est_free[name][idx] = 0.0
            self._free[name] += idx.size
            self._free_arr[self._name_pos[name]] += idx.size
            self._sorted_busy[name] = None
            if trackers:
                for tracker in trackers:
                    tracker.mark(name, idx, False, 0.0)

    def reset(self) -> None:
        for name in self.config.names:
            self._busy[name][...] = False
            self._est_free[name][...] = 0.0
            self._free[name] = self._capacity[name]
            self._free_arr[self._name_pos[name]] = self._capacity[name]
            self._sorted_busy[name] = None
        self._allocations.clear()
        for tracker in self._trackers:
            tracker.mark_all()

    # -- snapshot / restore ---------------------------------------------------

    def snapshot(self) -> dict:
        """A self-contained copy of the pool's allocation state.

        Captures the per-unit arrays, free counters and the allocation
        map; the pool object itself (and its registered trackers /
        encoder attachments, which bind by identity) is not part of the
        snapshot, so :meth:`restore` can bring *this* pool back without
        disturbing those bindings.
        """
        return {
            "busy": {n: self._busy[n].copy() for n in self._names},
            "est_free": {n: self._est_free[n].copy() for n in self._names},
            "free": dict(self._free),
            "free_arr": self._free_arr.copy(),
            "allocations": {
                jid: {n: idx.copy() for n, idx in grant.items()}
                for jid, grant in self._allocations.items()
            },
        }

    def restore(self, snap: dict) -> None:
        """Restore state captured by :meth:`snapshot`, in place.

        The live unit arrays are overwritten rather than rebound so
        consumers holding views (the incremental encoder attaches to
        this pool by identity) stay valid; every registered tracker is
        degraded to a full rebuild because the patch history no longer
        describes the restored arrays.
        """
        for name in self._names:
            self._busy[name][...] = snap["busy"][name]
            self._est_free[name][...] = snap["est_free"][name]
            self._sorted_busy[name] = None
        self._free = dict(snap["free"])
        self._free_arr[...] = snap["free_arr"]
        self._allocations = {
            jid: {n: idx.copy() for n, idx in grant.items()}
            for jid, grant in snap["allocations"].items()
        }
        for tracker in self._trackers:
            tracker.mark_all()

    # -- scheduler support ---------------------------------------------------

    def unit_state(self, name: str, now: float) -> tuple[np.ndarray, np.ndarray]:
        """Per-unit (availability bit, time-to-free) — paper §III-A encoding.

        Availability is 1 for free units; time-to-free is
        ``max(0, est_free - now)`` for busy units and 0 for free ones.
        """
        busy = self._busy[name]
        avail = (~busy).astype(float)
        ttf = np.where(busy, np.maximum(self._est_free[name] - now, 0.0), 0.0)
        return avail, ttf

    def fill_unit_state(
        self, name: str, now: float, avail_out: np.ndarray, ttf_out: np.ndarray
    ) -> None:
        """Write :meth:`unit_state` into caller-owned buffers.

        The state encoder calls this once per resource per decision with
        slices of the state vector, avoiding the intermediate
        availability/time-to-free allocations. Free units carry
        ``est_free == 0`` and the clock is non-negative, so the clamped
        subtraction reproduces the reference values exactly.
        """
        np.subtract(1.0, self._busy[name], out=avail_out)
        np.subtract(self._est_free[name], now, out=ttf_out)
        np.maximum(ttf_out, 0.0, out=ttf_out)

    def _sorted_busy_times(self, name: str) -> np.ndarray:
        """Ascending estimated free times of the busy units of ``name``.

        Cached and invalidated lazily: allocate/release/reset drop the
        cache, the first order-statistic query after a mutation rebuilds
        it, and every further query in the same pool state (the rest of
        an EASY pass, repeated shadow computations for the same
        reservation across instances) is a binary search.
        """
        cached = self._sorted_busy[name]
        if cached is None:
            cached = np.sort(self._est_free[name][self._busy[name]])
            self._sorted_busy[name] = cached
        return cached

    def earliest_fit_time(self, job: Job, now: float) -> float:
        """Estimated earliest time ``job``'s full request can be satisfied.

        For each resource, take the request'th smallest estimated free
        time over all units (free units count as available ``now``); the
        answer is the max over resources. Used for reservation shadow
        times in EASY backfilling.

        The k-th smallest of {busy est-free times} ∪ {now × free units}
        is read off the cached sorted busy array: with ``c`` busy times
        strictly below ``now`` and ``F`` free units, the statistic is a
        busy time when ``k ≤ c``, ``now`` while the free block covers
        ``k``, and the ``(k−F)``-th busy time beyond it otherwise —
        value-identical to partitioning the merged array.
        """
        t = now
        for name, amount in job.requests.items():
            if amount <= 0:
                continue
            if amount > self._capacity[name]:
                raise ValueError(
                    f"job {job.job_id} requests more {name} than system capacity"
                )
            times = self._sorted_busy_times(name)
            n_free = self._free[name]
            below = int(np.searchsorted(times, now, side="left"))
            at_or_below = int(np.searchsorted(times, now, side="right"))
            if amount <= below:
                kth = float(times[amount - 1])
            elif amount <= at_or_below + n_free:
                kth = now
            else:
                kth = float(times[amount - n_free - 1])
            t = max(t, kth)
        return t

    def free_units_at(self, name: str, when: float, now: float) -> int:
        """Estimated number of free units of ``name`` at time ``when``."""
        busy_by_then = int(
            np.searchsorted(self._sorted_busy_times(name), when, side="right")
        )
        free_now = self._free[name] if now <= when else 0
        return free_now + busy_by_then
