"""Cluster substrate: schedulable-resource model and allocation pool.

Resources are *unit-based*, matching the paper's state encoding (§III-A):
a system administrator defines the unit (a compute node for CPU, a TB
slice for the burst buffer, a kW slice for power), and every resource is
a set of interchangeable units with per-unit estimated-available-time
tracking.
"""

from repro.cluster.resources import (
    NODE,
    BURST_BUFFER,
    POWER,
    ResourcePool,
    ResourceSpec,
    SystemConfig,
)

__all__ = [
    "ResourceSpec",
    "SystemConfig",
    "ResourcePool",
    "NODE",
    "BURST_BUFFER",
    "POWER",
]
