"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so that
network construction is fully deterministic under a fixed seed.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["he_init", "xavier_init", "uniform_init"]


def he_init(shape: tuple[int, ...], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """He-normal initialisation, suited to rectifier activations.

    ``fan_in`` is the product of all but the last dimension, which matches
    both Dense ``(in, out)`` and Conv1D ``(kernel, in_ch, out_ch)`` shapes.
    """
    rng = as_generator(rng)
    fan_in = int(np.prod(shape[:-1])) or 1
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def xavier_init(shape: tuple[int, ...], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Xavier/Glorot-uniform initialisation, suited to tanh/sigmoid."""
    rng = as_generator(rng)
    fan_in = int(np.prod(shape[:-1])) or 1
    fan_out = int(shape[-1])
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def uniform_init(
    shape: tuple[int, ...],
    scale: float = 0.05,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Uniform initialisation in ``[-scale, scale]``."""
    rng = as_generator(rng)
    return rng.uniform(-scale, scale, size=shape)
