"""Neural-network layers with explicit forward/backward passes.

Each layer follows the same protocol:

* ``forward(x, training=False)`` caches whatever the backward pass needs
  and returns the output,
* ``backward(grad_out)`` consumes the upstream gradient and returns the
  gradient with respect to the layer input, accumulating parameter
  gradients in ``self.grads``,
* ``params`` / ``grads`` are dicts keyed by parameter name so optimizers
  and serialisation can treat all layers uniformly.

Inputs are batched along the first axis: Dense consumes ``(B, F)``,
Conv1D consumes ``(B, L, C)``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import he_init, xavier_init
from repro.utils.rng import as_generator

__all__ = [
    "Layer",
    "Dense",
    "Conv1D",
    "MaxPool1D",
    "Flatten",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
]


class Layer:
    """Base class; parameter-free layers inherit the empty dicts."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def infer(self, x: np.ndarray, workspace=None, key=None) -> np.ndarray:
        """Inference-only forward pass.

        Unlike :meth:`forward` it neither caches activations for a
        backward pass nor (for layers that override it) allocates fresh
        output arrays: with an
        :class:`~repro.nn.network.InferenceWorkspace` the output lands
        in a reused per-``key`` buffer. Values are bit-identical to
        :meth:`forward`. The default falls back to ``forward``.
        """
        return self.forward(x)

    def zero_grad(self) -> None:
        for key in self.grads:
            self.grads[key][...] = 0.0

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Dense(Layer):
    """Fully-connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | int | None = None,
        init: str = "he",
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense dimensions must be positive")
        rng = as_generator(rng)
        initializer = he_init if init == "he" else xavier_init
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "W": initializer((in_features, out_features), rng),
            "b": np.zeros(out_features),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected input (B, {self.in_features}), got {x.shape}"
            )
        self._x = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads["W"] += self._x.T @ grad_out
        self.grads["b"] += grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T

    def infer(self, x: np.ndarray, workspace=None, key=None) -> np.ndarray:
        if workspace is None:
            return x @ self.params["W"] + self.params["b"]
        w = workspace.param(self, "W")
        out = workspace.buffer(key, (x.shape[0], self.out_features))
        np.matmul(x, w, out=out)
        out += workspace.param(self, "b")
        return out


class Conv1D(Layer):
    """1-D convolution over ``(B, L, C_in)`` with 'valid' padding.

    Used by the CNN state-module variant (paper Fig. 3). Implemented via
    an im2col-style window expansion so the inner product is one matmul.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("kernel_size and stride must be positive")
        rng = as_generator(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.params = {
            "W": he_init((kernel_size, in_channels, out_channels), rng),
            "b": np.zeros(out_channels),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def output_length(self, length: int) -> int:
        if length < self.kernel_size:
            raise ValueError(
                f"input length {length} shorter than kernel {self.kernel_size}"
            )
        return (length - self.kernel_size) // self.stride + 1

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        batch, length, _ = x.shape
        out_len = self.output_length(length)
        starts = np.arange(out_len) * self.stride
        # (B, out_len, K, C) gather of sliding windows.
        idx = starts[:, None] + np.arange(self.kernel_size)[None, :]
        return x[:, idx, :]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.in_channels:
            raise ValueError(
                f"Conv1D expected input (B, L, {self.in_channels}), got {x.shape}"
            )
        self._x_shape = x.shape
        cols = self._im2col(x)  # (B, out_len, K, C_in)
        self._cols = cols
        batch, out_len = cols.shape[0], cols.shape[1]
        flat = cols.reshape(batch, out_len, -1)
        w = self.params["W"].reshape(-1, self.out_channels)
        return flat @ w + self.params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        batch, out_len = grad_out.shape[0], grad_out.shape[1]
        flat = self._cols.reshape(batch, out_len, -1)
        grad_w = np.einsum("bof,bok->fk", flat, grad_out)
        self.grads["W"] += grad_w.reshape(self.params["W"].shape)
        self.grads["b"] += grad_out.sum(axis=(0, 1))

        w = self.params["W"].reshape(-1, self.out_channels)
        grad_cols = (grad_out @ w.T).reshape(
            batch, out_len, self.kernel_size, self.in_channels
        )
        grad_x = np.zeros(self._x_shape)
        starts = np.arange(out_len) * self.stride
        idx = starts[:, None] + np.arange(self.kernel_size)[None, :]
        np.add.at(grad_x, (slice(None), idx, slice(None)), grad_cols)
        return grad_x


class MaxPool1D(Layer):
    """Non-overlapping max pooling over ``(B, L, C)``.

    Sequence length must be divisible by ``pool_size``; callers pad or
    size their feature maps accordingly.
    """

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self._mask: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        batch, length, channels = x.shape
        if length % self.pool_size != 0:
            raise ValueError(
                f"length {length} not divisible by pool_size {self.pool_size}"
            )
        self._x_shape = x.shape
        windows = x.reshape(batch, length // self.pool_size, self.pool_size, channels)
        out = windows.max(axis=2)
        self._mask = windows == out[:, :, None, :]
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        # Distribute gradient to every argmax position (ties share).
        counts = self._mask.sum(axis=2, keepdims=True)
        grad = self._mask * (grad_out[:, :, None, :] / counts)
        return grad.reshape(self._x_shape)


class Flatten(Layer):
    """Collapse all trailing dimensions into one feature axis."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._x_shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = as_generator(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class ReLU(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class LeakyReLU(Layer):
    """Leaky rectifier used by the MRSch state module (paper §III-A)."""

    def __init__(self, alpha: float = 0.01) -> None:
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.alpha * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * np.where(self._mask, 1.0, self.alpha)

    def infer(self, x: np.ndarray, workspace=None, key=None) -> np.ndarray:
        if workspace is None or self.alpha > 1.0:
            # max(x, αx) only equals the leaky rectifier for α ≤ 1.
            return np.where(x > 0, x, self.alpha * x)
        out = workspace.buffer(key, x.shape)
        np.multiply(x, self.alpha, out=out)
        np.maximum(x, out, out=out)
        return out


class Tanh(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._y**2)


class Sigmoid(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._y = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._y * (1.0 - self._y)


class Softmax(Layer):
    """Row-wise softmax; backward applies the full Jacobian product."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._y = exp / exp.sum(axis=-1, keepdims=True)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        dot = (grad_out * self._y).sum(axis=-1, keepdims=True)
        return self._y * (grad_out - dot)
