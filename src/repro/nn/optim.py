"""First-order optimizers operating on layer parameter dicts.

An optimizer is bound to a list of layers; ``step()`` consumes the
gradients accumulated in each layer's ``grads`` dict and updates the
matching entry in ``params`` in place (in-place updates keep the arrays
shared with any serialisation references, per the HPC guide's
"in-place operations" idiom).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer

__all__ = ["Optimizer", "SGD", "Momentum", "RMSProp", "Adam"]


class Optimizer:
    """Base optimizer; subclasses implement :meth:`_update`."""

    def __init__(self, layers: list[Layer], lr: float = 1e-3) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.layers = list(layers)
        self.lr = lr

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def step(self) -> None:
        for li, layer in enumerate(self.layers):
            for name, param in layer.params.items():
                self._update(f"{li}.{name}", param, layer.grads[name])

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError

    def clip_gradients(self, max_norm: float) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm."""
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        total = 0.0
        for layer in self.layers:
            for grad in layer.grads.values():
                total += float((grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm:
            scale = max_norm / (norm + 1e-12)
            for layer in self.layers:
                for grad in layer.grads.values():
                    grad *= scale
        return norm


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        param -= self.lr * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, layers: list[Layer], lr: float = 1e-3, momentum: float = 0.9) -> None:
        super().__init__(layers, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        vel = self._velocity.setdefault(key, np.zeros_like(param))
        vel *= self.momentum
        vel -= self.lr * grad
        param += vel


class RMSProp(Optimizer):
    """RMSProp with exponentially-decayed squared-gradient scaling."""

    def __init__(
        self,
        layers: list[Layer],
        lr: float = 1e-3,
        decay: float = 0.99,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(layers, lr)
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.decay = decay
        self.eps = eps
        self._cache: dict[str, np.ndarray] = {}

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        cache = self._cache.setdefault(key, np.zeros_like(param))
        cache *= self.decay
        cache += (1.0 - self.decay) * grad**2
        param -= self.lr * grad / (np.sqrt(cache) + self.eps)


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        layers: list[Layer],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(layers, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        super().step()

    def _update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        m = self._m.setdefault(key, np.zeros_like(param))
        v = self._v.setdefault(key, np.zeros_like(param))
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad**2
        m_hat = m / (1.0 - self.beta1**self._t)
        v_hat = v / (1.0 - self.beta2**self._t)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
