"""Sequential container chaining layers into a network, plus the
reusable-buffer workspace the inference fast path runs on."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer

__all__ = ["Sequential", "InferenceWorkspace"]


class InferenceWorkspace:
    """Reused output buffers and dtype-cast parameters for inference.

    The per-decision scoring path used to allocate every intermediate
    activation afresh — tens of small arrays per scheduling decision.
    A workspace hands each ``(chain, layer)`` key a persistent output
    buffer instead, so steady-state inference performs zero activation
    allocations. It also memoises parameters cast to the workspace
    dtype, which is what makes the opt-in ``float32`` scoring mode
    cheap: weights are cast once per training update, not per decision.

    Buffers are recycled by key: the result a layer returns is only
    valid until the same key is used again. Chains therefore give every
    layer its own key, and public APIs copy anything they hand out.
    """

    def __init__(self, dtype: np.dtype | str = np.float64) -> None:
        self.dtype = np.dtype(dtype)
        self._buffers: dict[tuple, np.ndarray] = {}
        self._params: dict[tuple[int, str], np.ndarray] = {}

    def buffer(self, key, shape: tuple[int, ...]) -> np.ndarray:
        """A persistent ``shape``-sized scratch array for ``key``."""
        buf = self._buffers.get(key)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=self.dtype)
            self._buffers[key] = buf
        return buf

    def param(self, layer: Layer, name: str) -> np.ndarray:
        """``layer.params[name]``, cast to the workspace dtype (cached)."""
        value = layer.params[name]
        if value.dtype == self.dtype:
            return value
        key = (id(layer), name)
        cached = self._params.get(key)
        if cached is None:
            cached = value.astype(self.dtype)
            self._params[key] = cached
        return cached

    def cast(self, key, value: np.ndarray) -> np.ndarray:
        """``value`` in the workspace dtype, via a reused buffer."""
        if value.dtype == self.dtype:
            return value
        out = self.buffer(key, value.shape)
        out[...] = value
        return out

    def invalidate_params(self) -> None:
        """Drop cast-parameter caches (call after any weight update)."""
        self._params.clear()


class Sequential:
    """A feed-forward chain of layers.

    Exposes the same ``forward``/``backward`` protocol as a single layer
    so chains can be composed into multi-branch architectures (the DFP
    network composes three input branches plus two output streams).
    """

    def __init__(self, layers: list[Layer] | None = None) -> None:
        self.layers: list[Layer] = list(layers or [])

    def add(self, layer: Layer) -> "Sequential":
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def infer(
        self, x: np.ndarray, workspace: InferenceWorkspace | None = None, key: str = ""
    ) -> np.ndarray:
        """Inference-only forward pass (bit-identical values).

        With a workspace, intermediate activations land in reused
        buffers — the returned array is workspace-owned and valid only
        until the next ``infer`` through the same keys.
        """
        for i, layer in enumerate(self.layers):
            x = layer.infer(x, workspace, (key, i))
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def parameter_count(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for layer in self.layers for p in layer.params.values())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat ``{layerIdx.name: array}`` mapping of parameter copies."""
        return {
            f"{li}.{name}": param.copy()
            for li, layer in enumerate(self.layers)
            for name, param in layer.params.items()
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for li, layer in enumerate(self.layers):
            for name, param in layer.params.items():
                key = f"{li}.{name}"
                if key not in state:
                    raise KeyError(f"missing parameter {key}")
                if state[key].shape != param.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: {state[key].shape} vs {param.shape}"
                    )
                param[...] = state[key]

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def __len__(self) -> int:
        return len(self.layers)
