"""Sequential container chaining layers into a network."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer

__all__ = ["Sequential"]


class Sequential:
    """A feed-forward chain of layers.

    Exposes the same ``forward``/``backward`` protocol as a single layer
    so chains can be composed into multi-branch architectures (the DFP
    network composes three input branches plus two output streams).
    """

    def __init__(self, layers: list[Layer] | None = None) -> None:
        self.layers: list[Layer] = list(layers or [])

    def add(self, layer: Layer) -> "Sequential":
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def parameter_count(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for layer in self.layers for p in layer.params.values())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat ``{layerIdx.name: array}`` mapping of parameter copies."""
        return {
            f"{li}.{name}": param.copy()
            for li, layer in enumerate(self.layers)
            for name, param in layer.params.items()
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for li, layer in enumerate(self.layers):
            for name, param in layer.params.items():
                key = f"{li}.{name}"
                if key not in state:
                    raise KeyError(f"missing parameter {key}")
                if state[key].shape != param.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: {state[key].shape} vs {param.shape}"
                    )
                param[...] = state[key]

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def __len__(self) -> int:
        return len(self.layers)
