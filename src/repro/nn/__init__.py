"""A small, self-contained NumPy neural-network library.

This package replaces the TensorFlow dependency of the original MRSch
implementation. It provides exactly the building blocks the paper needs —
fully-connected and 1-D convolutional layers, leaky-rectifier activations,
mean-squared-error training with Adam — implemented with explicit
forward/backward passes and verified against finite differences in the
test suite.

Layout
------
``layers``
    Stateless and parameterised layers with ``forward``/``backward``.
``network``
    :class:`Sequential` container chaining layers.
``losses``
    MSE / Huber / cross-entropy losses returning (value, gradient).
``optim``
    SGD, Momentum, RMSProp and Adam optimizers.
``init``
    Weight initialisation schemes (He, Xavier/Glorot, uniform).
``serialize``
    ``.npz`` round-trip of network parameters.
"""

from repro.nn.init import he_init, uniform_init, xavier_init
from repro.nn.layers import (
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    LeakyReLU,
    MaxPool1D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.losses import cross_entropy_loss, huber_loss, mse_loss
from repro.nn.network import Sequential
from repro.nn.optim import SGD, Adam, Momentum, Optimizer, RMSProp
from repro.nn.serialize import load_params, save_params

__all__ = [
    "Layer",
    "Dense",
    "Conv1D",
    "MaxPool1D",
    "Flatten",
    "Dropout",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "Sequential",
    "mse_loss",
    "huber_loss",
    "cross_entropy_loss",
    "Optimizer",
    "SGD",
    "Momentum",
    "RMSProp",
    "Adam",
    "he_init",
    "xavier_init",
    "uniform_init",
    "save_params",
    "load_params",
]
