"""Parameter serialisation to/from ``.npz`` archives.

A trained MRSch agent can be checkpointed and later restored for
inference-only deployment (the paper trains offline and deploys the
frozen policy).
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["save_params", "load_params"]


def save_params(path: str | os.PathLike, state: dict[str, np.ndarray]) -> None:
    """Write a flat parameter dict to ``path`` (``.npz``).

    Keys may contain dots; they are preserved verbatim.
    """
    np.savez(path, **{k: np.asarray(v) for k, v in state.items()})


def load_params(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read a parameter dict previously written by :func:`save_params`."""
    with np.load(path) as data:
        return {k: data[k].copy() for k in data.files}
