"""Loss functions returning ``(value, gradient_wrt_prediction)``.

MRSch trains the DFP network with mean-squared error between predicted
and realised future-measurement changes (paper Fig. 4 reports the MSE
loss). Huber and cross-entropy are provided for the baselines and for
robustness experiments.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mse_loss", "huber_loss", "cross_entropy_loss"]


def _check_shapes(pred: np.ndarray, target: np.ndarray) -> None:
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: pred {pred.shape} vs target {target.shape}")


def mse_loss(
    pred: np.ndarray, target: np.ndarray, mask: np.ndarray | None = None
) -> tuple[float, np.ndarray]:
    """Mean squared error; ``mask`` zeroes out entries (e.g. untaken actions)."""
    _check_shapes(pred, target)
    diff = pred - target
    if mask is not None:
        diff = diff * mask
        denom = max(float(mask.sum()), 1.0)
    else:
        denom = float(diff.size) or 1.0
    value = float((diff**2).sum() / denom)
    grad = 2.0 * diff / denom
    return value, grad


def huber_loss(
    pred: np.ndarray, target: np.ndarray, delta: float = 1.0
) -> tuple[float, np.ndarray]:
    """Huber loss — quadratic near zero, linear in the tails."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    _check_shapes(pred, target)
    diff = pred - target
    abs_diff = np.abs(diff)
    quad = abs_diff <= delta
    value = float(
        np.mean(np.where(quad, 0.5 * diff**2, delta * (abs_diff - 0.5 * delta)))
    )
    grad = np.where(quad, diff, delta * np.sign(diff)) / diff.size
    return value, grad


def cross_entropy_loss(
    probs: np.ndarray, targets: np.ndarray, eps: float = 1e-12
) -> tuple[float, np.ndarray]:
    """Cross-entropy against one-hot (or soft) targets on probability rows."""
    _check_shapes(probs, targets)
    clipped = np.clip(probs, eps, 1.0)
    value = float(-(targets * np.log(clipped)).sum() / probs.shape[0])
    grad = -(targets / clipped) / probs.shape[0]
    return value, grad
