"""Typed simulation events and a deterministic event queue.

Events are ordered by ``(time, kind priority, sequence)``: ends sort
before submits at equal timestamps (so resources freed by a finishing
job are visible to a simultaneously arriving one), and the insertion
sequence breaks remaining ties deterministically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum

from repro.workload.job import Job

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(IntEnum):
    """Event types, ordered by processing priority at equal times."""

    END = 0
    SUBMIT = 1


@dataclass(frozen=True)
class Event:
    time: float
    kind: EventKind
    job: Job = field(compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")


class EventQueue:
    """Binary-heap event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, int(event.kind), self._seq, event))
        self._seq += 1

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Event:
        if not self._heap:
            raise IndexError("peek at empty event queue")
        return self._heap[0][3]

    def peek_time(self) -> float:
        return self._heap[0][0]

    def pop_simultaneous(self) -> list[Event]:
        """Pop every event sharing the head timestamp, in priority order.

        The simulator processes all state changes at one instant before
        invoking the scheduler once — matching CQSim's trigger model.
        """
        if not self._heap:
            raise IndexError("pop from empty event queue")
        t = self._heap[0][0]
        batch = []
        while self._heap and self._heap[0][0] == t:
            batch.append(heapq.heappop(self._heap)[3])
        return batch

    def snapshot(self) -> tuple[list[tuple[float, int, int, Event]], int]:
        """Copy of the heap and insertion counter.

        Events are frozen dataclasses, so a shallow list copy preserves
        exact ordering (including the insertion-sequence tie-break); the
        jobs they reference are *not* copied — callers snapshotting a
        simulation must capture mutable job state separately.
        """
        return list(self._heap), self._seq

    def restore(self, snap: tuple[list[tuple[float, int, int, Event]], int]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        heap, seq = snap
        self._heap = list(heap)
        self._seq = seq

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
