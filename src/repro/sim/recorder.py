"""Timeline recording of utilization and goal-vector samples.

The comparison figures need more than end-of-run aggregates: Fig. 8
plots the burst-buffer goal weight over a 12-hour window and Fig. 9 its
distribution per workload. The recorder stores step-function samples —
values are constant between simulation events, so time-weighted
integrals are exact.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TimelineRecorder"]


class TimelineRecorder:
    """Collects (time, vector) samples for utilization and goal values.

    ``n_resources`` fixes the value width up front so empty series keep
    their resource dimension — a recorder that saw no samples yet still
    answers ``(T=0, n_resources)``-shaped values, which is what plotting
    and metric consumers expect. When omitted, the width is inferred
    from the first recorded sample (and empty series fall back to
    width 0, the historical behaviour).
    """

    def __init__(self, n_resources: int | None = None) -> None:
        self.n_resources = n_resources
        self._util_times: list[float] = []
        self._util_values: list[np.ndarray] = []
        self._goal_times: list[float] = []
        self._goal_values: list[np.ndarray] = []

    # -- recording ---------------------------------------------------------

    def record_utilization(self, time: float, utilization: np.ndarray) -> None:
        value = np.asarray(utilization, dtype=float).copy()
        if self.n_resources is None:
            self.n_resources = value.shape[-1]
        self._util_times.append(time)
        self._util_values.append(value)

    def record_goal(self, time: float, goal: np.ndarray) -> None:
        value = np.asarray(goal, dtype=float).copy()
        if self.n_resources is None:
            self.n_resources = value.shape[-1]
        self._goal_times.append(time)
        self._goal_values.append(value)

    # -- retrieval ---------------------------------------------------------

    def _empty_series(self) -> tuple[np.ndarray, np.ndarray]:
        return np.zeros(0), np.zeros((0, self.n_resources or 0))

    @property
    def utilization_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) arrays; values has shape (T, n_resources)."""
        if not self._util_times:
            return self._empty_series()
        return np.asarray(self._util_times), np.vstack(self._util_values)

    @property
    def goal_series(self) -> tuple[np.ndarray, np.ndarray]:
        if not self._goal_times:
            return self._empty_series()
        return np.asarray(self._goal_times), np.vstack(self._goal_values)

    # -- snapshot / restore -------------------------------------------------

    def snapshot(self) -> dict:
        """Copy of the recorded samples (for episode snapshot/restore)."""
        return {
            "n_resources": self.n_resources,
            "util_times": list(self._util_times),
            "util_values": [v.copy() for v in self._util_values],
            "goal_times": list(self._goal_times),
            "goal_values": [v.copy() for v in self._goal_values],
        }

    def restore(self, snap: dict) -> None:
        """Restore samples captured by :meth:`snapshot`."""
        self.n_resources = snap["n_resources"]
        self._util_times = list(snap["util_times"])
        self._util_values = [v.copy() for v in snap["util_values"]]
        self._goal_times = list(snap["goal_times"])
        self._goal_values = [v.copy() for v in snap["goal_values"]]

    def goal_window(self, t_start: float, t_end: float) -> tuple[np.ndarray, np.ndarray]:
        """Goal samples within ``[t_start, t_end]`` (Fig. 8 windows)."""
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        times, values = self.goal_series
        if times.size == 0:
            return times, values
        mask = (times >= t_start) & (times <= t_end)
        return times[mask], values[mask]

    def time_weighted_mean_utilization(self) -> np.ndarray:
        """Exact time-weighted mean of the utilization step function.

        Degenerate series are handled explicitly: no samples yields an
        empty vector, a single sample (or all samples at one instant —
        zero span, e.g. every event at t=0) has no elapsed time to
        weight by, so the plain sample mean is returned. The result is
        always a fresh array — mutating it cannot corrupt the recording.
        """
        times, values = self.utilization_series
        if times.size == 0:
            return np.zeros(self.n_resources or 0)
        if times.size == 1:
            return values[0].copy()
        span = times[-1] - times[0]
        if span <= 0:
            return values.mean(axis=0)
        dt = np.diff(times)
        return (values[:-1] * dt[:, None]).sum(axis=0) / span
