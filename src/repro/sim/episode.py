"""Snapshot/restore-able per-episode simulation state.

The event loop in :class:`~repro.sim.simulator.Simulator` owns five
pieces of mutable state — pool arrays (plus their dirty trackers), the
waiting :class:`~repro.sched.jobqueue.JobQueue`, the event heap, the
timeline recorder and the running-job dict. :class:`EpisodeState`
factors them behind one boundary so

* :class:`~repro.sim.batched.BatchedSimulator` can advance N episodes in
  lockstep, each owning its own state but sharing one network,
* a whole episode can be checkpointed mid-run and restored bit-exactly
  (``snapshot``/``restore``), which is what makes the batch layer — and
  any future speculative or branching rollout — cheap to build on.

The pool object survives :meth:`load` calls (it is reset, never
rebound), so incremental state encoders that attach to it by identity
keep their binding across episodes and restores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.resources import ResourcePool, SystemConfig
from repro.sched.base import Scheduler, SchedulingContext
from repro.sched.jobqueue import JobQueue
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.metrics import MetricReport, compute_metrics
from repro.sim.recorder import TimelineRecorder
from repro.workload.job import Job

__all__ = ["EpisodeState", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one simulated trace replay."""

    jobs: list[Job]
    metrics: MetricReport
    recorder: TimelineRecorder
    makespan: float
    n_scheduling_instances: int


class EpisodeState:
    """The full mutable state of one trace-replay episode.

    Parameters
    ----------
    system:
        Resource configuration.
    record_timeline:
        Record a utilization sample at every scheduling instance.
    pool:
        Optional pre-built pool to adopt (reset on :meth:`load`); by
        default the episode builds its own. Either way the pool object
        persists for the lifetime of the episode state.
    """

    def __init__(
        self,
        system: SystemConfig,
        record_timeline: bool = True,
        pool: ResourcePool | None = None,
    ) -> None:
        self.system = system
        self.record_timeline = record_timeline
        self.pool = pool if pool is not None else ResourcePool(system)
        self.now = 0.0
        self.queue: JobQueue = JobQueue(system.names)
        self.events = EventQueue()
        self.recorder = TimelineRecorder(system.n_resources)
        self.n_instances = 0
        self.jobs: list[Job] = []
        #: running jobs keyed by job_id — O(1) END handling; the dict
        #: preserves start order, so iterating (Eq. 1) matches the list
        #: the seed implementation kept
        self.running: dict[int, Job] = {}

    # -- lifecycle ---------------------------------------------------------

    def load(self, jobs: list[Job]) -> None:
        """Reset all state and seed the event queue with ``jobs``.

        Jobs are copied; the caller's list is never mutated, so the same
        trace can be replayed under many schedulers.
        """
        self.pool.reset()
        self.queue = JobQueue(self.system.names)
        self.now = 0.0
        self.events = EventQueue()
        self.recorder = TimelineRecorder(self.system.n_resources)
        self.n_instances = 0
        self.jobs = []
        self.running = {}
        for job in sorted(jobs, key=lambda j: (j.submit_time, j.job_id)):
            self.system.validate_job(job)
            copy = job.copy()
            self.jobs.append(copy)
            self.events.push(Event(copy.submit_time, EventKind.SUBMIT, copy))

    def advance(self) -> bool:
        """Apply the next instant's events; ``False`` once drained.

        One ``True`` return corresponds to exactly one scheduling
        trigger: all simultaneous events are applied before the
        scheduler sees the new state (CQSim's trigger model).
        """
        if not self.events:
            return False
        batch = self.events.pop_simultaneous()
        self.now = batch[0].time
        for event in batch:
            self.apply(event)
        return True

    def apply(self, event: Event) -> None:
        if event.kind is EventKind.SUBMIT:
            self.queue.append(event.job)
        else:  # END
            job = event.job
            job.end_time = self.now
            self.pool.release(job)
            del self.running[job.job_id]

    def start_job(self, job: Job) -> None:
        self.pool.allocate(job, self.now)
        job.start_time = self.now
        self.running[job.job_id] = job
        self.events.push(Event(self.now + job.runtime, EventKind.END, job))

    def context(self) -> SchedulingContext:
        return SchedulingContext(
            now=self.now,
            queue=self.queue,
            pool=self.pool,
            system=self.system,
            start=self.start_job,
            # A live view: iteration order is start order, as before.
            running=self.running.values(),  # type: ignore[arg-type]
        )

    def end_instance(self) -> None:
        """Close one scheduling instance (count it, sample utilization)."""
        self.n_instances += 1
        if self.record_timeline:
            self.recorder.record_utilization(self.now, self.pool.utilizations())

    def finish(self) -> SimulationResult:
        """Check completion and package the episode's result."""
        unfinished = [j.job_id for j in self.jobs if not j.finished]
        if unfinished:
            raise RuntimeError(f"simulation ended with unfinished jobs: {unfinished[:5]}")
        makespan = max((j.end_time or 0.0) for j in self.jobs) if self.jobs else 0.0
        return SimulationResult(
            jobs=self.jobs,
            metrics=compute_metrics(self.jobs, self.system, recorder=self.recorder),
            recorder=self.recorder,
            makespan=makespan,
            n_scheduling_instances=self.n_instances,
        )

    def run_to_completion(self, scheduler: Scheduler) -> SimulationResult:
        """Drive a loaded episode to its end under ``scheduler``.

        The sequential inner loop, shared by :class:`Simulator` and the
        batch layer's fallback path for schedulers that do not implement
        the split decision protocol.
        """
        while self.advance():
            scheduler.schedule(self.context())
            self.end_instance()
        return self.finish()

    # -- snapshot / restore -------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the episode mid-run.

        Valid for restore onto *this* state object with the same loaded
        trace: the event heap references the episode's job objects, so
        per-job mutable fields are captured here and written back on
        :meth:`restore` while the job identities stay put.
        """
        return {
            "now": self.now,
            "n_instances": self.n_instances,
            "pool": self.pool.snapshot(),
            "events": self.events.snapshot(),
            "queue": [job.job_id for job in self.queue],
            "running": list(self.running),
            "recorder": self.recorder.snapshot(),
            "jobs": {
                job.job_id: (
                    job.start_time,
                    job.end_time,
                    {k: list(v) for k, v in job.allocation.items()},
                )
                for job in self.jobs
            },
        }

    def restore(self, snap: dict) -> None:
        """Restore state captured by :meth:`snapshot`.

        Pool arrays are overwritten in place (identity-bound encoder
        attachments survive; dirty trackers degrade to a full rebuild,
        so the next encode is bit-identical to a fresh one). The waiting
        queue is rebuilt in submission order, which reproduces the exact
        window/backfill candidate sequence.
        """
        self.now = snap["now"]
        self.n_instances = snap["n_instances"]
        self.pool.restore(snap["pool"])
        self.events.restore(snap["events"])
        self.recorder.restore(snap["recorder"])
        by_id = {job.job_id: job for job in self.jobs}
        for jid, (start, end, alloc) in snap["jobs"].items():
            job = by_id[jid]
            job.start_time = start
            job.end_time = end
            job.allocation = {k: list(v) for k, v in alloc.items()}
        self.queue = JobQueue(self.system.names)
        for jid in snap["queue"]:
            self.queue.append(by_id[jid])
        self.running = {jid: by_id[jid] for jid in snap["running"]}
