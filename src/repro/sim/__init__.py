"""Event-driven trace simulator (CQSim re-implementation).

The paper evaluates every scheduler inside CQSim, a trace-based,
event-driven HPC scheduling simulator: jobs are imported from a trace,
the clock advances between events, and queue/system changes trigger
scheduling requests to the policy under test (§IV). This package
re-implements those semantics:

``events``
    Typed events and a deterministic binary-heap event queue.
``episode``
    Snapshot/restore-able per-episode mutable state (pool, queue,
    events, recorder, running set).
``simulator``
    The engine: submit/end event processing, scheduler invocation,
    job start bookkeeping.
``batched``
    Lockstep multi-episode driver sharing one batched network call per
    macro-step across all episodes awaiting a decision.
``metrics``
    Paper §IV-B metrics (node/BB utilization, average wait, average
    slowdown), power metrics for §V-E, and Kiviat normalization (Fig 7).
``recorder``
    Timeline recording of measurements and goal vectors (Figs 8–9).
"""

from repro.sim.batched import BatchedSimulator
from repro.sim.episode import EpisodeState
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.metrics import MetricReport, compute_metrics, kiviat_normalize
from repro.sim.recorder import TimelineRecorder
from repro.sim.simulator import SimulationResult, Simulator

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "EpisodeState",
    "Simulator",
    "BatchedSimulator",
    "SimulationResult",
    "MetricReport",
    "compute_metrics",
    "kiviat_normalize",
    "TimelineRecorder",
]
