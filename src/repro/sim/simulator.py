"""The trace-driven, event-driven scheduling simulator.

Re-implements the CQSim role described in §IV: jobs are imported from a
trace; the clock jumps between events; every queue or system change
(submission, job completion) triggers one scheduling request to the
policy under test. Job *starts* use the user walltime for resource
estimates but the hidden actual runtime for the end event — exactly the
information asymmetry a production scheduler faces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.resources import ResourcePool, SystemConfig
from repro.sched.base import Scheduler, SchedulingContext
from repro.sched.jobqueue import JobQueue
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.metrics import MetricReport, compute_metrics
from repro.sim.recorder import TimelineRecorder
from repro.workload.job import Job

__all__ = ["Simulator", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one simulated trace replay."""

    jobs: list[Job]
    metrics: MetricReport
    recorder: TimelineRecorder
    makespan: float
    n_scheduling_instances: int


class Simulator:
    """Event-driven replay of a job trace under one scheduler.

    Parameters
    ----------
    system:
        Resource configuration.
    scheduler:
        Policy under test (reset at the start of every :meth:`run`).
    record_timeline:
        Record utilization samples at every event (needed for Figs 8–9
        and the power metrics; small overhead otherwise).
    """

    def __init__(
        self,
        system: SystemConfig,
        scheduler: Scheduler,
        record_timeline: bool = True,
    ) -> None:
        self.system = system
        self.scheduler = scheduler
        self.record_timeline = record_timeline
        self.pool = ResourcePool(system)
        self.now = 0.0
        #: the waiting queue — a :class:`JobQueue` so the scheduler loop
        #: gets O(1) dequeues, O(window) windows and columnar backfill
        #: arrays instead of full-queue rescans per selection
        self.queue: JobQueue = JobQueue(system.names)
        self._events = EventQueue()
        self._recorder = TimelineRecorder()
        self._n_instances = 0
        self._jobs: list[Job] = []
        #: running jobs keyed by job_id — O(1) END handling; the dict
        #: preserves start order, so iterating (Eq. 1) matches the list
        #: the seed implementation kept
        self._running: dict[int, Job] = {}

    # -- public API ------------------------------------------------------

    def run(self, jobs: list[Job]) -> SimulationResult:
        """Replay ``jobs`` to completion and return metrics.

        Jobs are copied; the caller's list is never mutated, so the same
        trace can be replayed under many schedulers.
        """
        self._reset(jobs)
        while self._events:
            batch = self._events.pop_simultaneous()
            self.now = batch[0].time
            for event in batch:
                self._apply(event)
            self._invoke_scheduler()
        unfinished = [j.job_id for j in self._jobs if not j.finished]
        if unfinished:
            raise RuntimeError(f"simulation ended with unfinished jobs: {unfinished[:5]}")
        makespan = max((j.end_time or 0.0) for j in self._jobs) if self._jobs else 0.0
        return SimulationResult(
            jobs=self._jobs,
            metrics=compute_metrics(self._jobs, self.system, recorder=self._recorder),
            recorder=self._recorder,
            makespan=makespan,
            n_scheduling_instances=self._n_instances,
        )

    # -- internals ------------------------------------------------------

    def _reset(self, jobs: list[Job]) -> None:
        self.pool.reset()
        self.queue = JobQueue(self.system.names)
        self.now = 0.0
        self._events = EventQueue()
        self._recorder = TimelineRecorder()
        self._n_instances = 0
        self.scheduler.reset()
        self._jobs = []
        self._running = {}
        for job in sorted(jobs, key=lambda j: (j.submit_time, j.job_id)):
            self.system.validate_job(job)
            copy = job.copy()
            self._jobs.append(copy)
            self._events.push(Event(copy.submit_time, EventKind.SUBMIT, copy))

    def _apply(self, event: Event) -> None:
        if event.kind is EventKind.SUBMIT:
            self.queue.append(event.job)
        else:  # END
            job = event.job
            job.end_time = self.now
            self.pool.release(job)
            del self._running[job.job_id]

    def _start_job(self, job: Job) -> None:
        self.pool.allocate(job, self.now)
        job.start_time = self.now
        self._running[job.job_id] = job
        self._events.push(Event(self.now + job.runtime, EventKind.END, job))

    def _invoke_scheduler(self) -> None:
        ctx = SchedulingContext(
            now=self.now,
            queue=self.queue,
            pool=self.pool,
            system=self.system,
            start=self._start_job,
            # A live view: iteration order is start order, as before.
            running=self._running.values(),  # type: ignore[arg-type]
        )
        self.scheduler.schedule(ctx)
        self._n_instances += 1
        if self.record_timeline:
            self._recorder.record_utilization(self.now, self.pool.utilizations())
