"""The trace-driven, event-driven scheduling simulator.

Re-implements the CQSim role described in §IV: jobs are imported from a
trace; the clock jumps between events; every queue or system change
(submission, job completion) triggers one scheduling request to the
policy under test. Job *starts* use the user walltime for resource
estimates but the hidden actual runtime for the end event — exactly the
information asymmetry a production scheduler faces.

All mutable per-episode state lives in
:class:`~repro.sim.episode.EpisodeState`; this class binds one episode
to one scheduler and drives the loop. The lockstep multi-episode
variant is :class:`~repro.sim.batched.BatchedSimulator`.
"""

from __future__ import annotations

from repro.cluster.resources import ResourcePool, SystemConfig
from repro.obs import runtime as _obs_runtime
from repro.sched.base import Scheduler
from repro.sched.jobqueue import JobQueue
from repro.sim.episode import EpisodeState, SimulationResult
from repro.workload.job import Job

__all__ = ["Simulator", "SimulationResult"]


class Simulator:
    """Event-driven replay of a job trace under one scheduler.

    Parameters
    ----------
    system:
        Resource configuration.
    scheduler:
        Policy under test (reset at the start of every :meth:`run`).
    record_timeline:
        Record utilization samples at every event (needed for Figs 8–9
        and the power metrics; small overhead otherwise).
    """

    def __init__(
        self,
        system: SystemConfig,
        scheduler: Scheduler,
        record_timeline: bool = True,
    ) -> None:
        self.system = system
        self.scheduler = scheduler
        self.record_timeline = record_timeline
        self._state = EpisodeState(system, record_timeline)

    # -- episode-state views (the pool persists across runs) --------------

    @property
    def state(self) -> EpisodeState:
        return self._state

    @property
    def pool(self) -> ResourcePool:
        return self._state.pool

    @property
    def queue(self) -> JobQueue:
        return self._state.queue

    @property
    def now(self) -> float:
        return self._state.now

    # -- public API ------------------------------------------------------

    def run(self, jobs: list[Job]) -> SimulationResult:
        """Replay ``jobs`` to completion and return metrics.

        Jobs are copied; the caller's list is never mutated, so the same
        trace can be replayed under many schedulers.
        """
        session = _obs_runtime.session
        if session is None:
            self._state.load(jobs)
            self.scheduler.reset()
            return self._state.run_to_completion(self.scheduler)
        with session.span(
            "episode", scheduler=self.scheduler.name, jobs=len(jobs)
        ):
            self._state.load(jobs)
            self.scheduler.reset()
            result = self._state.run_to_completion(self.scheduler)
        session.metrics.counter("sim.episodes").inc()
        return result
