"""Scheduling-quality metrics (paper §IV-B) and Kiviat normalization.

System-level metrics:

1. **Node utilization** — used node-hours during useful job execution
   over elapsed node-hours.
2. **Burst-buffer utilization** — used burst-buffer-hours over elapsed
   burst-buffer-hours.

User-level metrics:

3. **Average job wait time** — submission → start interval.
4. **Average job slowdown** — response time (wait + runtime) over
   runtime.

The §V-E case study adds **average system power** (mean power draw of
running jobs). :func:`kiviat_normalize` maps a set of methods onto the
[0, 1] radar axes of Figs 7/10 (1 = best method on that axis; wait and
slowdown enter as reciprocals so larger is always better).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.resources import BURST_BUFFER, NODE, POWER, SystemConfig
from repro.sim.recorder import TimelineRecorder
from repro.workload.job import Job

__all__ = ["MetricReport", "compute_metrics", "kiviat_normalize"]


@dataclass
class MetricReport:
    """Aggregate metrics for one (scheduler, workload) run.

    ``utilization`` maps every resource to its job-based utilization;
    ``node_util``/``bb_util`` are convenience views of the two the paper
    plots. Times are in seconds; the report helpers convert to hours.
    """

    utilization: dict[str, float]
    avg_wait: float
    avg_slowdown: float
    max_wait: float
    p95_slowdown: float
    makespan: float
    n_jobs: int
    avg_power_units: float = 0.0

    node_util: float = field(init=False)
    bb_util: float = field(init=False)

    def __post_init__(self) -> None:
        self.node_util = self.utilization.get(NODE, 0.0)
        self.bb_util = self.utilization.get(BURST_BUFFER, 0.0)

    @property
    def avg_wait_hours(self) -> float:
        return self.avg_wait / 3600.0

    def full_dict(self) -> dict:
        """Every field, JSON-serialisable — the cache/checkpoint format.

        Unlike :meth:`as_dict` (the four plotted columns), this loses no
        information: :meth:`from_dict` reconstructs an identical report.
        """
        return {
            "utilization": dict(self.utilization),
            "avg_wait": self.avg_wait,
            "avg_slowdown": self.avg_slowdown,
            "max_wait": self.max_wait,
            "p95_slowdown": self.p95_slowdown,
            "makespan": self.makespan,
            "n_jobs": self.n_jobs,
            "avg_power_units": self.avg_power_units,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricReport":
        """Inverse of :meth:`full_dict`."""
        return cls(
            utilization={str(k): float(v) for k, v in data["utilization"].items()},
            avg_wait=float(data["avg_wait"]),
            avg_slowdown=float(data["avg_slowdown"]),
            max_wait=float(data["max_wait"]),
            p95_slowdown=float(data["p95_slowdown"]),
            makespan=float(data["makespan"]),
            n_jobs=int(data["n_jobs"]),
            avg_power_units=float(data.get("avg_power_units", 0.0)),
        )

    def as_dict(self) -> dict[str, float]:
        out = {
            "node_util": self.node_util,
            "bb_util": self.bb_util,
            "avg_wait_h": self.avg_wait_hours,
            "avg_slowdown": self.avg_slowdown,
        }
        if self.avg_power_units:
            out["avg_power_units"] = self.avg_power_units
        return out


def compute_metrics(
    jobs: list[Job],
    system: SystemConfig,
    recorder: TimelineRecorder | None = None,
) -> MetricReport:
    """Compute the §IV-B metrics over a finished job list."""
    finished = [j for j in jobs if j.finished]
    if not finished:
        return MetricReport(
            utilization={name: 0.0 for name in system.names},
            avg_wait=0.0,
            avg_slowdown=0.0,
            max_wait=0.0,
            p95_slowdown=0.0,
            makespan=0.0,
            n_jobs=0,
        )
    t0 = min(j.submit_time for j in finished)
    t_end = max(j.end_time for j in finished)  # type: ignore[type-var]
    span = max(t_end - t0, 1e-9)

    utilization: dict[str, float] = {}
    for name in system.names:
        used = sum(j.request(name) * j.runtime for j in finished)
        utilization[name] = used / (system.capacity(name) * span)

    waits = np.array([j.wait_time for j in finished])
    slowdowns = np.array([j.slowdown for j in finished])

    avg_power = 0.0
    if POWER in system.names:
        # Mean power draw of running jobs over the whole span, in units.
        avg_power = sum(j.request(POWER) * j.runtime for j in finished) / span

    return MetricReport(
        utilization=utilization,
        avg_wait=float(waits.mean()),
        avg_slowdown=float(slowdowns.mean()),
        max_wait=float(waits.max()),
        p95_slowdown=float(np.percentile(slowdowns, 95)),
        makespan=span,
        n_jobs=len(finished),
        avg_power_units=avg_power,
    )


def kiviat_normalize(
    reports: dict[str, MetricReport],
    include_power: bool = False,
) -> dict[str, dict[str, float]]:
    """Normalize methods onto [0, 1] radar axes (Figs 7/10).

    Axes: node utilization, BB utilization, 1/avg wait, 1/avg slowdown,
    and (optionally) average system power. Each axis is divided by the
    best method's value so the best method scores 1.0.
    """
    if not reports:
        return {}

    def axes(r: MetricReport) -> dict[str, float]:
        out = {
            "node_util": r.node_util,
            "bb_util": r.bb_util,
            "inv_avg_wait": 1.0 / r.avg_wait if r.avg_wait > 0 else np.inf,
            "inv_avg_slowdown": 1.0 / r.avg_slowdown if r.avg_slowdown > 0 else np.inf,
        }
        if include_power:
            out["avg_sys_power"] = r.avg_power_units
        return out

    raw = {method: axes(r) for method, r in reports.items()}
    axis_names = next(iter(raw.values())).keys()
    normalized: dict[str, dict[str, float]] = {m: {} for m in raw}
    for axis in axis_names:
        values = {m: v[axis] for m, v in raw.items()}
        finite = [v for v in values.values() if np.isfinite(v)]
        best = max(finite) if finite else 1.0
        for method, value in values.items():
            if not np.isfinite(value):
                normalized[method][axis] = 1.0
            elif best <= 0:
                normalized[method][axis] = 0.0
            else:
                normalized[method][axis] = float(value / best)
    return normalized
