"""Lockstep multi-episode simulation with batched network scoring.

A grid evaluation (or a training sweep) runs N independent episodes; run
one at a time, every MRSch decision pays a one-window network call, so
the grid pays Python/NumPy dispatch and weight traffic N times over.
:class:`BatchedSimulator` advances N episodes *in lockstep*: each
episode keeps its own event clock and owns its own
:class:`~repro.sim.episode.EpisodeState`, but on every macro-step all
episodes currently paused at a staged decision are scored by ONE
``DFPAgent.action_scores_batch`` call over their stacked
(N_ready × window) inputs. The B=1 GEMV per decision becomes a B=N GEMM
whose weight traffic amortizes across the batch — the same dispatch
structure a GPU/array-API backend needs, which is why this substrate is
its precondition.

The pause/resume mechanics ride on
:meth:`~repro.sched.base.Scheduler.schedule_gen`, the generator form of
the §III-C instance loop: a scheduler implementing the split
``prepare_decision``/``apply_decision`` protocol yields its staged
inputs at every network call; schedulers without the split protocol
never yield and simply run their episodes to completion sequentially on
the first advance (decision-identical, just unbatched).

Determinism: with inference-mode schedulers (no exploration) the
lockstep interleaving is decision-identical to N sequential
:meth:`~repro.sim.simulator.Simulator.run` calls — a decision depends
only on its own episode's state, and an episode paused at one decision
is resumed with scores for exactly that decision. Episodes that happen
to be the only ready lane on a macro-step are scored through the
policy's own B=1 path, so a batch of one is *bit*-identical to
sequential; stacked rows go through the batched forward pass, whose
float re-association differs from the B=1 path at the ~1e-12 level
(pinned in tests/unit/test_dfp.py) — far below every decision margin the
guided policy produces, and the end-to-end equality test holds the
batched substrate to the sequential decisions exactly. Training-mode
episodes share the agent's ε-greedy RNG stream, whose draw order the
interleaving changes; batched training collection is therefore opt-in
(see :func:`repro.core.training.train_episodes`) and documented as a
different-but-valid exploration stream, not a bit-identical replay.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.resources import SystemConfig
from repro.nn.network import InferenceWorkspace
from repro.obs import runtime as _obs_runtime
from repro.sched.base import DecisionInputs, Scheduler
from repro.sim.episode import EpisodeState, SimulationResult
from repro.workload.job import Job

__all__ = ["BatchedSimulator"]


class _Episode:
    """One lockstep lane: an episode state plus its paused instance loop."""

    __slots__ = ("scheduler", "state", "gen", "pending")

    def __init__(self, scheduler: Scheduler, state: EpisodeState) -> None:
        self.scheduler = scheduler
        self.state = state
        #: the live ``schedule_gen`` generator while an instance is
        #: paused at a staged decision; ``None`` between instances
        self.gen = None
        #: the :class:`DecisionInputs` awaiting scores; ``None`` once
        #: the episode's event queue drained
        self.pending: DecisionInputs | None = None

    @property
    def done(self) -> bool:
        return self.pending is None and self.gen is None

    def run_until_pause(self, scores: np.ndarray | None = None) -> None:
        """Advance until the next staged decision or the episode's end.

        ``scores`` resumes the pending decision (required when one is
        pending); the loop then drives events and scheduling instances
        until a scheduler pause or event-queue exhaustion.
        """
        gen = self.gen
        fresh = False
        while True:
            if gen is None:
                if not self.state.advance():
                    self.pending = None
                    self.gen = None
                    return
                gen = self.scheduler.schedule_gen(self.state.context())
                fresh = True
            try:
                self.pending = next(gen) if fresh else gen.send(scores)
            except StopIteration:
                self.state.end_instance()
                gen = None
                scores = None
                continue
            self.gen = gen
            return


class BatchedSimulator:
    """Run N independent episodes in lockstep with batched scoring.

    Parameters
    ----------
    system:
        Resource configuration, shared by every episode.
    schedulers:
        One policy per episode. Policies meant to share a network must
        report the same :meth:`~repro.sched.base.Scheduler.batch_scorer`
        key (e.g. MRSch lockstep clones sharing one agent); scoring is
        grouped by that key, one batched call per group per macro-step.
    record_timeline:
        As for :class:`~repro.sim.simulator.Simulator`.
    """

    def __init__(
        self,
        system: SystemConfig,
        schedulers: list[Scheduler],
        record_timeline: bool = True,
    ) -> None:
        if not schedulers:
            raise ValueError("BatchedSimulator needs at least one scheduler")
        self.system = system
        self.schedulers = list(schedulers)
        self.record_timeline = record_timeline
        self._episodes = [
            _Episode(sched, EpisodeState(system, record_timeline))
            for sched in self.schedulers
        ]
        #: stacked-input staging buffers, reused across macro-steps
        self._ws = InferenceWorkspace()
        #: diagnostics of the last :meth:`run` — how many batched
        #: scoring calls were issued and how many decision rows they
        #: carried (bench meta reports the amortization achieved)
        self.batch_calls = 0
        self.scored_rows = 0

    @classmethod
    def for_scheduler(
        cls,
        system: SystemConfig,
        scheduler: Scheduler,
        n_episodes: int,
        record_timeline: bool = True,
    ) -> "BatchedSimulator":
        """N lockstep lanes driven by ``scheduler`` and its clones."""
        if n_episodes <= 0:
            raise ValueError("n_episodes must be positive")
        schedulers = [scheduler]
        for _ in range(n_episodes - 1):
            clone = scheduler.lockstep_clone()
            if clone is None:
                raise ValueError(
                    f"{scheduler.name} does not support lockstep cloning"
                )
            schedulers.append(clone)
        return cls(system, schedulers, record_timeline)

    def run(self, jobsets: list[list[Job]]) -> list[SimulationResult]:
        """Replay one jobset per episode; results in episode order.

        Each jobset is copied (as with ``Simulator.run``); every
        scheduler is reset. Episodes finishing early simply drop out of
        the lockstep batch — the rest keep batching among themselves.
        """
        episodes = self._episodes
        if len(jobsets) != len(episodes):
            raise ValueError(
                f"got {len(jobsets)} jobsets for {len(episodes)} episodes"
            )
        self.batch_calls = 0
        self.scored_rows = 0
        for ep, jobs in zip(episodes, jobsets):
            ep.state.load(jobs)
            ep.scheduler.reset()
            ep.gen = None
            ep.pending = None
        for ep in episodes:
            ep.run_until_pause()
        while True:
            ready = [ep for ep in episodes if ep.pending is not None]
            if not ready:
                break
            self._score_macro_step(ready)
        return [ep.state.finish() for ep in episodes]

    # -- internals ------------------------------------------------------

    def _score_macro_step(self, ready: list[_Episode]) -> None:
        """Score every paused decision once; resume each episode."""
        groups: dict[int, tuple] = {}
        singles: list[_Episode] = []
        for ep in ready:
            scorer = ep.scheduler.batch_scorer()
            if scorer is None:
                singles.append(ep)
                continue
            key, fn = scorer
            entry = groups.get(id(key))
            if entry is None:
                groups[id(key)] = (fn, [ep])
            else:
                entry[1].append(ep)
        for ep in singles:
            ep.run_until_pause(ep.scheduler.score_decision(ep.pending))
        for fn, eps in groups.values():
            if len(eps) == 1:
                # A batch of one scores through the policy's own B=1
                # path — cheaper (folded objective) and bit-identical
                # to the sequential simulator.
                ep = eps[0]
                ep.run_until_pause(ep.scheduler.score_decision(ep.pending))
                continue
            batch = len(eps)
            first = eps[0].pending
            states = self._ws.buffer("stack_state", (batch, first.state.shape[-1]))
            meas = self._ws.buffer("stack_meas", (batch, first.measurement.shape[-1]))
            goals = self._ws.buffer("stack_goal", (batch, first.goal.shape[-1]))
            for i, ep in enumerate(eps):
                pending = ep.pending
                states[i] = pending.state
                meas[i] = pending.measurement
                goals[i] = pending.goal
            scores = fn(states, meas, goals)
            self.batch_calls += 1
            self.scored_rows += batch
            session = _obs_runtime.session
            if session is not None:
                session.metrics.histogram("sim.inference_batch").observe(batch)
                session.metrics.counter("sim.batch_calls").inc()
            for i, ep in enumerate(eps):
                ep.run_until_pause(scores[i])
