"""Offline scheduling policies scoreable on recorded decision traces.

An *offline policy* is a callable ``(trace) -> (N, W) scores``: given a
:class:`~repro.eval.trace.DecisionTrace` it scores every candidate slot
of every recorded decision in one vectorised pass. Feature-based
heuristics (FCFS order, shortest-walltime, goal-weighted demand, the
MRSch feasibility/age prior) register here by name; DFP agents replay
through :class:`DFPReplayPolicy`, which drives the batched
:meth:`~repro.core.dfp.DFPAgent.action_scores_batch` path — the fast
inference route that the live event loop never uses.

Register additional policies with :func:`register_eval_policy`::

    @register_eval_policy("widest", description="most nodes first")
    def widest(trace):
        return trace.feature("req_frac:node")
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.eval.trace import DecisionTrace

__all__ = [
    "EvalPolicyEntry",
    "register_eval_policy",
    "get_eval_policy",
    "list_eval_policies",
    "describe_eval_policies",
    "build_policies",
    "DFPReplayPolicy",
]


@dataclass(frozen=True)
class EvalPolicyEntry:
    """One registered offline policy."""

    name: str
    scorer: Callable[[DecisionTrace], np.ndarray]
    description: str = ""


_POLICIES: dict[str, EvalPolicyEntry] = {}


def register_eval_policy(name: str, *, description: str = "") -> Callable:
    """Register an offline policy ``(trace) -> (N, W) scores`` under ``name``."""

    def decorator(fn: Callable) -> Callable:
        clashes = [n for n in _POLICIES if n.lower() == name.lower()]
        if clashes:
            raise ValueError(
                f"eval policy {name!r} is already registered (as {clashes[0]!r})"
            )
        _POLICIES[name] = EvalPolicyEntry(
            name=name, scorer=fn, description=description or (fn.__doc__ or "")
        )
        return fn

    return decorator


def get_eval_policy(name: str) -> EvalPolicyEntry:
    """Case-insensitive lookup with the available names on failure."""
    entry = _POLICIES.get(name)
    if entry is None:
        folded = str(name).lower()
        entry = next(
            (e for n, e in _POLICIES.items() if n.lower() == folded), None
        )
    if entry is None:
        raise KeyError(
            f"unknown eval policy {name!r}; available: "
            f"{', '.join(list_eval_policies())}"
        )
    return entry


def list_eval_policies() -> tuple[str, ...]:
    """Registered offline policy names, registration order."""
    return tuple(_POLICIES)


def describe_eval_policies() -> dict:
    """``{name: first description line}`` for every registered policy."""
    return {
        e.name: (e.description.strip().splitlines() or [""])[0]
        for e in _POLICIES.values()
    }


def build_policies(
    spec: "Sequence[str] | Mapping[str, Callable]",
) -> "dict[str, Callable[[DecisionTrace], np.ndarray]]":
    """Resolve a policy spec (names, or name → callable) to scorers."""
    if isinstance(spec, Mapping):
        return dict(spec)
    out: dict[str, Callable] = {}
    for name in spec:
        entry = get_eval_policy(name)
        out[entry.name] = entry.scorer
    return out


# -- feature helpers ----------------------------------------------------------


def _n_resources(trace: DecisionTrace) -> int:
    return len(trace.meta.get("resources", ())) or trace.goals.shape[1]


def _demand(trace: DecisionTrace) -> np.ndarray:
    """Goal-weighted request fractions per slot, (N, W)."""
    r = _n_resources(trace)
    return np.einsum("nwr,nr->nw", trace.job_features[:, :, :r], trace.goals)


# -- built-in heuristics ------------------------------------------------------


@register_eval_policy("fcfs", description="queue order: oldest window slot first")
def fcfs_policy(trace: DecisionTrace) -> np.ndarray:
    return np.broadcast_to(
        -np.arange(trace.window_size, dtype=float), trace.masks.shape
    ).copy()


@register_eval_policy("shortest_job", description="shortest user walltime first")
def shortest_job_policy(trace: DecisionTrace) -> np.ndarray:
    return -trace.feature("walltime")


@register_eval_policy("longest_queued", description="longest-waiting candidate first")
def longest_queued_policy(trace: DecisionTrace) -> np.ndarray:
    return trace.feature("queued")


@register_eval_policy(
    "smallest_demand", description="cheapest goal-weighted resource demand first"
)
def smallest_demand_policy(trace: DecisionTrace) -> np.ndarray:
    return -_demand(trace)


@register_eval_policy(
    "largest_demand", description="largest goal-weighted resource demand first"
)
def largest_demand_policy(trace: DecisionTrace) -> np.ndarray:
    return _demand(trace)


@register_eval_policy(
    "prior",
    description="the MRSch feasibility/age prior: fitting jobs by cheapest "
    "demand, else the longest waiter",
)
def prior_policy(trace: DecisionTrace) -> np.ndarray:
    fits = trace.feature("fits") > 0.5
    demand = _demand(trace)
    age_rank = np.broadcast_to(
        np.arange(trace.window_size, dtype=float), trace.masks.shape
    )
    return np.where(fits, 1.5 - demand, -1.5 - 0.1 * age_rank)


@register_eval_policy(
    "logged", description="the recorded policy itself (one-hot on its choices)"
)
def logged_policy(trace: DecisionTrace) -> np.ndarray:
    scores = np.zeros(trace.masks.shape)
    scores[np.arange(trace.n_decisions), trace.actions] = 1.0
    return scores


# -- DFP replay ---------------------------------------------------------------


class DFPReplayPolicy:
    """Replay a DFP agent over a trace via the batched scoring path.

    Reproduces the live :class:`~repro.core.mrsch.MRSchScheduler`
    decision rule — prior-guided when ``prior_weight > 0`` (prior ranks,
    peak-normalised DFP scores tie-break) and pure goal-weighted argmax
    otherwise — but in one
    :meth:`~repro.core.dfp.DFPAgent.action_scores_batch` forward pass
    over all N decisions. The batched path evaluates the full prediction
    tensor where the live loop uses the folded last-layer contraction,
    so scores match the recorded ones only up to float re-association
    (~1e-15 relative); exact score ties could in principle resolve
    differently, which is the documented fidelity tolerance.

    ``prior_weight``/``tiebreak`` default to the values stored in each
    trace's metadata, i.e. the recorded scheduler's own configuration.
    """

    def __init__(self, agent, prior_weight: float | None = None, tiebreak: float | None = None):
        self.agent = agent
        self.prior_weight = prior_weight
        self.tiebreak = tiebreak

    @classmethod
    def from_scheduler(cls, scheduler) -> "DFPReplayPolicy":
        """Wrap a live :class:`~repro.core.mrsch.MRSchScheduler`'s agent."""
        return cls(
            scheduler.agent,
            prior_weight=float(scheduler.prior_weight),
            tiebreak=float(scheduler._DFP_TIEBREAK_SCALE),
        )

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        trace: DecisionTrace,
        prior_weight: float | None = None,
        tiebreak: float | None = None,
        dfp_config=None,
    ) -> "DFPReplayPolicy":
        """Load an agent checkpoint sized from ``trace`` metadata."""
        from repro.core.dfp import DFPAgent, DFPConfig
        from repro.nn.serialize import load_params

        if dfp_config is None:
            meta = trace.meta
            dfp_config = DFPConfig(
                state_dim=int(meta["state_dim"]),
                n_measurements=int(meta["n_measurements"]),
                n_actions=int(meta["window_size"]),
                slot_dim=int(meta["slot_dim"]) if meta.get("slot_dim") else None,
            )
        agent = DFPAgent(dfp_config)
        agent.load_state_dict(load_params(path))
        return cls(agent, prior_weight=prior_weight, tiebreak=tiebreak)

    def __call__(self, trace: DecisionTrace) -> np.ndarray:
        raw = self.agent.action_scores_batch(
            trace.states, trace.measurements, trace.goals
        )
        pw = (
            self.prior_weight
            if self.prior_weight is not None
            else float(trace.meta.get("prior_weight", 0.0))
        )
        if pw <= 0.0:
            return raw
        tb = (
            self.tiebreak
            if self.tiebreak is not None
            else float(trace.meta.get("dfp_tiebreak", 0.0))
        )
        # Mirror MRSchScheduler.apply_decision row by row: normalise the
        # DFP contribution by the per-decision peak magnitude over valid
        # slots (rows with a zero peak stay unscaled, as live), then add
        # the weighted prior and mask invalid slots to -inf.
        peak = np.where(trace.masks, np.abs(raw), 0.0).max(axis=1)
        scale = np.divide(
            tb, peak, out=np.ones_like(peak), where=peak > 0.0
        )
        combined = pw * trace.priors + raw * scale[:, None]
        return np.where(trace.masks, combined, -np.inf)
