"""repro.eval — decision-trace capture and offline policy evaluation.

Every simulation is also a dataset: the
:class:`~repro.eval.recorder.DecisionTraceRecorder` captures each
scheduling decision (encoded state, candidate job features, measurement
and goal vectors, the chosen action) into a compact NPZ+JSONL
:class:`~repro.eval.trace.DecisionTrace`. Recorded traces replay through
any registered offline policy — including the batched DFP scoring path
(:meth:`~repro.core.dfp.DFPAgent.action_scores_batch`) — without the
event loop, so policies are compared on *identical* decision points
orders of magnitude faster than re-simulation.

Layers:

* :mod:`repro.eval.trace` — the trace record, NPZ persistence and the
  on-disk :class:`~repro.eval.trace.TraceStore` keyed by task hash;
* :mod:`repro.eval.recorder` — the simulator-side capture hook;
* :mod:`repro.eval.policies` — the offline policy registry
  (feature-based heuristics plus :class:`DFPReplayPolicy`);
* :mod:`repro.eval.evaluator` — batched replay producing agreement,
  rank-correlation and counterfactual-regret metrics;
* :mod:`repro.eval.stats` — paired bootstrap CIs and win/loss matrices
  over seeds, rendered as a structured comparison report.
"""

from repro.eval.evaluator import evaluate_traces, policy_choices
from repro.eval.policies import (
    DFPReplayPolicy,
    build_policies,
    get_eval_policy,
    list_eval_policies,
    register_eval_policy,
)
from repro.eval.recorder import DecisionTraceRecorder
from repro.eval.stats import ComparisonReport, paired_bootstrap, spearman
from repro.eval.trace import DecisionTrace, TraceStore

__all__ = [
    "DecisionTrace",
    "TraceStore",
    "DecisionTraceRecorder",
    "DFPReplayPolicy",
    "register_eval_policy",
    "get_eval_policy",
    "list_eval_policies",
    "build_policies",
    "evaluate_traces",
    "policy_choices",
    "ComparisonReport",
    "paired_bootstrap",
    "spearman",
]
