"""Statistical comparison of offline policies: bootstrap CIs, win/loss.

The evaluator produces per-unit (per seed group, falling back to per
trace or per decision) agreement values for every policy; this module
turns them into *paired* statistics — each bootstrap resample draws the
same units for both policies, so between-seed variance cancels exactly
as in a paired test — plus a win/loss matrix and a structured
:class:`ComparisonReport` with text and JSON renderings.

Everything is NumPy-only and deterministic: the bootstrap RNG is seeded
explicitly (``bootstrap_seed``), so a report is reproducible bit for
bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "spearman",
    "spearman_rows",
    "rankdata",
    "paired_bootstrap",
    "win_loss",
    "ComparisonReport",
]


def rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties shared, like scipy's ``rankdata``."""
    values = np.asarray(values, dtype=float)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation; NaN when either side is constant."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size < 2:
        return float("nan")
    ra, rb = rankdata(a), rankdata(b)
    sa, sb = ra.std(), rb.std()
    if sa == 0.0 or sb == 0.0:
        return float("nan")
    return float(((ra - ra.mean()) * (rb - rb.mean())).mean() / (sa * sb))


def _masked_rank_rows(scores: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Row-wise average ranks among the masked-valid entries, (N, W).

    Uses the counting identity ``rank = #less + (#equal + 1)/2`` so all
    rows rank in one broadcast pass (W is a window size — single
    digits — so the O(W²) comparison tensor is tiny). Invalid entries
    get rank 0 and must be excluded by the caller via ``masks``.
    """
    less = ((scores[:, None, :] < scores[:, :, None]) & masks[:, None, :]).sum(-1)
    equal = ((scores[:, None, :] == scores[:, :, None]) & masks[:, None, :]).sum(-1)
    return np.where(masks, less + 0.5 * (equal + 1), 0.0)


def spearman_rows(
    scores_a: np.ndarray, scores_b: np.ndarray, masks: np.ndarray
) -> np.ndarray:
    """Per-row Spearman correlation over valid slots, vectorised.

    ``scores_a``/``scores_b`` are (N, W) score matrices and ``masks``
    the (N, W) valid-slot mask; returns (N,) correlations with NaN for
    rows with fewer than two valid slots or a constant side —
    numerically identical to calling :func:`spearman` row by row, but
    one NumPy pass instead of N Python calls.
    """
    masks = np.asarray(masks, dtype=bool)
    ra = _masked_rank_rows(np.asarray(scores_a, dtype=float), masks)
    rb = _masked_rank_rows(np.asarray(scores_b, dtype=float), masks)
    n = masks.sum(axis=1)
    safe_n = np.maximum(n, 1)
    mean_a = ra.sum(axis=1) / safe_n
    mean_b = rb.sum(axis=1) / safe_n
    da = np.where(masks, ra - mean_a[:, None], 0.0)
    db = np.where(masks, rb - mean_b[:, None], 0.0)
    cov = (da * db).sum(axis=1)
    denom = np.sqrt((da * da).sum(axis=1) * (db * db).sum(axis=1))
    valid = (n >= 2) & (denom > 0.0)
    return np.where(valid, cov / np.where(valid, denom, 1.0), np.nan)


def paired_bootstrap(
    unit_values: np.ndarray,
    n_bootstrap: int = 1000,
    seed: int = 0,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Paired bootstrap CIs of all pairwise mean differences.

    ``unit_values`` is (U units, P policies): a per-unit statistic (e.g.
    agreement with the logged policy) for each policy. Returns three
    (P, P) matrices ``(mean_diff, ci_lo, ci_hi)`` for the row-minus-
    column difference, with the 95% percentile interval taken over
    ``n_bootstrap`` resamples of the *units* — the same resample indexes
    both policies, making the comparison paired.
    """
    unit_values = np.asarray(unit_values, dtype=float)
    if unit_values.ndim != 2:
        raise ValueError("unit_values must be (units, policies)")
    n_units, n_policies = unit_values.shape
    if n_units == 0:
        raise ValueError("paired_bootstrap needs at least one unit")
    mean_diff = unit_values.mean(axis=0)[:, None] - unit_values.mean(axis=0)[None, :]
    rng = np.random.default_rng(seed)
    # Resampled means, chunked over the bootstrap axis: with
    # decision-level units a store can hold tens of thousands of rows,
    # and materialising the full (B, U, P) gather would cost hundreds of
    # MB for nothing but a mean. ~8M gathered elements per chunk keeps
    # the transient under ~64 MB at any scale.
    boot_means = np.empty((n_bootstrap, n_policies))
    chunk = max(1, int(8_000_000 // max(n_units * n_policies, 1)))
    for start in range(0, n_bootstrap, chunk):
        stop = min(start + chunk, n_bootstrap)
        idx = rng.integers(0, n_units, size=(stop - start, n_units))
        boot_means[start:stop] = unit_values[idx].mean(axis=1)
    # (B, P) resampled means → (B, P, P) pairwise diffs.
    diffs = boot_means[:, :, None] - boot_means[:, None, :]
    ci_lo = np.percentile(diffs, 2.5, axis=0)
    ci_hi = np.percentile(diffs, 97.5, axis=0)
    return mean_diff, ci_lo, ci_hi


def win_loss(unit_values: np.ndarray) -> np.ndarray:
    """(P, P) counts of units where the row policy strictly beats the column."""
    unit_values = np.asarray(unit_values, dtype=float)
    return (unit_values[:, :, None] > unit_values[:, None, :]).sum(axis=0)


@dataclass
class ComparisonReport:
    """Structured outcome of one offline policy comparison.

    All pairwise matrices are indexed ``[row policy][column policy]`` in
    :attr:`policies` order. ``regret[q][p]`` is the mean counterfactual
    score regret of following policy *p*'s choices as scored by policy
    *q* (diagonal zero by construction; decisions the scoring policy
    cannot score — NaN at the compared slot — are excluded from its
    mean).
    """

    policies: tuple[str, ...]
    n_traces: int
    n_decisions: int
    #: fraction of decisions where each policy picks the logged action
    agreement: dict[str, float]
    #: fraction of decisions where two policies pick the same action
    pairwise_agreement: np.ndarray
    #: mean per-decision Spearman correlation of valid-slot scores
    rank_correlation: np.ndarray
    #: mean counterfactual score regret, scorer (row) × actor (column)
    regret: np.ndarray
    #: row − column mean agreement difference and its 95% bootstrap CI
    mean_diff: np.ndarray
    ci_lo: np.ndarray
    ci_hi: np.ndarray
    #: units where the row policy's agreement strictly beats the column's
    wins: np.ndarray
    #: what one bootstrap unit was: "seed", "trace" or "decision"
    unit: str = "trace"
    n_units: int = 0
    n_bootstrap: int = 0
    bootstrap_seed: int = 0
    #: per-trace breakdown: {trace key: {policy: agreement}}
    per_trace: dict = field(default_factory=dict)

    # -- rendering ---------------------------------------------------------

    def _matrix_rows(self, matrix: np.ndarray) -> dict:
        return {
            name: [float(v) for v in row]
            for name, row in zip(self.policies, np.asarray(matrix))
        }

    def summary(self) -> str:
        """Aligned text tables (the ``repro eval`` output)."""
        from repro.experiments.report import format_table

        cols = list(self.policies)
        blocks = [
            format_table(
                f"Agreement with logged actions "
                f"({self.n_decisions} decisions, {self.n_traces} trace(s))",
                ["agreement"],
                {name: [self.agreement[name]] for name in self.policies},
            ),
            format_table(
                "Pairwise choice agreement", cols,
                self._matrix_rows(self.pairwise_agreement),
            ),
            format_table(
                "Mean Spearman rank correlation of scores", cols,
                self._matrix_rows(self.rank_correlation),
            ),
            format_table(
                "Counterfactual score regret (row scores column's choices)",
                cols,
                self._matrix_rows(self.regret),
            ),
            format_table(
                f"Paired bootstrap Δagreement, row − column "
                f"(95% CI lower; {self.n_bootstrap} resamples over "
                f"{self.n_units} {self.unit}(s))",
                cols,
                self._matrix_rows(self.ci_lo),
            ),
            format_table(
                "Wins (units where row strictly beats column)", cols,
                {
                    name: [int(v) for v in row]
                    for name, row in zip(self.policies, self.wins)
                },
            ),
        ]
        return "\n\n".join(blocks)

    def to_json_dict(self) -> dict:
        def matrix(m: np.ndarray) -> dict:
            return {
                a: {b: _json_float(v) for b, v in zip(self.policies, row)}
                for a, row in zip(self.policies, np.asarray(m))
            }

        return {
            "policies": list(self.policies),
            "n_traces": self.n_traces,
            "n_decisions": self.n_decisions,
            "agreement": {k: _json_float(v) for k, v in self.agreement.items()},
            "pairwise_agreement": matrix(self.pairwise_agreement),
            "rank_correlation": matrix(self.rank_correlation),
            "regret": matrix(self.regret),
            "bootstrap": {
                "unit": self.unit,
                "n_units": self.n_units,
                "n_bootstrap": self.n_bootstrap,
                "seed": self.bootstrap_seed,
                "mean_diff": matrix(self.mean_diff),
                "ci_lo": matrix(self.ci_lo),
                "ci_hi": matrix(self.ci_hi),
            },
            "wins": {
                a: {b: int(v) for b, v in zip(self.policies, row)}
                for a, row in zip(self.policies, self.wins)
            },
            "per_trace": self.per_trace,
        }


def _json_float(value) -> "float | None":
    """NaN → None so the report serialises as strict JSON."""
    value = float(value)
    return None if np.isnan(value) else value
