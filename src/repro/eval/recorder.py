"""Simulator-side capture of scheduling decisions.

A :class:`DecisionTraceRecorder` attaches to any
:class:`~repro.sched.base.Scheduler` via its ``decision_recorder``
attribute; the shared §III-C selection loop then reports every selection
(fitting starts *and* the reservation pick). Policies that already
compute DFP inputs expose them through
:meth:`~repro.sched.base.Scheduler.decision_features` so the trace
stores the policy's *own* state/goal/prior/scores bit-for-bit; for
heuristics the recorder derives canonical features itself (the §III-A
encoding, the live measurement vector and the Eq. 1 dynamic goal), so
traces recorded from any policy are scoreable by any other.

Recording is strictly passive: it consumes no RNG and mutates no
scheduler or simulator state, so a recorded replay produces bit-identical
metrics to an unrecorded one.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding import StateEncoder
from repro.core.goal import goal_vector
from repro.core.measurements import measurement_vector
from repro.eval.trace import EXTRA_FEATURES, DecisionTrace

__all__ = ["DecisionTraceRecorder"]


class DecisionTraceRecorder:
    """Collects per-decision columns during one simulated replay.

    Usage::

        recorder = DecisionTraceRecorder()
        recorder.start(method="mrsch", workload="S3", seed=7, task_key=key)
        scheduler.decision_recorder = recorder
        Simulator(system, scheduler).run(jobs)
        trace = recorder.finish()
    """

    def __init__(self, time_scale: float = 4 * 3600.0) -> None:
        self.time_scale = time_scale
        self._encoder: StateEncoder | None = None
        self._context: dict = {}
        self._reset_buffers()

    def _reset_buffers(self) -> None:
        self._states: list[np.ndarray] = []
        self._measurements: list[np.ndarray] = []
        self._goals: list[np.ndarray] = []
        self._masks: list[np.ndarray] = []
        self._priors: list[np.ndarray] = []
        self._scores: list[np.ndarray | None] = []
        self._actions: list[int] = []
        self._times: list[float] = []
        self._job_ids: list[np.ndarray] = []
        self._job_features: list[np.ndarray] = []
        self._window_size: int | None = None
        self._policy_meta: dict = {}

    # -- lifecycle ---------------------------------------------------------

    def start(
        self,
        *,
        method: str = "",
        workload: str = "",
        seed: int | None = None,
        task_key: str = "",
    ) -> None:
        """Begin a fresh trace segment (one per evaluated workload)."""
        self._reset_buffers()
        self._context = {
            "method": method,
            "workload": workload,
            "seed": seed,
            "task_key": task_key,
        }

    @property
    def n_decisions(self) -> int:
        return len(self._actions)

    # -- capture -----------------------------------------------------------

    def _generic_encoder(self, system, window_size: int) -> StateEncoder:
        if (
            self._encoder is None
            or self._encoder.system is not system
            or self._encoder.window_size != window_size
        ):
            self._encoder = StateEncoder(
                system, window_size=window_size, time_scale=self.time_scale
            )
        return self._encoder

    def on_decision(self, scheduler, window, job, ctx) -> None:
        """Record one selection; called by the scheduler base loop."""
        w = scheduler.window_size
        if self._window_size is None:
            self._window_size = w
            self._policy_meta = {
                "prior_weight": float(getattr(scheduler, "prior_weight", 0.0)),
                "dfp_tiebreak": float(
                    getattr(scheduler, "_DFP_TIEBREAK_SCALE", 0.0)
                ),
                "scheduler": getattr(scheduler, "name", type(scheduler).__name__),
            }
        elif w != self._window_size:
            raise ValueError(
                f"one trace cannot mix window sizes ({self._window_size} vs {w})"
            )

        action = window.index(job)
        features = scheduler.decision_features(window, ctx)
        if features is None:
            encoder = self._generic_encoder(ctx.system, w)
            state = encoder.encode(window, ctx.pool, ctx.now)
            measurement = measurement_vector(ctx.pool)
            goal = goal_vector(ctx.queue, ctx.running, ctx.system, ctx.now)
            prior = scores = None
            slot_dim = encoder.job_dim
        else:
            state = features["state"]
            measurement = features["measurement"]
            goal = features["goal"]
            prior = features.get("prior")
            scores = features.get("scores")
            slot_dim = features.get("slot_dim", 0)
        # The per-slot feature width inside the state vector — what a
        # replayed DFP agent needs to reconstruct its shared-head config.
        self._policy_meta.setdefault("slot_dim", int(slot_dim))

        mask = np.zeros(w, dtype=bool)
        mask[: min(len(window), w)] = True

        names = ctx.system.names
        caps = np.array([ctx.system.capacity(n) for n in names], dtype=float)
        n_feats = len(names) + len(EXTRA_FEATURES)
        job_feats = np.zeros((w, n_feats))
        job_ids = np.full(w, -1, dtype=np.int64)
        for slot, cand in enumerate(window[:w]):
            req = np.array([cand.request(n) for n in names], dtype=float)
            job_feats[slot, : len(names)] = req / caps
            job_feats[slot, len(names)] = cand.walltime
            job_feats[slot, len(names) + 1] = ctx.now - cand.submit_time
            job_feats[slot, len(names) + 2] = float(ctx.pool.can_fit(cand))
            job_ids[slot] = cand.job_id

        self._states.append(np.asarray(state, dtype=float).copy())
        self._measurements.append(np.asarray(measurement, dtype=float).copy())
        self._goals.append(np.asarray(goal, dtype=float).copy())
        self._masks.append(mask)
        self._priors.append(
            np.zeros(w) if prior is None else np.asarray(prior, dtype=float).copy()
        )
        self._scores.append(
            None if scores is None else np.asarray(scores, dtype=float).copy()
        )
        self._actions.append(action)
        self._times.append(float(ctx.now))
        self._job_ids.append(job_ids)
        self._job_features.append(job_feats)
        if "resources" not in self._context:
            self._context["resources"] = list(names)
            self._context["capacities"] = [float(c) for c in caps]
            self._context["feature_names"] = [
                *(f"req_frac:{n}" for n in names),
                *EXTRA_FEATURES,
            ]

    # -- finalisation ------------------------------------------------------

    def finish(self, **extra_meta) -> DecisionTrace:
        """Assemble the buffered decisions into a :class:`DecisionTrace`."""
        if not self._actions:
            raise ValueError(
                "no decisions recorded; attach the recorder as "
                "scheduler.decision_recorder before Simulator.run"
            )
        w = self._window_size or 0
        scores = np.vstack(
            [np.full(w, np.nan) if s is None else s for s in self._scores]
        )
        meta = {
            **self._context,
            **self._policy_meta,
            "state_dim": int(self._states[0].shape[0]),
            "n_measurements": int(self._measurements[0].shape[0]),
            "window_size": int(w),
            **extra_meta,
        }
        trace = DecisionTrace(
            states=np.vstack(self._states),
            measurements=np.vstack(self._measurements),
            goals=np.vstack(self._goals),
            masks=np.vstack(self._masks),
            priors=np.vstack(self._priors),
            scores=scores,
            actions=np.asarray(self._actions, dtype=np.int64),
            times=np.asarray(self._times, dtype=float),
            job_ids=np.vstack(self._job_ids),
            job_features=np.stack(self._job_features),
            meta=meta,
        )
        self._reset_buffers()
        return trace
