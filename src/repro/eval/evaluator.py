"""Offline replay of recorded traces through policies, plus metrics.

:func:`evaluate_traces` is the subsystem's workhorse: every policy
scores every recorded decision in one vectorised pass per trace (for
DFP agents that is the batched
:meth:`~repro.core.dfp.DFPAgent.action_scores_batch` path), choices are
taken by masked argmax, and the per-decision results aggregate into

* **agreement** with the logged actions and between policy pairs,
* **rank correlation** (mean per-decision Spearman over valid slots),
* **counterfactual score regret** — how much score policy *q* believes
  is lost by following policy *p*'s choices,

wrapped with the paired-bootstrap statistics of
:mod:`repro.eval.stats` into a :class:`~repro.eval.stats.ComparisonReport`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.eval.policies import build_policies
from repro.eval.stats import ComparisonReport, paired_bootstrap, spearman_rows, win_loss
from repro.eval.trace import DecisionTrace

__all__ = ["policy_choices", "evaluate_traces"]


def policy_choices(trace: DecisionTrace, scores: np.ndarray) -> np.ndarray:
    """Masked argmax over valid slots; NaN scores count as unavailable."""
    masked = np.where(trace.masks, scores, -np.inf)
    masked = np.where(np.isnan(masked), -np.inf, masked)
    return masked.argmax(axis=1)


def _per_decision_regret(
    scorer_scores: np.ndarray, actor_choices: np.ndarray, masks: np.ndarray
) -> np.ndarray:
    """(N,) regret of the actor's choices under the scorer's valuations.

    NaN scores count as unavailable (matching :func:`policy_choices`);
    decisions where the scorer has no finite score for the taken slot —
    or no finite score at all — return NaN and are excluded from the
    mean by the caller, instead of poisoning the whole regret row.
    """
    valid = np.where(masks & np.isfinite(scorer_scores), scorer_scores, -np.inf)
    best = valid.max(axis=1)
    taken = valid[np.arange(valid.shape[0]), actor_choices]
    defined = np.isfinite(best) & np.isfinite(taken)
    return np.subtract(
        best, taken, out=np.full(best.shape, np.nan), where=defined
    )


def evaluate_traces(
    traces: "Iterable[DecisionTrace]",
    policies: "Sequence[str] | Mapping[str, object]",
    n_bootstrap: int = 1000,
    bootstrap_seed: int = 0,
) -> ComparisonReport:
    """Compare ``policies`` on the shared decision points of ``traces``.

    ``policies`` is a list of registered policy names or a mapping
    ``{label: scorer}`` (mix registered names with e.g. a
    :class:`~repro.eval.policies.DFPReplayPolicy` instance). The paired
    bootstrap resamples seeds when the traces span several, falling back
    to traces, then decisions — so a single-trace comparison still gets
    a defensible interval.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("evaluate_traces needs at least one trace")
    scorers = build_policies(policies)
    if not scorers:
        raise ValueError("evaluate_traces needs at least one policy")
    names = tuple(scorers)
    n_pol = len(names)

    total = sum(t.n_decisions for t in traces)
    match_counts = np.zeros(n_pol)
    pair_counts = np.zeros((n_pol, n_pol))
    regret_sums = np.zeros((n_pol, n_pol))
    regret_ns = np.zeros((n_pol, n_pol))
    rank_sums = np.zeros((n_pol, n_pol))
    rank_ns = np.zeros((n_pol, n_pol))
    trace_matches = np.zeros((len(traces), n_pol))
    trace_sizes = np.zeros(len(traces))
    decision_matches: list[np.ndarray] = []
    per_trace: dict = {}

    for t_idx, trace in enumerate(traces):
        scores = {}
        for name in names:
            s = np.asarray(scorers[name](trace), dtype=float)
            if s.shape != trace.masks.shape:
                raise ValueError(
                    f"policy {name!r} returned shape {s.shape}, "
                    f"expected {trace.masks.shape}"
                )
            scores[name] = s
        choices = np.stack(
            [policy_choices(trace, scores[name]) for name in names], axis=1
        )  # (N, P)

        matches = choices == trace.actions[:, None]
        decision_matches.append(matches.astype(float))
        trace_matches[t_idx] = matches.sum(axis=0)
        trace_sizes[t_idx] = trace.n_decisions
        match_counts += matches.sum(axis=0)
        pair_counts += (choices[:, :, None] == choices[:, None, :]).sum(axis=0)

        for qi, q in enumerate(names):
            for pi in range(n_pol):
                regrets = _per_decision_regret(
                    scores[q], choices[:, pi], trace.masks
                )
                defined = np.isfinite(regrets)
                regret_sums[qi, pi] += regrets[defined].sum()
                regret_ns[qi, pi] += defined.sum()
            for pi in range(qi + 1, n_pol):
                # One vectorised pass per policy pair; NaN rows (fewer
                # than two valid slots, constant scores) drop out.
                rhos = spearman_rows(scores[q], scores[names[pi]], trace.masks)
                finite = np.isfinite(rhos)
                rank_sums[qi, pi] += rhos[finite].sum()
                rank_sums[pi, qi] += rhos[finite].sum()
                rank_ns[qi, pi] += finite.sum()
                rank_ns[pi, qi] += finite.sum()

        label = trace.key if trace.meta.get("task_key") else f"trace{t_idx}"
        per_trace[label] = {
            "method": trace.meta.get("method", ""),
            "seed": trace.meta.get("seed"),
            "n_decisions": trace.n_decisions,
            "agreement": {
                name: float(trace_matches[t_idx, j] / max(trace.n_decisions, 1))
                for j, name in enumerate(names)
            },
        }

    rank_corr = np.divide(
        rank_sums, rank_ns, out=np.full((n_pol, n_pol), np.nan), where=rank_ns > 0
    )
    np.fill_diagonal(rank_corr, 1.0)

    # -- bootstrap units: seeds > traces > decisions ----------------------
    seeds = [t.meta.get("seed") for t in traces]
    groups: dict = {}
    for idx, seed in enumerate(seeds):
        groups.setdefault(seed, []).append(idx)
    if len(groups) > 1:
        unit = "seed"
        unit_values = np.vstack(
            [
                trace_matches[idxs].sum(axis=0) / trace_sizes[idxs].sum()
                for idxs in groups.values()
            ]
        )
    elif len(traces) > 1:
        unit = "trace"
        unit_values = trace_matches / trace_sizes[:, None]
    else:
        unit = "decision"
        unit_values = decision_matches[0]

    mean_diff, ci_lo, ci_hi = paired_bootstrap(
        unit_values, n_bootstrap=n_bootstrap, seed=bootstrap_seed
    )

    return ComparisonReport(
        policies=names,
        n_traces=len(traces),
        n_decisions=int(total),
        agreement={
            name: float(match_counts[j] / max(total, 1))
            for j, name in enumerate(names)
        },
        pairwise_agreement=pair_counts / max(total, 1),
        rank_correlation=rank_corr,
        regret=np.divide(
            regret_sums,
            regret_ns,
            out=np.full((n_pol, n_pol), np.nan),
            where=regret_ns > 0,
        ),
        mean_diff=mean_diff,
        ci_lo=ci_lo,
        ci_hi=ci_hi,
        wins=win_loss(unit_values),
        unit=unit,
        n_units=int(unit_values.shape[0]),
        n_bootstrap=n_bootstrap,
        bootstrap_seed=bootstrap_seed,
        per_trace=per_trace,
    )
