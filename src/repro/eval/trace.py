"""Decision-trace records and their on-disk store.

A :class:`DecisionTrace` is the column-oriented record of every
scheduling decision one simulated replay made: the encoded DFP state,
the measurement and goal vectors, the feasibility/age prior, the live
decision scores (where the policy produced any), the valid-slot mask,
per-slot candidate job features, and the chosen action. Stored as
arrays, a whole trace replays through a policy in one batched forward
pass — no event loop.

Persistence is NPZ+JSONL: each trace is one compressed ``.npz`` (arrays
plus a JSON metadata string), and the :class:`TraceStore` directory
keeps an append-only ``index.jsonl`` with one summary line per recorded
trace. Traces are keyed ``<task_key>_<workload>`` — the same config
hash the experiment engine uses for its result cache — so a trace is
exactly as reusable (and exactly as invalidated by config changes) as
the metrics it was recorded alongside.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["DecisionTrace", "TraceStore", "trace_key"]

#: bump when the array layout or metadata contract changes incompatibly
TRACE_SCHEMA_VERSION = 1

#: per-slot candidate features appended after the R request fractions
EXTRA_FEATURES = ("walltime", "queued", "fits")

#: float arrays narrowed to float32 by compact storage. ``times`` stays
#: float64 (the simulation clock spans months at second resolution —
#: beyond float32's 24-bit mantissa); ids/masks/actions are not floats.
_COMPACT_ARRAYS = (
    "states",
    "measurements",
    "goals",
    "priors",
    "scores",
    "job_features",
)


def trace_key(task_key: str, workload: str) -> str:
    """The store key of one (task, workload) trace."""
    return f"{task_key}_{workload}"


@dataclass
class DecisionTrace:
    """One replay's scheduling decisions, column-oriented.

    Shapes (``N`` decisions, ``W`` window slots, ``S`` state dim,
    ``M`` measurements, ``F`` job features):

    * ``states`` (N, S) — encoded §III-A state vectors
    * ``measurements`` / ``goals`` (N, M)
    * ``masks`` (N, W) bool — valid (populated) window slots
    * ``priors`` (N, W) — raw feasibility/age prior (zeros when the
      recorded policy used none)
    * ``scores`` (N, W) — the live policy's final decision scores;
      ``NaN`` rows where the policy exposed none (heuristics, ε-greedy
      exploration steps)
    * ``actions`` (N,) — chosen window slot
    * ``times`` (N,) — simulation clock at each decision
    * ``job_ids`` (N, W) — candidate job ids, ``-1`` padding
    * ``job_features`` (N, W, F) — per-slot candidate features: the R
      per-resource request fractions, then ``walltime``, ``queued``
      seconds and a ``fits`` flag (see ``meta["feature_names"]``)
    """

    states: np.ndarray
    measurements: np.ndarray
    goals: np.ndarray
    masks: np.ndarray
    priors: np.ndarray
    scores: np.ndarray
    actions: np.ndarray
    times: np.ndarray
    job_ids: np.ndarray
    job_features: np.ndarray
    meta: dict = field(default_factory=dict)

    _ARRAYS = (
        "states",
        "measurements",
        "goals",
        "masks",
        "priors",
        "scores",
        "actions",
        "times",
        "job_ids",
        "job_features",
    )

    def __post_init__(self) -> None:
        n = self.states.shape[0]
        for name in self._ARRAYS:
            arr = getattr(self, name)
            if arr.shape[0] != n:
                raise ValueError(
                    f"trace arrays disagree on decision count: "
                    f"states has {n}, {name} has {arr.shape[0]}"
                )
        if self.actions.size and (
            (self.actions < 0).any() or (self.actions >= self.window_size).any()
        ):
            raise ValueError("trace actions out of window range")

    # -- shape helpers -----------------------------------------------------

    @property
    def n_decisions(self) -> int:
        return int(self.states.shape[0])

    @property
    def window_size(self) -> int:
        return int(self.masks.shape[1])

    @property
    def key(self) -> str:
        return trace_key(self.meta.get("task_key", ""), self.meta.get("workload", ""))

    def feature_index(self, name: str) -> int:
        """Column of ``name`` in ``job_features`` (see meta)."""
        names = list(self.meta.get("feature_names", ()))
        try:
            return names.index(name)
        except ValueError:
            raise KeyError(
                f"trace has no job feature {name!r}; available: {names}"
            ) from None

    def feature(self, name: str) -> np.ndarray:
        """The (N, W) slice of one per-slot job feature."""
        return self.job_features[:, :, self.feature_index(name)]

    # -- persistence -------------------------------------------------------

    def save(self, path: str | os.PathLike, compact: bool = False) -> None:
        """Write the trace as one compressed NPZ (atomic replace).

        ``compact=True`` stores the float state/score/feature arrays as
        float32 — roughly half the bytes of a paper-scale store — at the
        cost of ~1e-7 relative rounding on replayed scores (decision
        times keep full precision). :meth:`load` widens the arrays back
        to float64, so downstream evaluation code sees one dtype either
        way; ``meta["compact"]`` records which fidelity was stored.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {name: getattr(self, name) for name in self._ARRAYS}
        if compact:
            for name in _COMPACT_ARRAYS:
                payload[name] = np.asarray(payload[name], dtype=np.float32)
        meta = dict(self.meta)
        # Authoritative per-save, overriding any stale flag a reloaded
        # trace may carry in its metadata.
        meta["schema"] = TRACE_SCHEMA_VERSION
        meta["compact"] = bool(compact)
        payload["meta"] = np.array(json.dumps(meta, sort_keys=True))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: str | os.PathLike) -> "DecisionTrace":
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            # Storage-level details, not trace semantics: drop them so a
            # save → load → save round trip is fidelity-transparent.
            meta.pop("schema", None)
            meta.pop("compact", None)
            arrays = {name: data[name] for name in cls._ARRAYS}
            for name in _COMPACT_ARRAYS:
                # Compact stores come back widened so evaluation code
                # handles exactly one dtype.
                if arrays[name].dtype == np.float32:
                    arrays[name] = arrays[name].astype(np.float64)
            return cls(**arrays, meta=meta)


class TraceStore:
    """A directory of decision traces keyed by ``<task_key>_<workload>``.

    Writes are atomic (temp file + ``os.replace``) so concurrent worker
    processes can record into one store; every successful ``put`` also
    appends a one-line JSON summary to ``index.jsonl`` for cheap
    inspection without decompressing any NPZ. The index is strictly
    append-only (rewriting it would break concurrent recording), so a
    re-recorded key appears once per recording — when reading it, the
    last line per key wins; :meth:`keys`/:meth:`load_all` consult the
    NPZ files themselves and are always exact.
    """

    def __init__(self, trace_dir: str | os.PathLike, compact: bool = False) -> None:
        # The directory is created lazily on the first put() so that
        # read-only use (lookups, `repro eval` on a mistyped path) never
        # litters the filesystem with empty stores.
        self.trace_dir = Path(trace_dir)
        #: store new traces as float32 (see :meth:`DecisionTrace.save`);
        #: reading is dtype-agnostic, so compact and full-precision
        #: traces can share one directory.
        self.compact = bool(compact)

    def _path(self, key: str) -> Path:
        return self.trace_dir / f"{key}.npz"

    @property
    def index_path(self) -> Path:
        return self.trace_dir / "index.jsonl"

    def put(self, trace: DecisionTrace) -> str:
        """Persist ``trace``; returns its store key."""
        key = trace.key
        if not trace.meta.get("task_key") or not trace.meta.get("workload"):
            raise ValueError(
                "trace metadata must carry 'task_key' and 'workload' to be stored"
            )
        self.trace_dir.mkdir(parents=True, exist_ok=True)
        trace.save(self._path(key), compact=self.compact)
        entry = {
            "key": key,
            "task_key": trace.meta.get("task_key"),
            "workload": trace.meta.get("workload"),
            "method": trace.meta.get("method", ""),
            "seed": trace.meta.get("seed"),
            "n_decisions": trace.n_decisions,
            "file": f"{key}.npz",
        }
        with open(self.index_path, "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        return key

    def get(self, task_key: str, workload: str) -> DecisionTrace | None:
        """Load one trace, or None when absent."""
        path = self._path(trace_key(task_key, workload))
        if not path.exists():
            return None
        return DecisionTrace.load(path)

    def has(self, key: str) -> bool:
        return self._path(key).exists()

    def stored_compact(self, key: str) -> bool | None:
        """Whether the persisted trace was saved compact (None = absent).

        Reads only the NPZ's metadata member — cheap enough for the
        experiment engine to verify storage *fidelity*, not just
        existence, before honouring a cached result.
        """
        path = self._path(key)
        if not path.exists():
            return None
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
        return bool(meta.get("compact", False))

    def keys(self) -> tuple[str, ...]:
        """Store keys of every persisted trace, sorted."""
        return tuple(sorted(p.stem for p in self.trace_dir.glob("*.npz")))

    def load_all(self, keys: "tuple[str, ...] | list[str] | None" = None) -> list[DecisionTrace]:
        """Load traces for ``keys`` (default: everything in the store)."""
        if keys is None:
            keys = self.keys()
        missing = [k for k in keys if not self.has(k)]
        if missing:
            raise FileNotFoundError(
                f"trace store {self.trace_dir} is missing {missing[:5]}"
            )
        return [DecisionTrace.load(self._path(k)) for k in keys]

    def __len__(self) -> int:
        return sum(1 for _ in self.trace_dir.glob("*.npz"))

    def __contains__(self, key: str) -> bool:
        return self.has(key)
