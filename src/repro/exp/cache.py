"""On-disk result cache keyed by task config hash.

Layout: one JSON file per task under the cache directory,
``<cache_dir>/<key>.json``, holding a :class:`TaskResult` rendered by
:meth:`TaskResult.to_json_dict`. Writes go through a temp file +
``os.replace`` so concurrent workers (or interrupted runs) can never
leave a torn entry — readers either see a complete result or nothing.

Because the key hashes the *entire* task (method, workloads, seed,
config, training flags), a cache hit is exact: same inputs, same
deterministic pipeline, same metrics. Changing any knob changes the key.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.exp.records import TaskResult

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of per-task JSON result files."""

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> TaskResult | None:
        """Load a cached result, or None on miss/corruption."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            result = TaskResult.from_json_dict(data)
        except (json.JSONDecodeError, KeyError, ValueError):
            # A torn or stale-schema entry counts as a miss; the task
            # reruns and the entry is rewritten.
            return None
        result.source = "cache"
        return result

    def put(self, result: TaskResult) -> None:
        """Atomically persist ``result`` under its key."""
        payload = json.dumps(result.to_json_dict(), sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, self._path(result.key))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    def clear(self) -> None:
        for path in self.cache_dir.glob("*.json"):
            path.unlink()
