"""Task execution: the one function every runner mode goes through.

:func:`execute_task` is deliberately the *only* code path that turns an
:class:`ExperimentTask` into metrics — the serial loop and the process
pool both call it, so "parallel equals serial" holds by construction
rather than by careful bookkeeping. It is a pure function of the task:
every RNG stream inside derives from ``task.seed`` (via the library's
``SeedSequence``-based spawning), so re-running a task anywhere, in any
order, on any worker reproduces bit-identical metric values.
"""

from __future__ import annotations

import dataclasses
import time

from repro.exp.records import ExperimentTask, TaskResult

__all__ = ["execute_task"]


def execute_task(task: ExperimentTask) -> TaskResult:
    """Run one grid cell: build, (optionally) train, evaluate in order.

    Mirrors the serial harness flow exactly — one scheduler instance is
    created with the cell seed, trained once if requested, then replayed
    over ``task.workloads`` in order, so stateful policies (the GA's RNG
    stream, a trained agent) see the same history as a serial sweep.
    """
    # Imported lazily: repro.experiments.harness imports the runner, and
    # worker processes should only pay for what the task touches.
    from repro.experiments.harness import make_method, prepare_base_trace, train_method
    from repro.sim.simulator import Simulator
    from repro.workload.suites import build_case_study_workload, build_workload, powered_system

    t0 = time.perf_counter()
    config = task.config
    if task.seed != config.seed:
        config = dataclasses.replace(config, seed=task.seed)

    base = prepare_base_trace(config)
    system = config.system()
    # Every case-study workload extends the system identically (§V-E).
    eval_system = powered_system(system) if task.case_study else system

    sched = make_method(task.method, eval_system, config, **dict(task.extra))
    if task.train:
        train_method(sched, eval_system, config)

    metrics = {}
    for workload in task.workloads:
        if task.case_study:
            jobs, _ = build_case_study_workload(workload, base, system, seed=config.seed)
        else:
            jobs = build_workload(workload, base, eval_system, seed=config.seed)
        metrics[workload] = Simulator(eval_system, sched).run(jobs).metrics

    return TaskResult(
        key=task.key(),
        method=task.method,
        seed=task.seed,
        workloads=task.workloads,
        metrics=metrics,
        wall_time=time.perf_counter() - t0,
        label=task.label,
    )
