"""Task execution: the one function every runner mode goes through.

:func:`execute_task` is deliberately the *only* code path that turns an
:class:`ExperimentTask` into metrics — the serial loop and the process
pool both call it, so "parallel equals serial" holds by construction
rather than by careful bookkeeping. It is a pure function of the task:
every RNG stream inside derives from ``task.seed`` (via the library's
``SeedSequence``-based spawning), so re-running a task anywhere, in any
order, on any worker reproduces bit-identical metric values.

Tasks with ``capture_traces`` additionally record every scheduling
decision of the evaluation replays into the
:class:`~repro.eval.trace.TraceStore` at ``trace_dir`` (recording is
passive — it consumes no RNG, so metrics stay bit-identical to an
unrecorded run); the resulting store keys travel on the
:class:`TaskResult` so the cache and checkpoint layers can verify the
trace artifacts exist before recalling a result.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import time

from repro.exp.records import ExperimentTask, TaskResult
from repro.obs import runtime as _obs_runtime

__all__ = ["execute_task"]


def execute_task(
    task: ExperimentTask,
    trace_dir: "str | os.PathLike | None" = None,
    trace_compact: bool = False,
    batch_episodes: int = 1,
) -> TaskResult:
    """Run one grid cell: build, (optionally) train, evaluate in order.

    Mirrors the serial harness flow exactly — one scheduler instance is
    created with the cell seed, trained once if requested, then replayed
    over ``task.workloads`` in order, so stateful policies (the GA's RNG
    stream, a trained agent) see the same history as a serial sweep.

    ``trace_compact`` stores recorded decision traces as float32 (see
    :meth:`repro.eval.trace.DecisionTrace.save`); it affects storage
    fidelity only, never the simulated decisions.

    ``batch_episodes > 1`` evaluates the cell's workloads in lockstep
    groups of that size through
    :class:`~repro.sim.batched.BatchedSimulator`, one batched network
    call per macro-step instead of one per decision. This is an
    execution knob, not part of the task identity: it is only engaged
    for policies that declare lockstep cloning safe
    (:meth:`~repro.sched.base.Scheduler.lockstep_clone`), whose
    evaluation replays are RNG-free — every metric value is identical
    to the sequential path, so cache keys and checkpoints are shared
    either way. Trace-capturing cells always run sequentially (the
    trace recorder is a per-scheduler attachment).
    """
    t0 = time.perf_counter()
    config = task.config
    if task.seed != config.seed:
        config = dataclasses.replace(config, seed=task.seed)

    task_key = task.key()
    # One cell span (build → train → evaluate) with the cell key bound
    # into every event/log record emitted inside — including those from
    # a pool worker, whose fork-aware sink files this span lands in.
    obs_session = _obs_runtime.session
    _cell_obs = contextlib.ExitStack()
    if obs_session is not None:
        from repro.obs.events import bind

        _cell_obs.enter_context(bind(key=task_key, method=task.method, seed=task.seed))
        _cell_obs.enter_context(
            obs_session.span(
                "cell",
                key=task_key,
                method=task.method,
                seed=task.seed,
                workloads=len(task.workloads),
                train=task.train,
            )
        )
    with _cell_obs:
        result = _execute_task_body(
            task, config, task_key, obs_session, t0,
            trace_dir, trace_compact, batch_episodes,
        )
    if obs_session is not None:
        obs_session.metrics.counter("cells.executed").inc()
        obs_session.metrics.histogram("cell.wall_s").observe(result.wall_time)
        # Persist this process's snapshot per cell: pool children have no
        # other flush point before the pool tears them down.
        obs_session.write_metrics()
    return result


def _execute_task_body(
    task: ExperimentTask,
    config,
    task_key: str,
    obs_session,
    t0: float,
    trace_dir: "str | os.PathLike | None",
    trace_compact: bool,
    batch_episodes: int,
) -> TaskResult:
    # Imported lazily: repro.experiments.harness imports the runner, and
    # worker processes should only pay for what the task touches.
    from repro.experiments.harness import make_method, prepare_base_trace, train_method
    from repro.sim.simulator import Simulator
    from repro.workload.suites import build_case_study_workload, build_workload, powered_system

    def workload_span(name: str):
        if obs_session is None:
            return contextlib.nullcontext()
        return obs_session.span("workload", workload=name)

    base = prepare_base_trace(config)
    system = config.system()
    # Every case-study workload extends the system identically (§V-E).
    eval_system = powered_system(system) if task.case_study else system

    sched = make_method(task.method, eval_system, config, **dict(task.extra))
    if task.train:
        with (
            obs_session.span("train", method=task.method)
            if obs_session is not None
            else contextlib.nullcontext()
        ):
            train_method(sched, eval_system, config)

    recorder = store = None
    if task.capture_traces:
        if trace_dir is None:
            raise ValueError(
                f"task {task.key()} captures traces but no trace_dir was given"
            )
        from repro.eval.recorder import DecisionTraceRecorder
        from repro.eval.trace import TraceStore

        store = TraceStore(trace_dir, compact=trace_compact)
        recorder = DecisionTraceRecorder()
        # Attached after training so the curriculum episodes (ε-greedy,
        # exploration-heavy) never pollute the evaluation traces.
        sched.decision_recorder = recorder

    trace_keys: list[str] = []
    metrics = {}

    def build_jobs(workload):
        if task.case_study:
            jobs, _ = build_case_study_workload(workload, base, system, seed=config.seed)
            return jobs
        return build_workload(workload, base, eval_system, seed=config.seed)

    batch = max(1, int(batch_episodes))
    if (
        batch > 1
        and recorder is None
        and len(task.workloads) > 1
        and sched.lockstep_clone() is not None
    ):
        from repro.sim.batched import BatchedSimulator

        names = list(task.workloads)
        jobsets = {workload: build_jobs(workload) for workload in names}
        for i in range(0, len(names), batch):
            chunk = names[i : i + batch]
            if len(chunk) == 1:
                with workload_span(chunk[0]):
                    metrics[chunk[0]] = (
                        Simulator(eval_system, sched).run(jobsets[chunk[0]]).metrics
                    )
                continue
            sim = BatchedSimulator.for_scheduler(eval_system, sched, len(chunk))
            with (
                obs_session.span("lockstep", episodes=len(chunk))
                if obs_session is not None
                else contextlib.nullcontext()
            ):
                for workload, result in zip(chunk, sim.run([jobsets[w] for w in chunk])):
                    metrics[workload] = result.metrics
    else:
        for workload in task.workloads:
            jobs = build_jobs(workload)
            if recorder is not None:
                recorder.start(
                    method=task.method,
                    workload=workload,
                    seed=task.seed,
                    task_key=task_key,
                )
            with workload_span(workload):
                metrics[workload] = Simulator(eval_system, sched).run(jobs).metrics
            if recorder is not None and store is not None:
                trace_keys.append(store.put(recorder.finish()))

    if recorder is not None:
        sched.decision_recorder = None

    return TaskResult(
        key=task_key,
        method=task.method,
        seed=task.seed,
        workloads=task.workloads,
        metrics=metrics,
        wall_time=time.perf_counter() - t0,
        label=task.label,
        trace_keys=tuple(trace_keys),
    )
