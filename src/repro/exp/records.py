"""Structured task/result records for the experiment engine.

An :class:`ExperimentTask` is one cell of a (method × workloads × seed)
grid: it fully determines a scheduler instantiation, an optional
curriculum-training pass and the ordered evaluation of one or more
workloads. Tasks are frozen dataclasses so they pickle cleanly across
process boundaries and hash stably for the on-disk result cache.

A :class:`TaskResult` is the matching structured output: one
:class:`~repro.sim.metrics.MetricReport` per evaluated workload plus
provenance (wall time, worker pid, whether the result came from a live
run, the cache or a checkpoint). Both directions of JSON conversion are
lossless, which is what makes caching and resumable checkpointing safe.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import socket
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.metrics import MetricReport

if TYPE_CHECKING:
    from repro.experiments.harness import ExperimentConfig

__all__ = ["ExperimentTask", "TaskResult", "task_key", "canonical_json"]

#: bump when task execution semantics change incompatibly — stale cache
#: entries written under an older scheme are then never reused.
TASK_SCHEMA_VERSION = 1


def _canonicalize(obj):
    """Reduce ``obj`` to JSON-stable primitives (dataclasses included)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            **{
                f.name: _canonicalize(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        return {str(k): _canonicalize(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonicalize(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for hashing")


def canonical_json(obj) -> str:
    """Deterministic JSON rendering used for config hashing."""
    return json.dumps(_canonicalize(obj), sort_keys=True, separators=(",", ":"))


#: task fields that determine what execute_task computes — `label` is
#: display provenance, deliberately excluded so relabelling a cell still
#: hits the cache.
_SEMANTIC_FIELDS = ("method", "workloads", "seed", "config", "train", "case_study", "extra")


def task_key(task: "ExperimentTask") -> str:
    """Stable hex digest identifying a task's semantic configuration."""
    fields = {f: getattr(task, f) for f in _SEMANTIC_FIELDS}
    if task.capture_traces:
        # Included only when set, so pre-existing keys (and cached
        # results) of untraced tasks stay valid; a traced task is a
        # distinct artifact — result *plus* decision traces.
        fields["capture_traces"] = True
    payload = canonical_json({"schema": TASK_SCHEMA_VERSION, "task": fields})
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


@dataclass(frozen=True)
class ExperimentTask:
    """One self-contained grid cell.

    Parameters
    ----------
    method:
        Paper method name (see :func:`repro.sched.registry.make_scheduler`).
    workloads:
        Workload specs evaluated *in order* by one scheduler instance, so
        train-once/evaluate-many semantics (and the scheduler's RNG
        stream across workloads) match the serial harness exactly.
    seed:
        Root seed of this cell. It overrides ``config.seed``, so one
        config fans out over many seeds without copies.
    config:
        The :class:`~repro.experiments.harness.ExperimentConfig` sizing.
    train:
        Curriculum-train trainable methods before evaluation.
    case_study:
        Use the §V-E three-resource (power-extended) system and the
        case-study workload builder.
    extra:
        Additional ``make_scheduler`` keyword arguments as a tuple of
        (name, value) pairs; values must be JSON primitives so the task
        stays hashable (e.g. ``(("state_module", "cnn"),)``).
    label:
        Display name for result pivoting; defaults to ``method``. Lets
        two cells of the same method (e.g. an MLP-vs-CNN ablation)
        coexist in one grid.
    """

    method: str
    workloads: tuple[str, ...]
    seed: int
    config: "ExperimentConfig"
    train: bool = False
    case_study: bool = False
    extra: tuple[tuple[str, object], ...] = ()
    label: str = ""
    #: record every scheduling decision of the evaluation replays into
    #: the runner's :class:`~repro.eval.trace.TraceStore` (offline
    #: policy evaluation); part of the task key when set.
    capture_traces: bool = False

    @property
    def display_name(self) -> str:
        return self.label or self.method

    def key(self) -> str:
        return task_key(self)

    def to_json_dict(self) -> dict:
        """Lossless JSON rendering (the distributed work queue's task spec).

        The config is flattened to its constructor fields, so the
        round-trip re-validates on load and the reconstructed task hashes
        to the identical :func:`task_key` — a queued cell claimed on
        another host resolves to the same cache/journal entry.
        """
        config = dataclasses.asdict(self.config)
        config["curriculum_sets"] = list(config["curriculum_sets"])
        return {
            "method": self.method,
            "workloads": list(self.workloads),
            "seed": self.seed,
            "config": config,
            "train": self.train,
            "case_study": self.case_study,
            "extra": [[name, value] for name, value in self.extra],
            "label": self.label,
            "capture_traces": self.capture_traces,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "ExperimentTask":
        from repro.experiments.harness import ExperimentConfig
        from repro.sched.ga import NSGA2Config

        config = dict(data["config"])
        config["curriculum_sets"] = tuple(config["curriculum_sets"])
        config["ga_config"] = NSGA2Config(**config["ga_config"])
        return cls(
            method=data["method"],
            workloads=tuple(data["workloads"]),
            seed=int(data["seed"]),
            config=ExperimentConfig(**config),
            train=bool(data.get("train", False)),
            case_study=bool(data.get("case_study", False)),
            extra=tuple((name, value) for name, value in data.get("extra", ())),
            label=data.get("label", ""),
            capture_traces=bool(data.get("capture_traces", False)),
        )


@dataclass
class TaskResult:
    """Structured outcome of one executed (or recalled) task."""

    key: str
    method: str
    seed: int
    workloads: tuple[str, ...]
    metrics: dict[str, MetricReport]
    wall_time: float
    worker_pid: int = field(default_factory=os.getpid)
    #: "run" (executed now), "cache" (result cache hit) or
    #: "checkpoint" (restored while resuming an interrupted grid)
    source: str = "run"
    label: str = ""
    #: store keys of the decision traces recorded alongside this result
    #: (one per workload when the task captured traces)
    trace_keys: tuple[str, ...] = ()
    #: queue-dispatch worker that executed the cell ("" outside queue
    #: mode — the process-pool path is identified by ``worker_pid``)
    worker_id: str = ""
    #: host the cell executed on; with ``worker_id`` this makes merged
    #: multi-worker journal shards auditable
    hostname: str = field(default_factory=socket.gethostname)

    @property
    def display_name(self) -> str:
        return self.label or self.method

    def report(self, workload: str) -> MetricReport:
        return self.metrics[workload]

    def to_json_dict(self) -> dict:
        return {
            "key": self.key,
            "method": self.method,
            "seed": self.seed,
            "workloads": list(self.workloads),
            "metrics": {w: r.full_dict() for w, r in self.metrics.items()},
            "wall_time": self.wall_time,
            "worker_pid": self.worker_pid,
            "source": self.source,
            "label": self.label,
            "trace_keys": list(self.trace_keys),
            "worker_id": self.worker_id,
            "hostname": self.hostname,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "TaskResult":
        return cls(
            key=data["key"],
            method=data["method"],
            seed=int(data["seed"]),
            workloads=tuple(data["workloads"]),
            metrics={
                w: MetricReport.from_dict(r) for w, r in data["metrics"].items()
            },
            wall_time=float(data["wall_time"]),
            worker_pid=int(data.get("worker_pid", 0)),
            source=data.get("source", "run"),
            label=data.get("label", ""),
            trace_keys=tuple(data.get("trace_keys", ())),
            worker_id=data.get("worker_id", ""),
            hostname=data.get("hostname", ""),
        )
