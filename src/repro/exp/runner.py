"""The parallel experiment engine.

:class:`ExperimentRunner` fans a list of :class:`ExperimentTask` cells
out over a :class:`~concurrent.futures.ProcessPoolExecutor` (or runs
them inline with ``n_workers=1``), with three layers of reuse:

1. **Result cache** — an on-disk store keyed by the task's config hash;
   identical cells across runs (and across grids) are never recomputed.
2. **Checkpoint** — a JSONL journal of completed cells appended as the
   grid runs; re-invoking the same grid after an interruption restores
   finished cells and executes only the remainder.
3. **Deduplication** — identical cells inside one submission execute
   once and share the result.

Determinism: the serial and parallel paths call the same
:func:`~repro.exp.tasks.execute_task`, and every cell's randomness
derives from its own seed, so worker count and completion order cannot
change any metric value (``tests/integration/test_runner_determinism.py``
locks this down). Grid seeds are spawned per-cell from one root
``numpy.random.SeedSequence`` so seed streams are independent.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import multiprocessing
import os
import sys
import tempfile
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.exp.cache import ResultCache
from repro.exp.records import ExperimentTask, TaskResult
from repro.exp.tasks import execute_task
from repro.obs import runtime as _obs_runtime
from repro.obs.progress import ProgressLine

if TYPE_CHECKING:
    from repro.experiments.harness import ExperimentConfig

__all__ = ["ExperimentRunner", "grid_tasks", "spawn_grid_seeds", "pivot_results"]


def spawn_grid_seeds(root_seed: int, n: int) -> list[int]:
    """Derive ``n`` independent per-cell seeds from one root seed.

    Children are spawned from a :class:`numpy.random.SeedSequence`, so
    the streams are statistically independent, reproducible, and stable
    under grid reordering (cell ``i`` always receives the same seed).
    """
    children = np.random.SeedSequence(root_seed).spawn(n)
    return [int(c.generate_state(1, dtype=np.uint32)[0]) for c in children]


def grid_tasks(
    methods: Sequence[str],
    workloads: Sequence[str],
    config: "ExperimentConfig",
    seeds: Sequence[int] | None = None,
    n_seeds: int = 1,
    train: bool = False,
    case_study: bool = False,
    capture_traces: bool = False,
) -> list[ExperimentTask]:
    """Build the (method × seed) cells of a grid, workloads rolled in.

    Each cell evaluates every workload in order with one scheduler
    instance (train-once / evaluate-many, matching the paper's setup of
    one trained agent scored on S1–S5). ``seeds`` fixes the seed axis
    explicitly; otherwise ``n_seeds`` independent seeds are spawned from
    ``config.seed`` (``n_seeds=1`` reuses ``config.seed`` itself so a
    plain comparison grid matches the serial harness bit-for-bit).

    This is also the compilation target of the declarative layer:
    :meth:`repro.api.scenario.Scenario.compile` emits exactly this cell
    ordering (seed-major, then method) with the same seed-spawning
    rules, so a scenario equivalent to a harness grid produces
    bit-identical tasks, metrics and cache keys.
    """
    if seeds is None:
        seeds = [config.seed] if n_seeds == 1 else spawn_grid_seeds(config.seed, n_seeds)
    return [
        ExperimentTask(
            method=method,
            workloads=tuple(workloads),
            seed=int(seed),
            config=config,
            train=train,
            case_study=case_study,
            capture_traces=capture_traces,
        )
        for seed in seeds
        for method in methods
    ]


def pivot_results(results) -> dict:
    """Pivot task results into ``{workload: {method: report}}``.

    The method axis uses each result's display name (its task label, or
    the method name); with a multi-seed grid it becomes
    ``"name@seed"`` so no cell is silently overwritten.
    """
    seeds = {r.seed for r in results}
    out: dict = {}
    claimed: dict[tuple[str, str], str] = {}
    for result in results:
        name = result.display_name
        label = name if len(seeds) == 1 else f"{name}@{result.seed}"
        for workload, report in result.metrics.items():
            prior = claimed.setdefault((workload, label), result.key)
            if prior != result.key:
                raise ValueError(
                    f"two distinct cells pivot to {label!r} on {workload!r}; "
                    "set ExperimentTask.label to disambiguate"
                )
            out.setdefault(workload, {})[label] = report
    return out


class ExperimentRunner:
    """Serial/parallel executor for experiment grids.

    Parameters
    ----------
    n_workers:
        Worker processes; ``1`` runs inline (no pool, no pickling) and
        ``None`` uses the machine's CPU count.
    cache_dir:
        Enable the on-disk result cache at this directory.
    checkpoint_path:
        Enable resumable checkpointing: completed cells are appended to
        this JSONL file as they finish, and a later run with the same
        path skips them.
    mp_start_method:
        Process start method; default "fork" where available (cheap,
        inherits the warm interpreter) and "spawn" elsewhere.
    trace_dir:
        Decision-trace store for tasks with ``capture_traces``. Traces
        participate in both recall layers: a cached or checkpointed
        result of a trace-capturing task is only honoured when every
        trace it recorded still exists in this store — otherwise the
        cell re-executes and re-records.
    batch_episodes:
        Lockstep batch width for each cell's evaluation replays (see
        :func:`~repro.exp.tasks.execute_task`). Orthogonal to
        ``n_workers``: the pool fans *cells* out across processes,
        while ``batch_episodes`` batches the *workload episodes inside
        one cell* into shared network calls — combine both to use many
        cores and amortize network dispatch at the same time. Pure
        execution knob: metric values, cache keys and checkpoints are
        identical to the sequential path.
    dispatch:
        ``"pool"`` (default) fans pending cells over a local
        :class:`~concurrent.futures.ProcessPoolExecutor`; ``"queue"``
        dispatches them through the shared-directory work queue at
        ``queue_dir`` (:mod:`repro.dist`): ``n_workers`` local worker
        processes are started, external ``repro work --queue DIR``
        workers on any host sharing the directory may join or leave
        mid-grid, and crashed workers' cells are re-issued after their
        lease expires. Pure execution knob — metrics, cache keys and
        checkpoints are bit-identical to the pool and serial paths.
    queue_dir:
        Work-queue directory for ``dispatch="queue"`` (required then,
        rejected otherwise). Reusing the directory resumes a
        half-finished grid — published cells are never re-executed.
    lease_ttl:
        Queue-mode lease expiry in seconds; a worker silent for this
        long forfeits its cell to re-issue.
    cell_timeout_s:
        Queue-mode per-cell execution deadline: a cell still running
        after this many seconds is abandoned by its worker's watchdog,
        recorded as a failed attempt (toward the re-issue budget) and
        its lease released. None (default) disables the watchdog.
    worker_faults:
        Scripted :class:`~repro.dist.faults.FaultPlan` per local queue
        worker index (fault-injection tests/CI only).
    progress:
        Live one-line stderr progress (done/total cells, recalled
        count, elapsed/ETA) for the serial and pool paths. ``None``
        (default) auto-enables only when stderr is a TTY, so piped
        runs, CI logs and ``--json`` output stay clean; ``True``/
        ``False`` force it. Purely cosmetic — never touches results.
    """

    def __init__(
        self,
        n_workers: int | None = 1,
        cache_dir: str | os.PathLike | None = None,
        checkpoint_path: str | os.PathLike | None = None,
        mp_start_method: str | None = None,
        trace_dir: str | os.PathLike | None = None,
        trace_compact: bool = False,
        batch_episodes: int = 1,
        dispatch: str = "pool",
        queue_dir: str | os.PathLike | None = None,
        lease_ttl: float = 30.0,
        cell_timeout_s: float | None = None,
        worker_faults: Sequence | None = None,
        supervise: bool = False,
        progress: bool | None = None,
    ) -> None:
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        if dispatch not in ("pool", "queue"):
            raise ValueError(
                f"dispatch must be 'pool' or 'queue', got {dispatch!r}"
            )
        if dispatch == "queue" and queue_dir is None:
            raise ValueError(
                "dispatch='queue' needs the shared work-queue directory; "
                "pass ExperimentRunner(queue_dir=...)"
            )
        if dispatch != "queue" and queue_dir is not None:
            raise ValueError(
                "queue_dir given but dispatch is 'pool'; set "
                "dispatch='queue' to use the work queue"
            )
        self.dispatch = dispatch
        self.queue_dir = Path(queue_dir) if queue_dir is not None else None
        self.lease_ttl = float(lease_ttl)
        if cell_timeout_s is not None and cell_timeout_s <= 0:
            raise ValueError(
                f"cell_timeout_s must be positive or None, got {cell_timeout_s!r}"
            )
        self.cell_timeout_s = (
            float(cell_timeout_s) if cell_timeout_s is not None else None
        )
        self.worker_faults = list(worker_faults) if worker_faults else []
        #: queue mode only: run local workers under the respawning
        #: WorkerSupervisor instead of bare subprocesses
        self.supervise = bool(supervise)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        #: store recorded decision traces as float32 (storage fidelity
        #: only — simulated decisions and metrics are unaffected)
        self.trace_compact = bool(trace_compact)
        if mp_start_method is None:
            mp_start_method = (
                "fork" if sys.platform.startswith("linux") else "spawn"
            )
        self.mp_start_method = mp_start_method
        if batch_episodes < 1:
            raise ValueError("batch_episodes must be >= 1")
        self.batch_episodes = batch_episodes
        self.progress = progress
        #: keys already present in the journal during the current run()
        self._journaled_keys: set[str] = set()
        self._progress_line: ProgressLine | None = None
        self._recalled = 0

    # -- checkpointing ----------------------------------------------------

    def _load_checkpoint(self) -> dict[str, TaskResult]:
        if self.checkpoint_path is None or not self.checkpoint_path.exists():
            return {}
        done: dict[str, TaskResult] = {}
        valid_lines: list[str] = []
        torn = False
        with open(self.checkpoint_path) as handle:
            for line in handle:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    result = TaskResult.from_json_dict(json.loads(stripped))
                except (json.JSONDecodeError, KeyError, ValueError):
                    torn = True  # torn final line of an interrupted run
                    continue
                result.source = "checkpoint"
                done[result.key] = result
                valid_lines.append(stripped)
        if torn:
            # Rewrite the journal without the torn fragment so later
            # appends extend a clean line instead of merging into it.
            fd, tmp = tempfile.mkstemp(
                dir=self.checkpoint_path.parent, suffix=".tmp"
            )
            with os.fdopen(fd, "w") as handle:
                handle.write("".join(line + "\n" for line in valid_lines))
            os.replace(tmp, self.checkpoint_path)
        return done

    def _append_checkpoint(self, result: TaskResult) -> None:
        if self.checkpoint_path is None:
            return
        self.checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        # flush() alone leaves the line in the OS page cache, so a crash
        # could tear the journal tail; fsync the fd (and the directory on
        # first create, making the file's existence durable) so the
        # torn-fragment recovery in _load_checkpoint stays a last resort.
        existed = self.checkpoint_path.exists()
        with open(self.checkpoint_path, "a") as handle:
            handle.write(json.dumps(result.to_json_dict(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        if not existed:
            dir_fd = os.open(self.checkpoint_path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)

    # -- execution --------------------------------------------------------

    def run(self, tasks: list[ExperimentTask]) -> list[TaskResult]:
        """Execute ``tasks``; returns results aligned with input order."""
        keys = [task.key() for task in tasks]
        key_set = set(keys)
        tasks_by_key = dict(zip(keys, tasks))
        if self.trace_dir is None and any(t.capture_traces for t in tasks):
            raise ValueError(
                "grid contains trace-capturing tasks but the runner has no "
                "trace_dir; pass ExperimentRunner(trace_dir=...)"
            )
        journaled = self._load_checkpoint()
        self._journaled_keys = set(journaled)
        resolved = {
            k: v
            for k, v in journaled.items()
            if k in key_set and self._traces_ok(tasks_by_key[k], v)
        }
        session = _obs_runtime.session
        if session is not None:
            session.event(
                "run_start",
                cells=len(key_set),
                journaled=len(resolved),
                dispatch=self.dispatch,
                workers=self.n_workers,
            )
            session.metrics.gauge("runner.cells_total").set(len(key_set))
            session.metrics.counter("runner.checkpoint_hits").inc(len(resolved))
        self._progress_line = ProgressLine(len(key_set), enabled=self.progress)
        self._recalled = len(resolved)
        self._progress_line.update(len(resolved), recalled=self._recalled)
        try:
            if self.cache is not None:
                for key in keys:
                    if key not in resolved:
                        hit = self.cache.get(key)
                        if hit is not None and self._traces_ok(tasks_by_key[key], hit):
                            self._record(resolved, hit)

            pending: dict[str, ExperimentTask] = {}
            for task, key in zip(tasks, keys):
                if key not in resolved and key not in pending:
                    pending[key] = task

            if pending:
                trace_dir = str(self.trace_dir) if self.trace_dir is not None else None
                with (
                    session.span("run", cells=len(pending), dispatch=self.dispatch)
                    if session is not None
                    else contextlib.nullcontext()
                ):
                    if self.dispatch == "queue":
                        self._run_queue(pending, resolved, trace_dir)
                    elif self.n_workers == 1 or len(pending) == 1:
                        for key, task in pending.items():
                            self._record(
                                resolved,
                                execute_task(
                                    task,
                                    trace_dir,
                                    self.trace_compact,
                                    self.batch_episodes,
                                ),
                            )
                    else:
                        self._run_pool(pending, resolved, trace_dir)
        finally:
            line, self._progress_line = self._progress_line, None
            line.close()
        if session is not None:
            session.event(
                "run_done",
                cells=len(key_set),
                recalled=self._recalled,
                executed=len(key_set) - self._recalled,
            )
            session.write_metrics()

        # Backfill checkpoint-restored cells into the cache so the two
        # recall layers stay symmetric: every resolved cell ends up in
        # both the journal and (when enabled) the cache.
        if self.cache is not None:
            for key in key_set:
                if resolved[key].source == "checkpoint" and key not in self.cache:
                    self.cache.put(resolved[key])
        # Labels are display provenance, not part of the key — restamp
        # each recalled/shared result with the requesting task's label.
        out = []
        for task, key in zip(tasks, keys):
            result = resolved[key]
            if result.label != task.label:
                result = dataclasses.replace(result, label=task.label)
            out.append(result)
        return out

    def _record(self, resolved: dict[str, TaskResult], result: TaskResult) -> None:
        """Resolve a live or cache-recalled result: journal + cache it."""
        resolved[result.key] = result
        if result.key not in self._journaled_keys:
            self._append_checkpoint(result)
            self._journaled_keys.add(result.key)
        if self.cache is not None and result.source == "run":
            self.cache.put(result)
        if result.source != "run":
            self._recalled += 1
        if self._progress_line is not None:
            self._progress_line.update(len(resolved), recalled=self._recalled)
        session = _obs_runtime.session
        if session is not None:
            counter = {
                "cache": "runner.cache_hits",
                "checkpoint": "runner.checkpoint_hits",
            }.get(result.source, "runner.cells_run")
            session.metrics.counter(counter).inc()
            session.event(
                "cell_done",
                key=result.key,
                method=result.method,
                seed=result.seed,
                source=result.source,
                wall_s=result.wall_time,
            )

    def _traces_ok(self, task: ExperimentTask, result: TaskResult) -> bool:
        """Whether a recalled result's trace artifacts are all usable.

        Usable means present *and* stored at the fidelity this runner
        was asked for — flipping ``trace_compact`` re-executes the cell
        so the store actually changes width instead of silently keeping
        the old files.
        """
        if not task.capture_traces:
            return True
        if self.trace_dir is None or len(result.trace_keys) < len(task.workloads):
            return False
        from repro.eval.trace import TraceStore

        store = TraceStore(self.trace_dir)
        return all(
            store.stored_compact(key) == self.trace_compact
            for key in result.trace_keys
        )

    def _run_pool(
        self,
        pending: dict[str, ExperimentTask],
        resolved: dict[str, TaskResult],
        trace_dir: str | None = None,
    ) -> None:
        # Ship the plugin registration modules through the pool
        # initializer: fork workers inherit runtime registrations anyway
        # (re-import is a cached no-op), spawn workers start from a fresh
        # interpreter and would otherwise fail to resolve any
        # @register_*'d component (the registry-module note).
        from repro.api.registry import import_plugin_modules, registration_modules

        context = multiprocessing.get_context(self.mp_start_method)
        workers = min(self.n_workers, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=import_plugin_modules,
            initargs=(registration_modules(),),
        ) as pool:
            futures = {
                pool.submit(
                    execute_task,
                    task,
                    trace_dir,
                    self.trace_compact,
                    self.batch_episodes,
                )
                for task in pending.values()
            }
            # Drain as results land so the checkpoint journal always
            # reflects real progress, even if a later cell crashes.
            while futures:
                finished, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in finished:
                    self._record(resolved, future.result())

    def _run_queue(
        self,
        pending: dict[str, ExperimentTask],
        resolved: dict[str, TaskResult],
        trace_dir: str | None = None,
    ) -> None:
        """Dispatch pending cells through the shared-directory queue.

        The cache/checkpoint recall layers above are untouched: only
        genuinely pending cells are enqueued, and every published result
        flows back through :meth:`_record`, so the coordinator's journal
        and cache end up identical to a pool run's.
        """
        from repro.dist.coordinator import dispatch_tasks

        results = dispatch_tasks(
            self.queue_dir,
            list(pending.values()),
            n_workers=self.n_workers,
            lease_ttl=self.lease_ttl,
            mp_start_method=self.mp_start_method,
            trace_dir=trace_dir,
            trace_compact=self.trace_compact,
            batch_episodes=self.batch_episodes,
            cell_timeout_s=self.cell_timeout_s,
            worker_faults=self.worker_faults,
            supervise=self.supervise,
        )
        for key in pending:
            self._record(resolved, results[key])

    # -- grid convenience --------------------------------------------------

    def run_grid(
        self,
        methods: Sequence[str],
        workloads: Sequence[str],
        config: "ExperimentConfig",
        seeds: Sequence[int] | None = None,
        n_seeds: int = 1,
        train: bool = False,
        case_study: bool = False,
        capture_traces: bool = False,
    ) -> list[TaskResult]:
        """Build and run a (method × workloads × seed) grid."""
        return self.run(
            grid_tasks(
                methods,
                workloads,
                config,
                seeds=seeds,
                n_seeds=n_seeds,
                train=train,
                case_study=case_study,
                capture_traces=capture_traces,
            )
        )
