"""Parallel experiment engine: grid fan-out, caching, checkpointing.

The execution backbone for every (method × workload × seed) sweep in the
repository — see :class:`~repro.exp.runner.ExperimentRunner`.
"""

from repro.exp.cache import ResultCache
from repro.exp.records import ExperimentTask, TaskResult, task_key
from repro.exp.runner import (
    ExperimentRunner,
    grid_tasks,
    pivot_results,
    spawn_grid_seeds,
)
from repro.exp.tasks import execute_task

__all__ = [
    "ExperimentRunner",
    "ExperimentTask",
    "TaskResult",
    "ResultCache",
    "execute_task",
    "grid_tasks",
    "pivot_results",
    "spawn_grid_seeds",
    "task_key",
]
