"""Per-figure experiment entry points (DESIGN.md §4 index).

Every function regenerates the data behind one paper figure or study and
returns a dict with at least:

* ``data`` — the raw rows/series, and
* ``text`` — a printable rendering (what the benchmark harness emits).

Absolute numbers differ from the paper (miniature system, synthetic
trace, NumPy network) — EXPERIMENTS.md records the shape-level
comparison for each figure.
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from repro.api.registry import paper_workloads
from repro.core.mrsch import MRSchScheduler
from repro.api.facade import compare
from repro.experiments.harness import (
    PAPER_METHODS,
    ExperimentConfig,
    make_method,
    prepare_base_trace,
    run_single,
    train_method,
)
from repro.experiments.report import format_boxstats, format_series, format_table
from repro.exp import ExperimentRunner, ExperimentTask, pivot_results
from repro.sim.metrics import MetricReport, kiviat_normalize
from repro.utils.rng import as_generator

__all__ = [
    "fig3_mlp_vs_cnn",
    "fig4_training_order",
    "fig5_fig6_comparison",
    "fig7_kiviat",
    "fig8_rbb_timeline",
    "fig9_rbb_distribution",
    "fig10_three_resources",
    "overhead_study",
]

S_WORKLOADS = paper_workloads()
CASE_WORKLOADS = paper_workloads(case_study=True)

_METRIC_COLUMNS = ("node_util", "bb_util", "avg_wait_h", "avg_slowdown")


def _metric_rows(
    reports: dict[str, dict[str, MetricReport]], method_order: list[str]
) -> dict[str, dict[str, list[float]]]:
    """Pivot {workload: {method: report}} into per-metric tables."""
    tables: dict[str, dict[str, list[float]]] = {m: {} for m in _METRIC_COLUMNS}
    for metric in _METRIC_COLUMNS:
        for method in method_order:
            tables[metric][method] = [
                reports[w][method].as_dict()[metric] for w in reports
            ]
    return tables


# -- Fig. 3: MLP vs CNN state module ---------------------------------------


def fig3_mlp_vs_cnn(
    config: ExperimentConfig | None = None,
    workloads: tuple[str, ...] = S_WORKLOADS,
    runner: ExperimentRunner | None = None,
    n_workers: int = 1,
) -> dict:
    """State-module ablation (§V-A): identical agents except the state net.

    Runs the *pure DFP* policy (no feasibility prior) — the ablation
    measures what each state architecture lets the network learn, which
    the prior would otherwise mask. The two variants are independent
    grid cells, so they parallelise across workers.
    """
    config = config or ExperimentConfig()
    runner = runner or ExperimentRunner(n_workers=n_workers)
    tasks = [
        ExperimentTask(
            method="mrsch",
            workloads=tuple(workloads),
            seed=config.seed,
            config=config,
            train=True,
            extra=(("state_module", variant), ("prior_weight", 0.0)),
            label=variant.upper(),
        )
        for variant in ("mlp", "cnn")
    ]
    reports = pivot_results(runner.run(tasks))
    reports = {w: reports[w] for w in workloads}
    tables = _metric_rows(reports, ["MLP", "CNN"])
    text = "\n\n".join(
        format_table(f"Fig 3 — {metric} (columns: {', '.join(workloads)})",
                     list(workloads), rows)
        for metric, rows in tables.items()
    )
    return {"data": reports, "tables": tables, "text": text}


# -- Fig. 4: training-order convergence --------------------------------------


def fig4_training_order(
    config: ExperimentConfig | None = None,
    orders: list[tuple[str, str, str]] | None = None,
) -> dict:
    """Curriculum ordering study (§V-B): loss trajectories per ordering."""
    config = config or ExperimentConfig()
    system = config.system()
    base = prepare_base_trace(config, n_jobs=config.jobs_per_trainset * 3)
    orders = orders or [
        tuple(p) for p in itertools.permutations(("sampled", "real", "synthetic"))
    ]
    curves: dict[str, list[float]] = {}
    finals: dict[str, float] = {}
    for order in orders:
        label = "+".join(o.capitalize() for o in order)
        sched = make_method("mrsch", system, config)
        result = train_method(sched, system, config, base_jobs=base, order=order)
        assert result is not None
        curves[label] = result.losses
        finals[label] = result.final_loss()
    text = format_series("Fig 4 — MSE loss per episode, by jobset ordering", curves)
    best = min(finals, key=finals.get)  # type: ignore[arg-type]
    text += f"\n\nLowest final loss: {best} ({finals[best]:.4f})"
    return {"data": curves, "final_losses": finals, "best": best, "text": text}


# -- Figs 5 & 6: method comparison ----------------------------------------


def fig5_fig6_comparison(
    config: ExperimentConfig | None = None,
    workloads: tuple[str, ...] = S_WORKLOADS,
    methods: tuple[str, ...] = PAPER_METHODS,
    runner: ExperimentRunner | None = None,
    n_workers: int = 1,
) -> dict:
    """System-level (Fig 5) and user-level (Fig 6) comparison grids."""
    reports = compare(
        list(workloads), list(methods), config, runner=runner, n_workers=n_workers
    )
    tables = _metric_rows(reports, list(methods))
    fig5 = "\n\n".join(
        format_table(f"Fig 5 — {metric} (columns: {', '.join(workloads)})",
                     list(workloads), tables[metric])
        for metric in ("node_util", "bb_util")
    )
    fig6 = "\n\n".join(
        format_table(f"Fig 6 — {metric} (columns: {', '.join(workloads)})",
                     list(workloads), tables[metric])
        for metric in ("avg_wait_h", "avg_slowdown")
    )
    return {"data": reports, "tables": tables, "text": fig5 + "\n\n" + fig6}


# -- Fig. 7: Kiviat charts ---------------------------------------------------


def fig7_kiviat(
    reports: dict[str, dict[str, MetricReport]] | None = None,
    config: ExperimentConfig | None = None,
    workloads: tuple[str, ...] = S_WORKLOADS,
    runner: ExperimentRunner | None = None,
    n_workers: int = 1,
) -> dict:
    """Normalized radar axes per workload; reuses Fig 5/6 runs if given."""
    if reports is None:
        reports = compare(
            list(workloads), config=config, runner=runner, n_workers=n_workers
        )
    charts = {w: kiviat_normalize(rs) for w, rs in reports.items()}
    areas = {
        w: {m: _kiviat_area(list(axes.values())) for m, axes in chart.items()}
        for w, chart in charts.items()
    }
    blocks = []
    for w, chart in charts.items():
        axis_names = list(next(iter(chart.values())).keys())
        rows = {m: [axes[a] for a in axis_names] for m, axes in chart.items()}
        blocks.append(format_table(f"Fig 7 — {w} (normalized axes)", axis_names, rows))
    return {"data": charts, "areas": areas, "text": "\n\n".join(blocks)}


def _kiviat_area(values: list[float]) -> float:
    """Polygon area on equally-spaced radar axes (larger = better)."""
    n = len(values)
    if n < 3:
        return 0.0
    angle = 2 * np.pi / n
    return float(
        0.5 * np.sin(angle) * sum(values[i] * values[(i + 1) % n] for i in range(n))
    )


# -- Figs 8 & 9: goal-vector dynamics ----------------------------------------


def fig8_rbb_timeline(
    config: ExperimentConfig | None = None,
    workload: str = "S5",
    window_hours: float = 12.0,
    train: bool = True,
) -> dict:
    """rBB over a 12-hour window of an MRSch run on S5 (§V-D)."""
    config = config or ExperimentConfig()
    result, sched = run_single(workload, "mrsch", config, train=train)
    assert isinstance(sched, MRSchScheduler)
    times, goals = sched.goal_series()
    if times.size == 0:
        raise RuntimeError("no goal samples recorded")
    bb_index = sched.system.names.index("burst_buffer")
    # A deterministic "randomly selected" window: centred on the run.
    mid = 0.5 * (times[0] + times[-1])
    half = window_hours * 3600.0 / 2
    mask = (times >= mid - half) & (times <= mid + half)
    if not mask.any():
        mask = np.ones_like(times, dtype=bool)
    series = {"rBB": goals[mask, bb_index].tolist(), "t_hours": ((times[mask] - times[mask][0]) / 3600).tolist()}
    text = format_series(
        f"Fig 8 — rBB over a {window_hours:.0f}h window of {workload}",
        {"rBB": series["rBB"]},
    )
    stats = {
        "min": float(np.min(series["rBB"])),
        "max": float(np.max(series["rBB"])),
        "mean": float(np.mean(series["rBB"])),
    }
    text += f"\nrange [{stats['min']:.3f}, {stats['max']:.3f}], mean {stats['mean']:.3f}"
    return {"data": series, "stats": stats, "text": text}


def fig9_rbb_distribution(
    config: ExperimentConfig | None = None,
    workloads: tuple[str, ...] = S_WORKLOADS,
    train: bool = False,
) -> dict:
    """Box statistics of rBB across S1–S5 (§V-D).

    rBB is a property of the workload/goal computation (Eq. 1), not of
    the learned policy, so the default skips training for speed.
    """
    config = config or ExperimentConfig()
    stats: dict[str, dict[str, float]] = {}
    for workload in workloads:
        _, sched = run_single(workload, "mrsch", config, train=train)
        assert isinstance(sched, MRSchScheduler)
        _, goals = sched.goal_series()
        bb = goals[:, sched.system.names.index("burst_buffer")]
        stats[workload] = {
            "min": float(bb.min()),
            "q1": float(np.percentile(bb, 25)),
            "median": float(np.median(bb)),
            "q3": float(np.percentile(bb, 75)),
            "max": float(bb.max()),
            "mean": float(bb.mean()),
        }
    text = format_boxstats("Fig 9 — rBB distribution per workload", stats)
    return {"data": stats, "text": text}


# -- Fig. 10: three-resource case study ------------------------------------


def fig10_three_resources(
    config: ExperimentConfig | None = None,
    workloads: tuple[str, ...] = CASE_WORKLOADS,
    methods: tuple[str, ...] = PAPER_METHODS,
    runner: ExperimentRunner | None = None,
    n_workers: int = 1,
) -> dict:
    """§V-E: CPU + burst buffer + power, workloads S6–S10."""
    reports = compare(
        list(workloads),
        list(methods),
        config,
        case_study=True,
        runner=runner,
        n_workers=n_workers,
    )
    charts = {w: kiviat_normalize(rs, include_power=True) for w, rs in reports.items()}
    areas = {
        w: {m: _kiviat_area(list(axes.values())) for m, axes in chart.items()}
        for w, chart in charts.items()
    }
    blocks = []
    for w, chart in charts.items():
        axis_names = list(next(iter(chart.values())).keys())
        rows = {m: [axes[a] for a in axis_names] for m, axes in chart.items()}
        blocks.append(format_table(f"Fig 10 — {w} (normalized axes)", axis_names, rows))
    return {"data": reports, "charts": charts, "areas": areas, "text": "\n\n".join(blocks)}


# -- §V-F: decision overhead --------------------------------------------------


def overhead_study(
    config: ExperimentConfig | None = None,
    n_decisions: int = 200,
) -> dict:
    """Per-decision latency of the MRSch agent, 2- and 3-resource (§V-F).

    The paper reports <2 s (two resources) and <3 s (three resources)
    per decision on a laptop-class machine; this measures the same
    quantity — one encode + forward + argmax — on this system.
    """
    config = config or ExperimentConfig()
    timings: dict[str, float] = {}
    for label, case_study in (("2 resources", False), ("3 resources", True)):
        system = config.system()
        if case_study:
            from repro.workload.suites import powered_system

            system = powered_system(system)
        sched = make_method("mrsch", system, config)
        assert isinstance(sched, MRSchScheduler)
        rng = as_generator(config.seed)
        state = rng.random(sched.encoder.state_dim)
        meas = rng.random(system.n_resources)
        goal = np.full(system.n_resources, 1.0 / system.n_resources)
        mask = np.ones(config.window_size, dtype=bool)
        sched.agent.act(state, meas, goal, mask)  # warm-up
        t0 = time.perf_counter()
        for _ in range(n_decisions):
            sched.agent.act(state, meas, goal, mask)
        timings[label] = (time.perf_counter() - t0) / n_decisions
    rows = {k: [v * 1000.0] for k, v in timings.items()}
    text = format_table("§V-F — mean decision latency", ["ms/decision"], rows)
    return {"data": timings, "text": text}
