"""Experiment harness: one entry point per paper table/figure.

``harness``
    Shared machinery: build workloads, train the trainable methods,
    run (scheduler × workload) grids, collect metric reports.
``report``
    ASCII table/series rendering matching the paper's rows.
``figures``
    ``fig3`` … ``fig10`` and ``overhead`` — each regenerates the data
    behind the corresponding paper figure (see DESIGN.md §4 for the
    index) and returns both raw data and printable text.
"""

from repro.experiments.harness import (
    ExperimentConfig,
    prepare_base_trace,
    run_comparison,
    train_method,
)
from repro.experiments.figures import (
    fig3_mlp_vs_cnn,
    fig4_training_order,
    fig5_fig6_comparison,
    fig7_kiviat,
    fig8_rbb_timeline,
    fig9_rbb_distribution,
    fig10_three_resources,
    overhead_study,
)
from repro.experiments.report import format_series, format_table

__all__ = [
    "ExperimentConfig",
    "prepare_base_trace",
    "train_method",
    "run_comparison",
    "fig3_mlp_vs_cnn",
    "fig4_training_order",
    "fig5_fig6_comparison",
    "fig7_kiviat",
    "fig8_rbb_timeline",
    "fig9_rbb_distribution",
    "fig10_three_resources",
    "overhead_study",
    "format_table",
    "format_series",
]
