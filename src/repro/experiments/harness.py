"""Shared experiment machinery.

One :class:`ExperimentConfig` fixes the system scale, trace size,
training budget and RNG seed of an experiment; the harness then builds
the base trace, instantiates any method by paper name, trains the
trainable ones on the §III-D curriculum, and replays the evaluation
workloads.

Scale note: defaults target the miniature Theta (DESIGN.md §5) so that a
full (4 methods × 5 workloads) grid runs in minutes on a laptop. All the
knobs — node/BB counts, job counts, GA budget, training episodes — are
explicit, so the same harness drives full-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.api.registry import SCHEDULERS, paper_methods
from repro.cluster.resources import SystemConfig
from repro.core.training import TrainingResult, curriculum_training
from repro.sched.base import Scheduler
from repro.sched.ga import NSGA2Config
from repro.sim.metrics import MetricReport
from repro.sim.simulator import SimulationResult, Simulator
from repro.utils.rng import as_generator, spawn_generators
from repro.workload.job import Job
from repro.workload.sampling import build_curriculum
from repro.workload.suites import build_case_study_workload, build_workload
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace

if TYPE_CHECKING:
    from repro.exp.runner import ExperimentRunner

__all__ = ["ExperimentConfig", "prepare_base_trace", "train_method", "run_comparison"]

#: the §IV-D comparison methods, sourced from the scheduler registry
PAPER_METHODS = paper_methods()


@dataclass
class ExperimentConfig:
    """Sizing and seeding of one experiment.

    Fields are validated at construction — an impossible sizing fails
    immediately with a named-field :class:`ValueError` instead of a
    downstream crash deep inside trace generation or training.
    """

    nodes: int = 128
    bb_units: int = 64
    n_jobs: int = 150
    window_size: int = 10
    seed: int = 2022
    #: training curriculum sizing (per phase: sampled / real / synthetic)
    curriculum_sets: tuple[int, int, int] = (3, 3, 3)
    jobs_per_trainset: int = 80
    #: GA budget (kept small: the GA is the slowest method per decision)
    ga_config: NSGA2Config = field(default_factory=lambda: NSGA2Config(population=12, generations=6))
    mean_interarrival: float = 600.0
    #: system factory to instantiate (see ``repro.api.registry.SYSTEMS``);
    #: the factory receives this config's ``nodes``/``bb_units`` sizing
    system_name: str = "mini_theta"

    def __post_init__(self) -> None:
        for name in ("nodes", "bb_units", "n_jobs", "window_size", "jobs_per_trainset"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
                raise ValueError(
                    f"ExperimentConfig.{name} must be a positive int, got {value!r}"
                )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"ExperimentConfig.seed must be an int, got {self.seed!r}")
        if self.mean_interarrival <= 0:
            raise ValueError(
                "ExperimentConfig.mean_interarrival must be positive (seconds "
                f"between submissions), got {self.mean_interarrival!r}"
            )
        sets = self.curriculum_sets
        if (
            not isinstance(sets, (tuple, list))
            or len(sets) != 3
            or any(not isinstance(n, int) or n < 0 for n in sets)
        ):
            raise ValueError(
                "ExperimentConfig.curriculum_sets must be three non-negative "
                f"ints (sampled/real/synthetic jobset counts), got {sets!r}"
            )
        if not isinstance(self.system_name, str) or not self.system_name:
            raise ValueError(
                f"ExperimentConfig.system_name must be a registered system "
                f"name, got {self.system_name!r}"
            )

    def system(self) -> SystemConfig:
        from repro.api.registry import SYSTEMS
        from repro.cluster.resources import BURST_BUFFER, NODE

        system = SYSTEMS.get(self.system_name).build(
            nodes=self.nodes, bb_units=self.bb_units
        )
        # A factory that fixes its own scale (e.g. "theta") may ignore
        # the sizing arguments; trace generation uses `nodes` regardless,
        # so a mismatch silently produces a near-idle or oversubscribed
        # machine. Fail loudly with the value to set instead.
        for resource, configured in ((NODE, self.nodes), (BURST_BUFFER, self.bb_units)):
            if resource in system.names and system.capacity(resource) != configured:
                raise ValueError(
                    f"system {self.system_name!r} has {system.capacity(resource)} "
                    f"{resource} units but the experiment is sized for "
                    f"{configured}; set ExperimentConfig/"
                    f"scenario sizing to match the system"
                )
        return system

    def trace_config(self, n_jobs: int | None = None) -> ThetaTraceConfig:
        return ThetaTraceConfig(
            total_nodes=self.nodes,
            n_jobs=n_jobs or self.n_jobs,
            mean_interarrival=self.mean_interarrival,
        )


def prepare_base_trace(config: ExperimentConfig, n_jobs: int | None = None) -> list[Job]:
    """Generate the Theta-like base trace for an experiment."""
    return generate_theta_trace(config.trace_config(n_jobs), seed=config.seed)


def make_method(
    name: str,
    system: SystemConfig,
    config: ExperimentConfig,
    seed: int | None = None,
    **kwargs,
) -> Scheduler:
    """Instantiate a registered method with the experiment's sizing applied.

    The registry entry's ``config_options`` map experiment-level knobs
    to constructor kwargs (the NSGA-II budget, for instance). Per-method
    ``kwargs`` (scenario options / ``ExperimentTask.extra``) take
    precedence over the config-wide sizing, so an option like
    ``window_size`` overrides instead of colliding.
    """
    seed = config.seed if seed is None else seed
    entry = SCHEDULERS.get(name)
    for attr, ctor_kwarg in entry.config_options:
        kwargs.setdefault(ctor_kwarg, getattr(config, attr))
    call_kwargs = {"window_size": config.window_size, "seed": seed, **kwargs}
    return entry.build(system, **call_kwargs)


def train_method(
    scheduler: Scheduler,
    system: SystemConfig,
    config: ExperimentConfig,
    base_jobs: list[Job] | None = None,
    order: tuple[str, ...] = ("sampled", "real", "synthetic"),
) -> TrainingResult | None:
    """Curriculum-train a scheduler if it is trainable; no-op otherwise.

    Training workloads are built on the same system with the same
    workload transformation as evaluation (S-series requests), using
    independent RNG streams so train/test traces differ.
    """
    if not hasattr(scheduler, "finish_episode"):
        return None
    rng = as_generator(config.seed + 17)
    base_jobs = base_jobs or prepare_base_trace(config, n_jobs=config.jobs_per_trainset * 3)
    n_sampled, n_real, n_synth = config.curriculum_sets
    curriculum = build_curriculum(
        base_jobs,
        config.trace_config(config.jobs_per_trainset),
        n_sampled=n_sampled,
        n_real=n_real,
        n_synthetic=n_synth,
        jobs_per_set=config.jobs_per_trainset,
        seed=rng,
    )
    # Apply the workload transformation (BB/power requests) to every
    # training set so the agent trains on the resource mix it will face.
    workload_rngs = spawn_generators(rng, sum(len(v) for v in curriculum.values()))
    i = 0
    for phase, sets in curriculum.items():
        transformed = []
        for jobset in sets:
            transformed.append(_training_workload(jobset, system, workload_rngs[i]))
            i += 1
        curriculum[phase] = transformed
    return curriculum_training(scheduler, curriculum, system, order=order)


def _training_workload(jobset: list[Job], system: SystemConfig, rng) -> list[Job]:
    """Mid-ladder (S3-like) requests for training: balanced contention."""
    from repro.cluster.resources import POWER

    if POWER in system.names:
        jobs, _ = build_case_study_workload("S8", jobset, _without_power(system), seed=rng)
        return jobs
    return build_workload("S3", jobset, system, seed=rng)


def _without_power(system: SystemConfig) -> SystemConfig:
    from repro.cluster.resources import POWER

    return SystemConfig(tuple(r for r in system.resources if r.name != POWER))


def run_comparison(
    workloads: list[str],
    methods: list[str] | None = None,
    config: ExperimentConfig | None = None,
    case_study: bool = False,
    train: bool = True,
    runner: "ExperimentRunner | None" = None,
    n_workers: int = 1,
) -> dict[str, dict[str, MetricReport]]:
    """Run the (method × workload) grid behind Figs 5–7 / 10.

    Returns ``{workload: {method: MetricReport}}``. Trainable methods are
    curriculum-trained once and reused across workloads (matching the
    paper: one trained agent evaluated on S1–S5).

    Deprecated shim — delegates to :func:`repro.api.facade.compare`,
    which compiles an inline :class:`~repro.api.scenario.Scenario` to
    the identical (method × workload) grid on the :mod:`repro.exp`
    engine. Pass ``runner`` (or ``n_workers``) to fan methods out over
    processes; results are bit-identical at any worker count.
    """
    import warnings

    warnings.warn(
        "repro.experiments.harness.run_comparison is deprecated; use "
        "repro.api.compare (identical grid, identical results)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.facade import compare

    return compare(
        workloads=list(workloads),
        methods=list(methods) if methods is not None else None,
        config=config or ExperimentConfig(),
        train=train,
        case_study=case_study,
        runner=runner,
        n_workers=n_workers,
    )


def run_single(
    workload: str,
    method: str,
    config: ExperimentConfig | None = None,
    train: bool = True,
    **kwargs,
) -> tuple[SimulationResult, Scheduler]:
    """Run one (method, workload) pair; returns (result, scheduler).

    The scheduler is returned so callers can read agent internals — the
    goal-vector log behind Figs 8–9 in particular. Case-study workloads
    (power-profiled, per their registry metadata) are evaluated on the
    matching power-extended system automatically. Extra ``kwargs``
    reach the scheduler constructor (scenario-style method options).
    """
    from repro.api.registry import WORKLOADS

    config = config or ExperimentConfig()
    system = config.system()
    base = prepare_base_trace(config)
    if isinstance(workload, str) and WORKLOADS.get(workload).case_study:
        jobs, system = build_case_study_workload(workload, base, system, seed=config.seed)
    else:
        jobs = build_workload(workload, base, system, seed=config.seed)
    sched = make_method(method, system, config, **kwargs)
    if train:
        train_method(sched, system, config)
    result = Simulator(system, sched).run(jobs)
    return result, sched
