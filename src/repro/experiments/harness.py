"""Shared experiment machinery.

One :class:`ExperimentConfig` fixes the system scale, trace size,
training budget and RNG seed of an experiment; the harness then builds
the base trace, instantiates any method by paper name, trains the
trainable ones on the §III-D curriculum, and replays the evaluation
workloads.

Scale note: defaults target the miniature Theta (DESIGN.md §5) so that a
full (4 methods × 5 workloads) grid runs in minutes on a laptop. All the
knobs — node/BB counts, job counts, GA budget, training episodes — are
explicit, so the same harness drives full-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster.resources import SystemConfig
from repro.core.mrsch import MRSchScheduler
from repro.core.training import TrainingResult, curriculum_training
from repro.sched.base import Scheduler
from repro.sched.ga import NSGA2Config
from repro.sched.registry import make_scheduler
from repro.sim.metrics import MetricReport
from repro.sim.simulator import SimulationResult, Simulator
from repro.utils.rng import as_generator, spawn_generators
from repro.workload.job import Job
from repro.workload.sampling import build_curriculum
from repro.workload.suites import build_case_study_workload, build_workload
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace

if TYPE_CHECKING:
    from repro.exp.runner import ExperimentRunner

__all__ = ["ExperimentConfig", "prepare_base_trace", "train_method", "run_comparison"]

PAPER_METHODS = ("mrsch", "optimization", "scalar_rl", "heuristic")


@dataclass
class ExperimentConfig:
    """Sizing and seeding of one experiment."""

    nodes: int = 128
    bb_units: int = 64
    n_jobs: int = 150
    window_size: int = 10
    seed: int = 2022
    #: training curriculum sizing (per phase: sampled / real / synthetic)
    curriculum_sets: tuple[int, int, int] = (3, 3, 3)
    jobs_per_trainset: int = 80
    #: GA budget (kept small: the GA is the slowest method per decision)
    ga_config: NSGA2Config = field(default_factory=lambda: NSGA2Config(population=12, generations=6))
    mean_interarrival: float = 600.0

    def system(self) -> SystemConfig:
        return SystemConfig.mini_theta(nodes=self.nodes, bb_units=self.bb_units)

    def trace_config(self, n_jobs: int | None = None) -> ThetaTraceConfig:
        return ThetaTraceConfig(
            total_nodes=self.nodes,
            n_jobs=n_jobs or self.n_jobs,
            mean_interarrival=self.mean_interarrival,
        )


def prepare_base_trace(config: ExperimentConfig, n_jobs: int | None = None) -> list[Job]:
    """Generate the Theta-like base trace for an experiment."""
    return generate_theta_trace(config.trace_config(n_jobs), seed=config.seed)


def make_method(
    name: str,
    system: SystemConfig,
    config: ExperimentConfig,
    seed: int | None = None,
    **kwargs,
) -> Scheduler:
    """Instantiate a paper method with the experiment's sizing applied."""
    seed = config.seed if seed is None else seed
    if name == "optimization":
        kwargs.setdefault("config", config.ga_config)
    return make_scheduler(name, system, window_size=config.window_size, seed=seed, **kwargs)


def train_method(
    scheduler: Scheduler,
    system: SystemConfig,
    config: ExperimentConfig,
    base_jobs: list[Job] | None = None,
    order: tuple[str, ...] = ("sampled", "real", "synthetic"),
) -> TrainingResult | None:
    """Curriculum-train a scheduler if it is trainable; no-op otherwise.

    Training workloads are built on the same system with the same
    workload transformation as evaluation (S-series requests), using
    independent RNG streams so train/test traces differ.
    """
    if not hasattr(scheduler, "finish_episode"):
        return None
    rng = as_generator(config.seed + 17)
    base_jobs = base_jobs or prepare_base_trace(config, n_jobs=config.jobs_per_trainset * 3)
    n_sampled, n_real, n_synth = config.curriculum_sets
    curriculum = build_curriculum(
        base_jobs,
        config.trace_config(config.jobs_per_trainset),
        n_sampled=n_sampled,
        n_real=n_real,
        n_synthetic=n_synth,
        jobs_per_set=config.jobs_per_trainset,
        seed=rng,
    )
    # Apply the workload transformation (BB/power requests) to every
    # training set so the agent trains on the resource mix it will face.
    workload_rngs = spawn_generators(rng, sum(len(v) for v in curriculum.values()))
    i = 0
    for phase, sets in curriculum.items():
        transformed = []
        for jobset in sets:
            transformed.append(_training_workload(jobset, system, workload_rngs[i]))
            i += 1
        curriculum[phase] = transformed
    return curriculum_training(scheduler, curriculum, system, order=order)


def _training_workload(jobset: list[Job], system: SystemConfig, rng) -> list[Job]:
    """Mid-ladder (S3-like) requests for training: balanced contention."""
    from repro.cluster.resources import POWER

    if POWER in system.names:
        jobs, _ = build_case_study_workload("S8", jobset, _without_power(system), seed=rng)
        return jobs
    return build_workload("S3", jobset, system, seed=rng)


def _without_power(system: SystemConfig) -> SystemConfig:
    from repro.cluster.resources import POWER

    return SystemConfig(tuple(r for r in system.resources if r.name != POWER))


def run_comparison(
    workloads: list[str],
    methods: list[str] | None = None,
    config: ExperimentConfig | None = None,
    case_study: bool = False,
    train: bool = True,
    runner: "ExperimentRunner | None" = None,
    n_workers: int = 1,
) -> dict[str, dict[str, MetricReport]]:
    """Run the (method × workload) grid behind Figs 5–7 / 10.

    Returns ``{workload: {method: MetricReport}}``. Trainable methods are
    curriculum-trained once and reused across workloads (matching the
    paper: one trained agent evaluated on S1–S5).

    The grid executes on the :mod:`repro.exp` engine — one task per
    method, each evaluating every workload in order. Pass ``runner`` (or
    ``n_workers``) to fan methods out over processes, enable the result
    cache, or checkpoint/resume; results are identical for any worker
    count because each task is seeded independently.
    """
    from repro.exp.runner import ExperimentRunner, grid_tasks, pivot_results

    config = config or ExperimentConfig()
    methods = list(methods or PAPER_METHODS)
    runner = runner or ExperimentRunner(n_workers=n_workers)
    tasks = grid_tasks(
        methods, workloads, config, train=train, case_study=case_study
    )
    results = pivot_results(runner.run(tasks))
    # Preserve the caller's workload/method ordering in the output dict.
    return {
        workload: {method: results[workload][method] for method in methods}
        for workload in workloads
    }


def run_single(
    workload: str,
    method: str,
    config: ExperimentConfig | None = None,
    train: bool = True,
) -> tuple[SimulationResult, Scheduler]:
    """Run one (method, workload) pair; returns (result, scheduler).

    The scheduler is returned so callers can read agent internals — the
    goal-vector log behind Figs 8–9 in particular.
    """
    config = config or ExperimentConfig()
    system = config.system()
    base = prepare_base_trace(config)
    jobs = build_workload(workload, base, system, seed=config.seed)
    sched = make_method(method, system, config)
    if train:
        train_method(sched, system, config)
    result = Simulator(system, sched).run(jobs)
    return result, sched
