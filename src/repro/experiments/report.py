"""Plain-text rendering of experiment results.

The paper presents bar charts, line plots, box plots and Kiviat charts;
in a library context the equivalent deliverable is the underlying rows
and series, printed as aligned ASCII tables that the benchmark harness
emits alongside the raw data.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "format_series", "format_boxstats"]


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Mapping[str, Sequence[float]],
    precision: int = 3,
) -> str:
    """Render ``{row label: values}`` as an aligned table."""
    header = ["" , *columns]
    body = [
        [label, *(f"{v:.{precision}f}" if isinstance(v, float) else str(v) for v in values)]
        for label, values in rows.items()
    ]
    widths = [max(len(r[i]) for r in [header, *body]) for i in range(len(header))]
    lines = [title, "-" * len(title)]
    for row in [header, *body]:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    series: Mapping[str, Sequence[float]],
    precision: int = 4,
    max_points: int = 12,
) -> str:
    """Render named numeric series, subsampled to ``max_points``."""
    lines = [title, "-" * len(title)]
    for name, values in series.items():
        values = list(values)
        if len(values) > max_points:
            step = max(1, len(values) // max_points)
            shown = values[::step][:max_points]
            suffix = f"  (… {len(values)} points)"
        else:
            shown, suffix = values, ""
        rendered = ", ".join(f"{v:.{precision}f}" for v in shown)
        lines.append(f"{name}: [{rendered}]{suffix}")
    return "\n".join(lines)


def format_boxstats(
    title: str,
    stats: Mapping[str, Mapping[str, float]],
    precision: int = 3,
) -> str:
    """Render box-plot statistics (min/q1/median/q3/max) per label."""
    keys = ("min", "q1", "median", "q3", "max")
    rows = {label: [s[k] for k in keys] for label, s in stats.items()}
    return format_table(title, list(keys), rows, precision=precision)
