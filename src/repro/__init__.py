"""repro — a full reproduction of *MRSch: Multi-Resource Scheduling for
HPC* (Li et al., IEEE Cluster 2022).

MRSch is an intelligent multi-resource HPC scheduling agent built on
Direct Future Prediction (DFP), a multi-objective reinforcement-learning
algorithm. This library implements the complete system described in the
paper plus every substrate its evaluation depends on:

* :mod:`repro.core` — the MRSch agent (vector state encoding, dynamic
  goal vector, DFP network, curriculum training);
* :mod:`repro.sched` — the shared window/reservation/EASY-backfill
  machinery and the three comparison methods (FCFS heuristic, NSGA-II
  optimization, fixed-weight scalar RL);
* :mod:`repro.sim` — a CQSim-like event-driven trace simulator and the
  paper's evaluation metrics;
* :mod:`repro.cluster` — the unit-based multi-resource system model;
* :mod:`repro.workload` — Theta-like trace generation, synthetic
  Darshan I/O records, Table III workloads S1–S5 and the §V-E power
  case study S6–S10;
* :mod:`repro.nn` — the NumPy neural-network substrate (MLP/CNN,
  Adam, MSE) standing in for TensorFlow;
* :mod:`repro.experiments` — one harness entry point per paper figure
  and table.

Quickstart::

    from repro import (SystemConfig, ThetaTraceConfig, generate_theta_trace,
                       build_workload, Simulator, make_scheduler)

    system = SystemConfig.mini_theta()
    base = generate_theta_trace(ThetaTraceConfig(total_nodes=128, n_jobs=300), seed=1)
    jobs = build_workload("S4", base, system, seed=1)
    sched = make_scheduler("heuristic", system)
    result = Simulator(system, sched).run(jobs)
    print(result.metrics.as_dict())
"""

from repro.cluster.resources import (
    BURST_BUFFER,
    NODE,
    POWER,
    ResourcePool,
    ResourceSpec,
    SystemConfig,
)
from repro.core.dfp import DFPAgent, DFPConfig, DFPNetwork
from repro.core.mrsch import MRSchScheduler
from repro.core.training import TrainingResult, curriculum_training, train_episodes
from repro.sched.base import Scheduler, SchedulingContext
from repro.sched.fcfs import FCFSScheduler
from repro.sched.ga import GAScheduler
from repro.sched.registry import available_schedulers, make_scheduler
from repro.sched.scalar_rl import ScalarRLScheduler
from repro.sim.metrics import MetricReport, compute_metrics, kiviat_normalize
from repro.sim.simulator import SimulationResult, Simulator
from repro.workload.job import Job
from repro.workload.sampling import build_curriculum, split_trace
from repro.workload.suites import (
    CASE_STUDY_SPECS,
    WORKLOAD_SPECS,
    build_case_study_workload,
    build_workload,
)
from repro.workload.swf import parse_swf, write_swf
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # cluster
    "ResourceSpec",
    "SystemConfig",
    "ResourcePool",
    "NODE",
    "BURST_BUFFER",
    "POWER",
    # workload
    "Job",
    "ThetaTraceConfig",
    "generate_theta_trace",
    "build_workload",
    "build_case_study_workload",
    "WORKLOAD_SPECS",
    "CASE_STUDY_SPECS",
    "split_trace",
    "build_curriculum",
    "parse_swf",
    "write_swf",
    # simulation
    "Simulator",
    "SimulationResult",
    "MetricReport",
    "compute_metrics",
    "kiviat_normalize",
    # scheduling
    "Scheduler",
    "SchedulingContext",
    "FCFSScheduler",
    "GAScheduler",
    "ScalarRLScheduler",
    "make_scheduler",
    "available_schedulers",
    # MRSch core
    "MRSchScheduler",
    "DFPConfig",
    "DFPNetwork",
    "DFPAgent",
    "train_episodes",
    "curriculum_training",
    "TrainingResult",
]
