"""Statistical Theta-like trace generation.

The paper evaluates on a five-month 2018 production trace from Theta
(ALCF): 4,392 Intel KNL nodes, capability-class workload. That trace is
not redistributable, so this module generates traces with the same
*statistical shape*, which is what drives scheduler behaviour:

* **Arrivals** — Poisson process modulated by a diurnal profile (daytime
  submission peaks) and a weekday/weekend factor, matching the paper's
  "hourly and daily job arrival" synthetic-set description (§V-B).
* **Node counts** — mixture of power-of-two requests (dominant on
  capability systems), small debug jobs and rare near-full-machine runs.
* **Runtimes** — lognormal body with a heavy tail, clipped to a maximum
  walltime; seconds to days, as §III-C stresses.
* **Walltime estimates** — runtime inflated by a user overestimate
  factor (Mu'alem & Feitelson observe large, discretised overestimates);
  a fraction of users request round wall-clock limits.

Every knob sits on :class:`ThetaTraceConfig`, so scaled-down systems
(see ``SystemConfig.mini_theta``) can generate proportional workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import as_generator
from repro.workload.job import Job

__all__ = ["ThetaTraceConfig", "generate_theta_trace"]

_HOURLY_PROFILE = np.array(
    # Relative submission intensity per hour-of-day, peaking in working hours.
    [0.5, 0.4, 0.35, 0.3, 0.3, 0.35, 0.5, 0.7, 1.0, 1.3, 1.5, 1.6,
     1.5, 1.5, 1.6, 1.5, 1.4, 1.2, 1.0, 0.9, 0.8, 0.7, 0.6, 0.55]
)


@dataclass
class ThetaTraceConfig:
    """Knobs for the Theta-like generator.

    Defaults describe the miniature system used by the experiment
    harness; set ``total_nodes=4392`` for full-scale Theta.
    """

    total_nodes: int = 128
    n_jobs: int = 1000
    mean_interarrival: float = 600.0  # seconds
    #: lognormal parameters of runtime in seconds
    runtime_log_mean: float = 8.0  # exp(8) ≈ 50 min median
    runtime_log_sigma: float = 1.4
    min_runtime: float = 60.0
    max_runtime: float = 86400.0 * 2  # 2-day walltime cap
    #: probability a job requests a power-of-two node count
    p_power_of_two: float = 0.6
    #: probability of a near-full-machine capability run
    p_capability: float = 0.03
    #: mean of the geometric small-job tail (in nodes)
    small_job_mean: float = 4.0
    #: walltime overestimate: walltime = runtime * Uniform(1, max_overestimate)
    max_overestimate: float = 4.0
    #: fraction of users who round walltime up to the next hour
    p_round_walltime: float = 0.5
    diurnal: bool = True
    weekend_factor: float = 0.6
    node_resource: str = "node"
    hourly_profile: np.ndarray = field(default_factory=lambda: _HOURLY_PROFILE.copy())

    def __post_init__(self) -> None:
        if self.total_nodes <= 0:
            raise ValueError("total_nodes must be positive")
        if self.n_jobs < 0:
            raise ValueError("n_jobs must be non-negative")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.min_runtime <= 0 or self.max_runtime < self.min_runtime:
            raise ValueError("invalid runtime bounds")
        if len(self.hourly_profile) != 24:
            raise ValueError("hourly_profile must have 24 entries")


def _sample_arrivals(cfg: ThetaTraceConfig, rng: np.random.Generator) -> np.ndarray:
    """Thinned-Poisson arrivals with diurnal/weekly modulation."""
    if cfg.n_jobs == 0:
        return np.zeros(0)
    if not cfg.diurnal:
        gaps = rng.exponential(cfg.mean_interarrival, size=cfg.n_jobs)
        return np.cumsum(gaps)
    profile = cfg.hourly_profile / cfg.hourly_profile.mean()
    arrivals = np.empty(cfg.n_jobs)
    t = 0.0
    lam_max = float(profile.max()) / cfg.mean_interarrival
    count = 0
    while count < cfg.n_jobs:
        t += rng.exponential(1.0 / lam_max)
        hour = int(t // 3600) % 24
        day = int(t // 86400) % 7
        intensity = profile[hour] * (cfg.weekend_factor if day >= 5 else 1.0)
        if rng.random() < intensity / profile.max():
            arrivals[count] = t
            count += 1
    return arrivals


def _sample_nodes(cfg: ThetaTraceConfig, rng: np.random.Generator, n: int) -> np.ndarray:
    """Mixture node-count distribution capped at the machine size."""
    max_pow = int(np.log2(cfg.total_nodes)) if cfg.total_nodes > 1 else 0
    nodes = np.empty(n, dtype=np.int64)
    kind = rng.random(n)
    for i in range(n):
        if kind[i] < cfg.p_capability:
            # Capability run: 50-100% of the machine.
            nodes[i] = rng.integers(cfg.total_nodes // 2, cfg.total_nodes + 1)
        elif kind[i] < cfg.p_capability + cfg.p_power_of_two:
            # Power-of-two request, biased toward mid sizes.
            exponent = rng.binomial(max_pow, 0.45)
            nodes[i] = 2**exponent
        else:
            # Small geometric tail (debug / single-node work).
            nodes[i] = min(cfg.total_nodes, 1 + rng.geometric(1.0 / cfg.small_job_mean))
    return np.clip(nodes, 1, cfg.total_nodes)


def _sample_runtimes(cfg: ThetaTraceConfig, rng: np.random.Generator, n: int) -> np.ndarray:
    runtimes = rng.lognormal(cfg.runtime_log_mean, cfg.runtime_log_sigma, size=n)
    return np.clip(runtimes, cfg.min_runtime, cfg.max_runtime)


def _sample_walltimes(
    cfg: ThetaTraceConfig, rng: np.random.Generator, runtimes: np.ndarray
) -> np.ndarray:
    factor = rng.uniform(1.0, cfg.max_overestimate, size=runtimes.size)
    walltimes = runtimes * factor
    round_mask = rng.random(runtimes.size) < cfg.p_round_walltime
    walltimes[round_mask] = np.ceil(walltimes[round_mask] / 3600.0) * 3600.0
    return np.maximum(walltimes, runtimes)


def generate_theta_trace(
    cfg: ThetaTraceConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> list[Job]:
    """Generate a Theta-like job trace.

    Returns jobs sorted by submit time with sequential ids starting at 1.
    Only the node resource is populated; burst-buffer / power requests
    are layered on by :mod:`repro.workload.darshan` and
    :mod:`repro.workload.suites`.
    """
    cfg = cfg or ThetaTraceConfig()
    rng = as_generator(seed)
    arrivals = _sample_arrivals(cfg, rng)
    nodes = _sample_nodes(cfg, rng, cfg.n_jobs)
    runtimes = _sample_runtimes(cfg, rng, cfg.n_jobs)
    walltimes = _sample_walltimes(cfg, rng, runtimes)
    return [
        Job(
            job_id=i + 1,
            submit_time=float(arrivals[i]),
            runtime=float(runtimes[i]),
            walltime=float(walltimes[i]),
            requests={cfg.node_resource: int(nodes[i])},
        )
        for i in range(cfg.n_jobs)
    ]
