"""Standard Workload Format (SWF) support.

The Parallel Workloads Archive distributes production traces (including
the ANL traces the paper's group uses) in SWF: one job per line, 18
whitespace-separated fields, ``;`` comment lines. We map the subset of
fields the scheduler needs onto :class:`~repro.workload.job.Job` and add
an extension convention for multi-resource requests: comment header lines
of the form ``; X-Resource: <name>`` declare extra per-job columns
appended after field 18.

This lets users plug a real Theta SWF trace (optionally extended with
burst-buffer columns) into every experiment in place of the synthetic
generator.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.workload.job import Job

__all__ = ["parse_swf", "write_swf"]

# SWF field indices (0-based) of the columns we consume.
_SUBMIT = 1
_RUN = 3
_PROCS = 4
_REQ_PROCS = 7
_REQ_TIME = 8
_STATUS = 10
_N_FIELDS = 18


def parse_swf(
    path: str | os.PathLike,
    node_resource: str = "node",
    max_jobs: int | None = None,
    include_failed: bool = False,
    strict: bool = True,
) -> list[Job]:
    """Parse an SWF file into a list of :class:`Job`.

    Parameters
    ----------
    node_resource:
        Name under which requested processors are recorded in
        ``Job.requests``.
    max_jobs:
        Stop after this many jobs (useful for quick experiments).
    include_failed:
        SWF status 0 marks failed jobs; they are skipped by default.
    strict:
        Malformed lines (fewer than 18 fields, or non-numeric values in
        a consumed column) raise :class:`ValueError` by default; with
        ``strict=False`` they are skipped — real archive traces
        occasionally carry truncated trailing lines.
    """
    extra_resources: list[str] = []
    jobs: list[Job] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith(";"):
                body = line.lstrip("; ").strip()
                if body.lower().startswith("x-resource:"):
                    extra_resources.append(body.split(":", 1)[1].strip())
                continue
            fields = line.split()
            if len(fields) < _N_FIELDS:
                if strict:
                    raise ValueError(
                        f"malformed SWF line ({len(fields)} fields): {line!r}"
                    )
                continue
            try:
                job = _job_from_fields(
                    fields, node_resource, extra_resources, include_failed
                )
            except ValueError:
                if strict:
                    raise ValueError(f"malformed SWF line: {line!r}")
                continue
            if job is not None:
                jobs.append(job)
                if max_jobs is not None and len(jobs) >= max_jobs:
                    break
    jobs.sort(key=lambda j: (j.submit_time, j.job_id))
    return jobs


def _job_from_fields(
    fields: list[str],
    node_resource: str,
    extra_resources: list[str],
    include_failed: bool,
) -> Job | None:
    status = int(float(fields[_STATUS]))
    if status == 0 and not include_failed:
        return None
    runtime = float(fields[_RUN])
    if runtime <= 0:
        return None
    procs = int(float(fields[_REQ_PROCS]))
    if procs <= 0:
        procs = int(float(fields[_PROCS]))
    if procs <= 0:
        return None
    req_time = float(fields[_REQ_TIME])
    if req_time <= 0:
        req_time = runtime
    requests = {node_resource: procs}
    for offset, name in enumerate(extra_resources):
        column = _N_FIELDS + offset
        if column < len(fields):
            requests[name] = max(0, int(float(fields[column])))
    return Job(
        job_id=int(float(fields[0])),
        submit_time=max(0.0, float(fields[_SUBMIT])),
        runtime=runtime,
        walltime=max(req_time, runtime),
        requests=requests,
    )


def write_swf(
    path: str | os.PathLike,
    jobs: Iterable[Job],
    node_resource: str = "node",
    extra_resources: Iterable[str] = (),
) -> None:
    """Write jobs to SWF, appending declared extra-resource columns."""
    extra = list(extra_resources)
    with open(path, "w") as handle:
        handle.write("; SWF written by repro.workload.swf\n")
        for name in extra:
            handle.write(f"; X-Resource: {name}\n")
        for job in jobs:
            fields = ["-1"] * _N_FIELDS
            fields[0] = str(job.job_id)
            fields[_SUBMIT] = f"{job.submit_time:.0f}"
            fields[2] = "0"  # wait time (unknown pre-simulation)
            fields[_RUN] = f"{job.runtime:.0f}"
            fields[_PROCS] = str(job.request(node_resource))
            fields[_REQ_PROCS] = str(job.request(node_resource))
            fields[_REQ_TIME] = f"{job.walltime:.0f}"
            fields[_STATUS] = "1"
            for name in extra:
                fields.append(str(job.request(name)))
            handle.write(" ".join(fields) + "\n")
