"""The rigid-job model used throughout the library.

HPC jobs (unlike data-center tasks, §I of the paper) are *rigid*: they
request a fixed number of units of each schedulable resource and hold all
of them for their whole runtime. A job carries:

* static trace fields — submit time, actual runtime, user-supplied
  walltime estimate, and a per-resource request map in *units*
  (compute nodes, burst-buffer units, power units, ...),
* mutable simulation state — start/end times and the allocated unit
  indices, reset between simulator runs so one job list can be replayed
  under many schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Job"]


@dataclass
class Job:
    """A rigid parallel job.

    Parameters
    ----------
    job_id:
        Unique identifier within a trace.
    submit_time:
        Arrival time in seconds from trace start.
    runtime:
        Actual execution time in seconds (known to the simulator only;
        schedulers must use :attr:`walltime`).
    walltime:
        User-supplied runtime estimate in seconds; schedulers and the
        reservation machinery see only this value.
    requests:
        Mapping of resource name to requested units, e.g.
        ``{"node": 16, "burst_buffer": 4}``. Zero-valued entries are
        allowed and mean the job does not use that resource.
    """

    job_id: int
    submit_time: float
    runtime: float
    walltime: float
    requests: dict[str, int]
    # --- mutable simulation state -------------------------------------
    start_time: float | None = field(default=None, compare=False)
    end_time: float | None = field(default=None, compare=False)
    allocation: dict[str, list[int]] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.runtime <= 0:
            raise ValueError(f"job {self.job_id}: runtime must be positive")
        if self.walltime < self.runtime:
            # User estimates are upper bounds; clamp rather than reject so
            # noisy traces remain loadable.
            self.walltime = self.runtime
        if self.submit_time < 0:
            raise ValueError(f"job {self.job_id}: negative submit time")
        for name, amount in self.requests.items():
            if amount < 0:
                raise ValueError(f"job {self.job_id}: negative request for {name}")

    # -- simulation lifecycle ------------------------------------------

    def reset(self) -> None:
        """Clear simulation state so the job can be replayed."""
        self.start_time = None
        self.end_time = None
        self.allocation = {}

    @property
    def started(self) -> bool:
        return self.start_time is not None

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    # -- metrics ---------------------------------------------------------

    @property
    def wait_time(self) -> float:
        """Seconds between submission and start (requires a started job)."""
        if self.start_time is None:
            raise RuntimeError(f"job {self.job_id} has not started")
        return self.start_time - self.submit_time

    @property
    def response_time(self) -> float:
        """Wait time plus runtime (paper §IV-B metric 4 numerator)."""
        return self.wait_time + self.runtime

    @property
    def slowdown(self) -> float:
        """Response time over runtime — the paper's job slowdown."""
        return self.response_time / self.runtime

    def request(self, resource: str) -> int:
        """Units requested of ``resource`` (0 if absent from the map)."""
        return self.requests.get(resource, 0)

    def copy(self) -> "Job":
        """Deep-enough copy: fresh simulation state, shared statics."""
        return Job(
            job_id=self.job_id,
            submit_time=self.submit_time,
            runtime=self.runtime,
            walltime=self.walltime,
            requests=dict(self.requests),
        )
