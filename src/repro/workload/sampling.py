"""Curriculum job sets for the §III-D training strategy.

The paper trains with three kinds of job sets, in a gradual-improvement
order (Fig. 4 shows sampled → real → synthetic converging fastest):

* **sampled** — jobs drawn from the training trace with *controlled*
  Poisson arrivals at the trace's mean inter-arrival time (the easiest
  environment),
* **real** — contiguous slices of the training trace with the original
  bursty arrivals,
* **synthetic** — generator output mimicking the trace's hourly/daily
  arrival patterns and request/runtime distributions (unseen states).

:func:`split_trace` also implements the paper's train/validate/test
split (first 3.5 months / 2 weeks / remainder, expressed as fractions).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator, spawn_generators
from repro.workload.job import Job
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace

__all__ = ["split_trace", "poisson_resample", "synthetic_jobsets", "real_jobsets", "build_curriculum"]


def split_trace(
    jobs: list[Job],
    train_frac: float = 0.70,
    validate_frac: float = 0.10,
) -> tuple[list[Job], list[Job], list[Job]]:
    """Chronological train/validate/test split by submit time.

    The paper uses 3.5 months / 2 weeks / ~1 month of a 5-month trace,
    i.e. roughly 70% / 10% / 20%; fractions are configurable. Each part
    is re-based so its first submit time is 0, and jobs are fresh copies.
    """
    if train_frac < 0 or validate_frac < 0 or train_frac + validate_frac > 1.0:
        raise ValueError("invalid split fractions")
    ordered = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
    n = len(ordered)
    n_train = int(n * train_frac)
    n_val = int(n * validate_frac)
    parts = (ordered[:n_train], ordered[n_train : n_train + n_val], ordered[n_train + n_val :])
    return tuple(_rebase(p) for p in parts)  # type: ignore[return-value]


def _rebase(jobs: list[Job]) -> list[Job]:
    if not jobs:
        return []
    t0 = min(j.submit_time for j in jobs)
    out = []
    for job in jobs:
        new = job.copy()
        new.submit_time = job.submit_time - t0
        out.append(new)
    return out


def mean_interarrival(jobs: list[Job]) -> float:
    """Average gap between consecutive submissions (seconds)."""
    if len(jobs) < 2:
        return 600.0
    times = np.sort([j.submit_time for j in jobs])
    span = float(times[-1] - times[0])
    return max(span / (len(jobs) - 1), 1.0)


def poisson_resample(
    jobs: list[Job],
    n_jobs: int,
    seed: int | np.random.Generator | None = None,
    interarrival: float | None = None,
) -> list[Job]:
    """Sample ``n_jobs`` jobs (with replacement) and give them Poisson
    arrivals at the trace's mean inter-arrival time (§V-B)."""
    if not jobs:
        raise ValueError("cannot resample an empty trace")
    rng = as_generator(seed)
    interarrival = interarrival or mean_interarrival(jobs)
    picks = rng.integers(0, len(jobs), size=n_jobs)
    arrivals = np.cumsum(rng.exponential(interarrival, size=n_jobs))
    out = []
    for i, pick in enumerate(picks):
        new = jobs[pick].copy()
        new.job_id = i + 1
        new.submit_time = float(arrivals[i])
        out.append(new)
    return out


def real_jobsets(jobs: list[Job], n_sets: int) -> list[list[Job]]:
    """Cut the training trace into ``n_sets`` contiguous, re-based slices."""
    if n_sets <= 0:
        raise ValueError("n_sets must be positive")
    size = max(1, len(jobs) // n_sets)
    sets = []
    for i in range(n_sets):
        chunk = jobs[i * size : (i + 1) * size] if i < n_sets - 1 else jobs[(n_sets - 1) * size :]
        if chunk:
            sets.append(_rebase(chunk))
    return sets


def synthetic_jobsets(
    template: ThetaTraceConfig,
    n_sets: int,
    jobs_per_set: int,
    seed: int | np.random.Generator | None = None,
) -> list[list[Job]]:
    """Generate ``n_sets`` synthetic job sets from the trace-shaped
    generator (independent child RNG streams per set)."""
    rngs = spawn_generators(seed, n_sets)
    cfg = ThetaTraceConfig(**{**template.__dict__, "n_jobs": jobs_per_set,
                              "hourly_profile": template.hourly_profile.copy()})
    return [generate_theta_trace(cfg, seed=rng) for rng in rngs]


def build_curriculum(
    train_jobs: list[Job],
    template: ThetaTraceConfig,
    n_sampled: int = 10,
    n_real: int = 10,
    n_synthetic: int = 20,
    jobs_per_set: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> dict[str, list[list[Job]]]:
    """Build the paper's three-phase training curriculum (§III-D).

    Defaults follow §V-B: 10 sampled + 10 real + 20 synthetic job sets.
    Returns ``{"sampled": [...], "real": [...], "synthetic": [...]}``;
    pass the phases to the trainer in whichever order is under study
    (Fig. 4 compares all six orderings).
    """
    rng = as_generator(seed)
    per_set = jobs_per_set or max(1, len(train_jobs) // max(n_real, 1))
    sampled = [
        poisson_resample(train_jobs, per_set, seed=rng) for _ in range(n_sampled)
    ]
    real = real_jobsets(train_jobs, n_real)
    synthetic = synthetic_jobsets(template, n_synthetic, per_set, seed=rng)
    return {"sampled": sampled, "real": real, "synthetic": synthetic}
