"""Workload substrate: job model, trace parsing/generation, paper suites.

The paper evaluates on a five-month 2018 Theta (ALCF) trace extended with
burst-buffer requests mined from Darshan I/O logs, and derives workloads
S1–S5 (Table III) plus power-extended S6–S10 (§V-E). This package builds
each of those pieces:

``job``
    The :class:`Job` model — rigid parallel jobs with per-resource
    requests in units.
``swf``
    Standard Workload Format parser/writer for plugging in real traces.
``theta``
    Statistical Theta-like trace generator (diurnal Poisson arrivals,
    heavy-tailed runtimes, power-of-two-biased node counts).
``darshan``
    Synthetic Darshan I/O record generation and the record→burst-buffer
    request extraction the paper describes (§IV-A).
``suites``
    Table III S1–S5 builders and the §V-E power case-study S6–S10.
``sampling``
    Curriculum job sets (sampled / real / synthetic) for §III-D training.
"""

from repro.workload.darshan import DarshanRecord, extract_bb_requests, generate_darshan_records
from repro.workload.job import Job
from repro.workload.sampling import build_curriculum, poisson_resample, split_trace
from repro.workload.suites import (
    WORKLOAD_SPECS,
    WorkloadSpec,
    build_case_study_workload,
    build_workload,
)
from repro.workload.swf import parse_swf, write_swf
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace

__all__ = [
    "Job",
    "parse_swf",
    "write_swf",
    "ThetaTraceConfig",
    "generate_theta_trace",
    "DarshanRecord",
    "generate_darshan_records",
    "extract_bb_requests",
    "WorkloadSpec",
    "WORKLOAD_SPECS",
    "build_workload",
    "build_case_study_workload",
    "poisson_resample",
    "split_trace",
    "build_curriculum",
]
