"""Synthetic Darshan I/O records and burst-buffer request extraction.

The paper (§IV-A) derives each job's burst-buffer request from its
Darshan I/O log: the bytes moved between compute nodes and the parallel
file system become the job's potential burst-buffer demand. Reported
statistics for the five-month Theta trace:

* 40% of jobs have Darshan records,
* 17.18% of jobs move more than 1 GB,
* transferred volumes range from 1 GB to 285 TB.

Real Darshan logs are not redistributable, so
:func:`generate_darshan_records` samples a heavy-tailed (lognormal)
volume distribution calibrated to those quantiles, and
:func:`extract_bb_requests` performs the same record→request extraction
the paper applies to real logs. The two halves are deliberately separate
so a user with real Darshan data can feed it straight into the second
stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator
from repro.workload.job import Job

__all__ = ["DarshanRecord", "generate_darshan_records", "extract_bb_requests"]

_GB = 1.0
_TB = 1024.0


@dataclass(frozen=True)
class DarshanRecord:
    """Aggregate I/O volume for one job, in GB moved to/from the PFS."""

    job_id: int
    bytes_moved_gb: float

    def __post_init__(self) -> None:
        if self.bytes_moved_gb < 0:
            raise ValueError("bytes_moved_gb must be non-negative")


def generate_darshan_records(
    jobs: list[Job],
    p_has_record: float = 0.40,
    p_over_1gb: float = 0.1718,
    max_volume_gb: float = 285.0 * _TB,
    volume_log_sigma: float = 3.0,
    io_scales_with_nodes: bool = True,
    seed: int | np.random.Generator | None = None,
) -> list[DarshanRecord]:
    """Sample synthetic Darshan records matching the paper's statistics.

    A fraction ``p_has_record`` of jobs get a record. Volumes are drawn
    from a lognormal whose median is placed so that the overall fraction
    of jobs exceeding 1 GB equals ``p_over_1gb``. When
    ``io_scales_with_nodes`` is set, volume is additionally scaled by the
    job's node count relative to the trace mean (bigger jobs move more
    data), preserving the global quantile approximately.
    """
    if not 0.0 <= p_has_record <= 1.0:
        raise ValueError("p_has_record must be in [0, 1]")
    if not 0.0 <= p_over_1gb <= p_has_record:
        raise ValueError("p_over_1gb cannot exceed p_has_record")
    rng = as_generator(seed)
    if not jobs:
        return []

    # Choose lognormal median so P(record) * P(V > 1 GB | record) = p_over_1gb.
    # With V = exp(mu + sigma * Z): P(V > 1) = Phi(mu / sigma).
    from scipy.stats import norm

    conditional = p_over_1gb / p_has_record if p_has_record > 0 else 0.0
    mu = volume_log_sigma * norm.ppf(conditional)  # log-GB

    mean_nodes = float(np.mean([max(1, j.request("node")) for j in jobs]))
    records: list[DarshanRecord] = []
    for job in jobs:
        if rng.random() >= p_has_record:
            continue
        volume = float(np.exp(mu + volume_log_sigma * rng.standard_normal()))
        if io_scales_with_nodes:
            volume *= max(1, job.request("node")) / mean_nodes
        volume = min(volume, max_volume_gb)
        records.append(DarshanRecord(job_id=job.job_id, bytes_moved_gb=volume))
    return records


def extract_bb_requests(
    jobs: list[Job],
    records: list[DarshanRecord],
    bb_unit_gb: float = _TB,
    bb_resource: str = "burst_buffer",
    max_units: int | None = None,
    min_volume_gb: float = 1.0,
) -> list[Job]:
    """Assign burst-buffer requests from Darshan records (paper §IV-A).

    Each job with a record moving at least ``min_volume_gb`` gets a
    burst-buffer request of ``ceil(volume / bb_unit_gb)`` units, capped
    at ``max_units`` (the shared buffer capacity). Jobs are returned as
    fresh copies; inputs are not mutated.
    """
    if bb_unit_gb <= 0:
        raise ValueError("bb_unit_gb must be positive")
    by_id = {r.job_id: r for r in records}
    out: list[Job] = []
    for job in jobs:
        new = job.copy()
        record = by_id.get(job.job_id)
        if record is not None and record.bytes_moved_gb >= min_volume_gb:
            units = int(np.ceil(record.bytes_moved_gb / bb_unit_gb))
            if max_units is not None:
                units = min(units, max_units)
            new.requests[bb_resource] = units
        else:
            new.requests.setdefault(bb_resource, 0)
        out.append(new)
    return out
