"""Paper workload suites: Table III (S1–S5) and the §V-E case study (S6–S10).

Table III derives five workloads from the production trace, spanning
light→heavy burst-buffer contention:

========  ======================  =============  ====================
Workload  Node requests           % jobs w/ BB   BB size range
========  ======================  =============  ====================
S1        as in trace             50%            [5 TB, 285 TB]
S2        as in trace             75%            [5 TB, 285 TB]
S3        as in trace             50%            [20 TB, 285 TB]
S4        as in trace             75%            [20 TB, 285 TB]
S5        half of trace           75%            [20 TB, 285 TB]
========  ======================  =============  ====================

Ranges are expressed here as *fractions of burst-buffer capacity*
(5/1290 … 285/1290 of Theta's 1.26 PB) so the same specs scale to the
miniature system the harness uses. Burst-buffer sizes are sampled from
the synthetic-Darshan empirical distribution truncated to the range,
mirroring the paper's "randomly selected from the original requests
within a certain range".

S6–S10 (case study) replicate S1–S5 and add a per-job power profile:
100–215 W per node (KNL 7230 TDP bounds), 60 W idle, 500 kW facility
budget — scaled by the same system fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.resources import BURST_BUFFER, NODE, POWER, SystemConfig
from repro.utils.rng import as_generator
from repro.workload.darshan import generate_darshan_records
from repro.workload.job import Job

__all__ = [
    "WorkloadSpec",
    "WORKLOAD_SPECS",
    "CASE_STUDY_SPECS",
    "build_workload",
    "build_case_study_workload",
    "powered_system",
    "scaled_power_budget_units",
]

# Theta reference capacities the paper's absolute numbers refer to.
_THETA_BB_TB = 1290.0
_THETA_NODES = 4392
_THETA_POWER_BUDGET_W = 500_000.0

#: Watts represented by one power-resource unit.
POWER_UNIT_W = 100.0
#: Power-profile bounds per node (W): 100 W floor, KNL 7230 TDP 215 W.
POWER_PER_NODE_RANGE = (100.0, 215.0)
#: Idle node power draw (W), per Marincic et al. (PoLiMEr).
IDLE_NODE_POWER_W = 60.0


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table III row, capacity-relative.

    ``bb_lo_frac``/``bb_hi_frac`` bound the sampled burst-buffer request
    as a fraction of total BB capacity; ``node_scale`` multiplies the
    trace node counts (0.5 for S5); ``with_power`` marks case-study rows.
    """

    name: str
    bb_fraction: float
    bb_lo_frac: float
    bb_hi_frac: float
    node_scale: float = 1.0
    with_power: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.bb_fraction <= 1.0:
            raise ValueError("bb_fraction must be in [0, 1]")
        if not 0.0 < self.bb_lo_frac <= self.bb_hi_frac <= 1.0:
            raise ValueError("invalid bb range fractions")
        if self.node_scale <= 0:
            raise ValueError("node_scale must be positive")


def _spec(name: str, frac: float, lo_tb: float, hi_tb: float, node_scale: float = 1.0,
          power: bool = False) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        bb_fraction=frac,
        bb_lo_frac=lo_tb / _THETA_BB_TB,
        bb_hi_frac=hi_tb / _THETA_BB_TB,
        node_scale=node_scale,
        with_power=power,
    )


#: Table III, keyed by workload name.
WORKLOAD_SPECS: dict[str, WorkloadSpec] = {
    "S1": _spec("S1", 0.50, 5.0, 285.0),
    "S2": _spec("S2", 0.75, 5.0, 285.0),
    "S3": _spec("S3", 0.50, 20.0, 285.0),
    "S4": _spec("S4", 0.75, 20.0, 285.0),
    "S5": _spec("S5", 0.75, 20.0, 285.0, node_scale=0.5),
}

#: §V-E case study: same contention shapes plus power profiles.
CASE_STUDY_SPECS: dict[str, WorkloadSpec] = {
    f"S{i + 5}": _spec(f"S{i + 5}", s.bb_fraction, s.bb_lo_frac * _THETA_BB_TB,
                       s.bb_hi_frac * _THETA_BB_TB, s.node_scale, power=True)
    for i, s in ((1, WORKLOAD_SPECS["S1"]), (2, WORKLOAD_SPECS["S2"]),
                 (3, WORKLOAD_SPECS["S3"]), (4, WORKLOAD_SPECS["S4"]),
                 (5, WORKLOAD_SPECS["S5"]))
}


def _empirical_bb_pool(
    base_jobs: list[Job],
    lo_units: float,
    hi_units: float,
    bb_capacity: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Empirical burst-buffer sizes (continuous units) within [lo, hi].

    Mirrors the paper: sizes come from the Darshan-derived request
    distribution, truncated to the spec's range. Sizes stay *continuous*
    here — discretisation to whole units happens at assignment time —
    because rounding first would collapse the S1–S5 distinctions on
    miniature systems. When the truncated empirical pool is too thin
    (tiny traces or aggressive truncation), a log-uniform fill — the
    smooth analogue of the truncated heavy tail — tops it up.
    """
    records = generate_darshan_records(base_jobs, seed=rng)
    scale = bb_capacity / _THETA_BB_TB
    sizes = np.array([r.bytes_moved_gb / 1024.0 * scale for r in records])
    pool = sizes[(sizes >= lo_units) & (sizes <= hi_units)]
    min_pool = max(32, len(base_jobs) // 8)
    if pool.size < min_pool:
        log_lo, log_hi = np.log(lo_units), np.log(max(hi_units, lo_units * (1 + 1e-9)))
        fill = np.exp(rng.uniform(log_lo, log_hi, size=min_pool - pool.size))
        pool = np.concatenate([pool, fill])
    return pool


def build_workload(
    spec: WorkloadSpec | str,
    base_jobs: list[Job],
    system: SystemConfig,
    seed: int | np.random.Generator | None = None,
) -> list[Job]:
    """Instantiate a Table III workload on ``system`` from a base trace.

    Returns fresh job copies; ``base_jobs`` is not mutated. Node counts
    are scaled by ``spec.node_scale`` (min 1) and clipped to capacity;
    the configured fraction of jobs receives a burst-buffer request
    sampled from the empirical range.

    A string ``spec`` is resolved through the workload registry
    (:data:`repro.api.registry.WORKLOADS`), so workloads registered via
    ``@register_workload`` — not just the paper's S1–S10 — build here.
    """
    if isinstance(spec, str):
        from repro.api.registry import WORKLOADS

        return WORKLOADS.get(spec).build(base_jobs, system, seed)
    rng = as_generator(seed)
    node_cap = system.capacity(NODE)
    bb_cap = system.capacity(BURST_BUFFER)
    lo_units = spec.bb_lo_frac * bb_cap
    hi_units = max(lo_units, spec.bb_hi_frac * bb_cap)
    pool = _empirical_bb_pool(base_jobs, lo_units, hi_units, bb_cap, rng)

    jobs: list[Job] = []
    for job in base_jobs:
        new = job.copy()
        nodes = max(1, int(round(job.request(NODE) * spec.node_scale)))
        new.requests[NODE] = min(nodes, node_cap)
        if rng.random() < spec.bb_fraction:
            units = int(np.ceil(rng.choice(pool)))
            new.requests[BURST_BUFFER] = min(max(1, units), bb_cap)
        else:
            new.requests[BURST_BUFFER] = 0
        jobs.append(new)

    if spec.with_power:
        jobs = _attach_power_profiles(jobs, system, rng)
    return jobs


def scaled_power_budget_units(system: SystemConfig) -> int:
    """Facility power budget in units, scaled by node-count fraction.

    The paper fixes 500 kW for 4,392 nodes; a miniature system gets the
    proportional budget so contention fierceness is preserved.
    """
    frac = system.capacity(NODE) / _THETA_NODES
    budget_w = _THETA_POWER_BUDGET_W * frac
    return max(1, int(round(budget_w / POWER_UNIT_W)))


def _attach_power_profiles(
    jobs: list[Job], system: SystemConfig, rng: np.random.Generator
) -> list[Job]:
    """Assign per-job power requests: Uniform(100, 215) W per node.

    A job whose profile would exceed the whole facility budget is
    power-capped at the budget — the dynamic power-capping treatment of
    Sharma et al. that the paper cites — since it could otherwise never
    be scheduled at all.
    """
    lo, hi = POWER_PER_NODE_RANGE
    budget = system.capacity(POWER) if POWER in system.names else None
    for job in jobs:
        per_node_w = rng.uniform(lo, hi)
        total_w = per_node_w * job.request(NODE)
        units = max(1, int(np.ceil(total_w / POWER_UNIT_W)))
        if budget is not None:
            units = min(units, budget)
        job.requests[POWER] = units
    return jobs


def powered_system(system: SystemConfig) -> SystemConfig:
    """The §V-E evaluation system: ``system`` plus the scaled power budget."""
    return system.with_power(scaled_power_budget_units(system))


def build_case_study_workload(
    spec: WorkloadSpec | str,
    base_jobs: list[Job],
    system: SystemConfig,
    seed: int | np.random.Generator | None = None,
) -> tuple[list[Job], SystemConfig]:
    """Build a case-study workload and the matching power-extended system.

    Returns ``(jobs, system_with_power)``; the power budget is scaled
    per :func:`scaled_power_budget_units`. String names resolve through
    the workload registry and must be registered as case-study
    (``with_power``/power-profiled) workloads.
    """
    powered = powered_system(system)
    if isinstance(spec, str):
        from repro.api.registry import WORKLOADS

        entry = WORKLOADS.get(spec)
        if not entry.case_study:
            raise ValueError(f"{entry.name} is not a case-study (power) workload")
        return entry.build(base_jobs, powered, seed), powered
    if not spec.with_power:
        raise ValueError(f"{spec.name} is not a case-study (power) workload")
    return build_workload(spec, base_jobs, powered, seed=seed), powered
