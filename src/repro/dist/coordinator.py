"""Queue-mode grid dispatch: enqueue, spawn workers, reap, collect.

:func:`dispatch_tasks` is what :class:`~repro.exp.runner.ExperimentRunner`
delegates to in ``dispatch="queue"`` mode. It plays the *coordinator*
role of the lease protocol — which is deliberately thin, because the
protocol is serverless: the coordinator just enqueues the deterministic
grid expansion, starts N local worker processes, and then polls the
queue while reaping expired leases until every cell is done. External
workers (``repro work --queue DIR`` on any host sharing the directory)
can join or leave at any point; the coordinator neither knows nor cares
who executes a cell, because completion is defined by the queue state,
not by its children.

Liveness guarantee: if every local worker dies (scripted faults, OOM,
operator SIGKILL) while cells remain and no external worker shows up
within a lease ttl, the coordinator drains the remainder *inline* — the
grid always terminates with the same bit-identical results.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time

from repro.dist.faults import FaultPlan
from repro.dist.queue import WorkQueue
from repro.dist.worker import QueueWorker
from repro.exp.records import ExperimentTask, TaskResult
from repro.obs import runtime as _obs_runtime
from repro.obs.logbridge import get_logger, kv
from repro.obs.metrics import merge_snapshots

__all__ = ["dispatch_tasks", "worker_process_entry"]

_log = get_logger("repro.dist.coordinator")


def worker_process_entry(
    queue_dir: str,
    worker_id: str,
    lease_ttl: float,
    plan: FaultPlan | None,
    modules: tuple[str, ...],
    parent_path: list[str],
) -> None:
    """Subprocess target for a coordinator-spawned worker.

    Mirrors the process-pool initializer contract: a ``spawn``-started
    interpreter first restores the parent's ``sys.path`` and re-imports
    the plugin registration modules so ``@register_*``'d components
    resolve; under ``fork`` both steps are cached no-ops.
    """
    from repro.api.registry import import_plugin_modules

    for entry in parent_path:
        if entry not in sys.path:
            sys.path.append(entry)
    import_plugin_modules(modules)
    QueueWorker(
        WorkQueue(queue_dir, lease_ttl=lease_ttl, create=False),
        worker_id=worker_id,
        faults=plan,
    ).run()


def dispatch_tasks(
    queue_dir: str | os.PathLike,
    tasks: list[ExperimentTask],
    *,
    n_workers: int = 1,
    lease_ttl: float = 30.0,
    poll_interval: float = 0.2,
    mp_start_method: str | None = None,
    trace_dir: str | None = None,
    trace_compact: bool = False,
    batch_episodes: int = 1,
    cell_timeout_s: float | None = None,
    worker_faults: "list[FaultPlan | None] | None" = None,
    inline_fallback: bool = True,
) -> dict[str, TaskResult]:
    """Run ``tasks`` through a shared-directory queue; results by key.

    Enqueues the cells (idempotently — re-dispatching a half-finished
    grid into the same directory resumes it), starts ``n_workers`` local
    worker processes, and coordinates until every cell has a published
    result: reaping expired leases so crashed/straggling workers'
    cells re-issue, and draining inline if all workers are lost with no
    elastic replacement in sight. ``worker_faults`` aligns scripted
    :class:`FaultPlan`\\ s with local worker indices (testing/CI only).
    """
    queue = WorkQueue(queue_dir, lease_ttl=lease_ttl)
    session = _obs_runtime.session
    telemetry_dir = (
        str(session.directory)
        if session is not None and session.directory is not None
        else None
    )
    queue.write_meta(
        trace_dir=trace_dir,
        trace_compact=bool(trace_compact),
        batch_episodes=int(batch_episodes),
        # Late-joining `repro work` processes follow the coordinator's
        # telemetry directory without per-worker flags; same for the
        # per-cell execution deadline.
        **({"cell_timeout_s": float(cell_timeout_s)} if cell_timeout_s else {}),
        **({"telemetry": telemetry_dir} if telemetry_dir else {}),
    )
    keys = queue.enqueue(tasks)
    key_set = set(keys)
    _log.info(
        "grid enqueued",
        extra=kv(queue=str(queue.root), cells=len(key_set), workers=n_workers),
    )

    from repro.api.registry import registration_modules

    if mp_start_method is None:
        mp_start_method = "fork" if sys.platform.startswith("linux") else "spawn"
    context = multiprocessing.get_context(mp_start_method)
    modules = registration_modules()
    faults = list(worker_faults or [])
    procs = []
    for index in range(max(0, n_workers)):
        plan = faults[index] if index < len(faults) else None
        proc = context.Process(
            target=worker_process_entry,
            args=(
                str(queue.root),
                f"w{index}-{os.getpid()}",
                lease_ttl,
                plan,
                modules,
                list(sys.path),
            ),
            daemon=False,
        )
        proc.start()
        procs.append(proc)

    def outstanding() -> list[str]:
        done = queue.done_keys()
        return [k for k in keys if k not in done]

    try:
        fallback_deadline: float | None = None
        while True:
            pending = outstanding()
            if not pending:
                break
            if session is not None:
                session.metrics.gauge("dist.pending").set(len(pending))
            now = time.time()
            for lease in queue.leases.leases():
                if lease.key in key_set and lease.expired(now):
                    if queue.leases.reap(lease.key, now):
                        _log.warning(
                            "coordinator reaped expired lease",
                            extra=kv(key=lease.key, owner=lease.owner),
                        )
            poisoned = [k for k in pending if queue.poisoned(k)]
            if poisoned:
                errors = queue.failure_errors(poisoned[0])
                _log.error(
                    "poisoned cell(s) withdrew the grid",
                    extra=kv(poisoned=len(poisoned), first_key=poisoned[0]),
                )
                raise RuntimeError(
                    f"{len(poisoned)} queue cell(s) failed "
                    f"{queue.failure_count(poisoned[0])} attempt(s) and were "
                    f"withdrawn; first error:\n{errors[-1] if errors else '?'}"
                )
            if all(p.exitcode is not None for p in procs):
                # Every local worker exited with cells still pending
                # (crash-scripted or killed externally). Give an elastic
                # external worker one lease ttl to pick the grid up,
                # then drain inline so the dispatch always terminates.
                if fallback_deadline is None:
                    fallback_deadline = now + lease_ttl
                    _log.warning(
                        "all local workers exited with cells pending; "
                        "waiting one lease ttl for elastic pickup",
                        extra=kv(pending=len(pending), ttl_s=lease_ttl),
                    )
                elif now >= fallback_deadline and inline_fallback:
                    _log.warning(
                        "no elastic worker appeared; draining inline",
                        extra=kv(pending=len(pending)),
                    )
                    QueueWorker(queue, worker_id=f"coord-{os.getpid()}").run()
                    break
            else:
                fallback_deadline = None
            time.sleep(poll_interval)
    finally:
        for proc in procs:
            proc.join(timeout=30.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)

    merged = queue.merged_results()
    quarantined = queue.quarantine_count()
    if quarantined:
        _log.warning(
            "merge detected corrupt record(s); quarantined, not dropped",
            extra=kv(quarantined=quarantined, dir=str(queue.quarantine_dir)),
        )
    missing = [k for k in keys if k not in merged]
    if missing:
        raise RuntimeError(
            f"queue dispatch finished with {len(missing)} unpublished "
            f"cell(s): {missing[:4]}{'…' if len(missing) > 4 else ''}"
        )
    if session is not None:
        session.metrics.gauge("dist.pending").set(0)
        # Roll the workers' published snapshots up into one aggregate
        # beside the coordinator's own metrics (counters/histograms add,
        # gauges latest-wins).
        aggregate = merge_snapshots(queue.worker_metrics())
        if session.directory is not None:
            import json

            (session.directory / "metrics-queue.json").write_text(
                json.dumps(aggregate, sort_keys=True)
            )
        session.event(
            "queue_done",
            cells=len(keys),
            workers_merged=aggregate.get("merged_from", 0),
        )
    _log.info("grid drained", extra=kv(cells=len(keys)))
    return {k: merged[k] for k in keys}
