"""Queue-mode grid dispatch: enqueue, spawn workers, reap, collect.

:func:`dispatch_tasks` is what :class:`~repro.exp.runner.ExperimentRunner`
delegates to in ``dispatch="queue"`` mode. It plays the *coordinator*
role of the lease protocol — which is deliberately thin, because the
protocol is serverless: the coordinator seals the run manifest (the
deterministic grid expansion, published by an atomic batch enqueue —
see :mod:`repro.dist.manifest`), starts N local worker processes, and
then polls the queue while reaping expired leases until every cell is
done. External workers (``repro work --queue DIR`` on any host sharing
the directory) can join or leave at any point; the coordinator neither
knows nor cares who executes a cell, because completion is defined by
the queue state, not by its children.

The coordinator itself is crash-safe. It holds a **leader lease** (the
reserved ``__coordinator__`` key on the ordinary lease board) renewed by
the ordinary heartbeat thread, so any re-invocation of the same dispatch
against the same queue directory does the right thing:

* the previous coordinator is **alive** → attach: poll the queue and
  return the leader's merge once the manifest completes;
* it is **dead** → take over: the stale lease is reaped on expiry (or
  released immediately when the owner is a dead local pid), the
  interrupted enqueue resumes from the manifest state machine, and the
  drain continues from done-markers/journals — merged metrics are
  bit-identical to an uninterrupted run.

Liveness guarantee: if every local worker dies (scripted faults, OOM,
operator SIGKILL) while cells remain and no external worker shows up
within a lease ttl, the coordinator drains the remainder *inline* — the
grid always terminates with the same bit-identical results. With
``supervise=True`` the local workers additionally sit under a
:class:`~repro.dist.supervise.WorkerSupervisor` that respawns crashed
processes with exponential backoff and a crash-loop circuit breaker.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import sys
import time

from repro.dist.faults import FaultInjector, FaultPlan
from repro.dist.manifest import COORDINATOR_KEY, RunManifest, ensure_enqueued
from repro.dist.queue import WorkQueue
from repro.dist.worker import Heartbeat, QueueWorker
from repro.exp.records import ExperimentTask, TaskResult
from repro.obs import runtime as _obs_runtime
from repro.obs.logbridge import get_logger, kv
from repro.obs.metrics import merge_snapshots

__all__ = ["dispatch_tasks", "worker_process_entry"]

_log = get_logger("repro.dist.coordinator")


def worker_process_entry(
    queue_dir: str,
    worker_id: str,
    lease_ttl: float,
    plan: FaultPlan | None,
    modules: tuple[str, ...],
    parent_path: list[str],
    options: dict | None = None,
) -> None:
    """Subprocess target for a coordinator-spawned worker.

    Mirrors the process-pool initializer contract: a ``spawn``-started
    interpreter first restores the parent's ``sys.path`` and re-imports
    the plugin registration modules so ``@register_*``'d components
    resolve; under ``fork`` both steps are cached no-ops. ``options``
    carries extra :class:`QueueWorker` keyword arguments (the
    supervisor uses it for ``wait_for_work``/``cell_timeout_s``/…).
    """
    from repro.api.registry import import_plugin_modules

    for entry in parent_path:
        if entry not in sys.path:
            sys.path.append(entry)
    import_plugin_modules(modules)
    QueueWorker(
        WorkQueue(queue_dir, lease_ttl=lease_ttl, create=False),
        worker_id=worker_id,
        faults=plan,
        **(options or {}),
    ).run()


def _coordinator_owner() -> str:
    """Leader-lease owner id: host-qualified so a reader can tell a
    dead *local* coordinator from one on another host."""
    return f"coord-{socket.gethostname().split('.')[0]}-{os.getpid()}"


def _local_owner_dead(owner: str) -> bool:
    """Whether ``owner`` names a coordinator on *this* host whose pid is
    gone — the fast path that skips the lease-ttl wait on takeover.

    Conservative: any doubt (foreign host, unparseable id, pid alive or
    unprobeable) answers False and the caller falls back to waiting for
    lease expiry.
    """
    if not owner.startswith("coord-"):
        return False
    body = owner[len("coord-"):]
    host, sep, pid_text = body.rpartition("-")
    if not sep or host != socket.gethostname().split(".")[0]:
        return False
    try:
        pid = int(pid_text)
    except ValueError:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except OSError:
        return False  # alive (EPERM) or unprobeable: assume alive
    return False


def _acquire_leadership(
    queue: WorkQueue,
    owner: str,
    keys: list[str],
    poll_interval: float,
) -> dict[str, TaskResult] | None:
    """Claim the coordinator leader lease, or attach to a live leader.

    Returns ``None`` once *this* process holds the lease (possibly
    after taking over from a dead leader), or the finished run's merged
    results when a live leader carried the run to completion while we
    watched — the attach path of a double-invoked ``repro run --queue``.
    """
    session = _obs_runtime.session
    attached = False
    while True:
        if queue.leases.try_claim(COORDINATOR_KEY, owner):
            if attached and session is not None:
                session.event("run_takeover", queue=str(queue.root))
            if attached:
                _log.warning(
                    "previous coordinator gone; taking the run over",
                    extra=kv(queue=str(queue.root), owner=owner),
                )
            return None
        lease = queue.leases.read(COORDINATOR_KEY)
        if lease is None:
            continue  # released/reaped between claim and read: retry
        now = time.time()
        if lease.expired(now):
            queue.leases.reap(COORDINATOR_KEY, now)
            attached = True
            continue
        if _local_owner_dead(lease.owner):
            # Same host, pid gone: no need to wait out the ttl.
            queue.leases.force_release(COORDINATOR_KEY)
            attached = True
            continue
        if not attached:
            attached = True
            _log.info(
                "live coordinator holds this run; attaching",
                extra=kv(queue=str(queue.root), leader=lease.owner),
            )
            if session is not None:
                session.event(
                    "run_attach", queue=str(queue.root), leader=lease.owner
                )
        # A live leader is driving. If it finished a run covering our
        # grid, its merge is our answer; otherwise keep watching.
        try:
            manifest = queue.read_manifest()
        except Exception:
            manifest = None
        if (
            manifest is not None
            and manifest.complete
            and set(keys) <= set(manifest.keys)
        ):
            merged = queue.merged_results()
            if all(k in merged for k in keys):
                _log.info(
                    "attached run complete; returning leader's merge",
                    extra=kv(cells=len(keys)),
                )
                return {k: merged[k] for k in keys}
        time.sleep(poll_interval)


def dispatch_tasks(
    queue_dir: str | os.PathLike,
    tasks: list[ExperimentTask],
    *,
    n_workers: int = 1,
    lease_ttl: float = 30.0,
    poll_interval: float = 0.2,
    mp_start_method: str | None = None,
    trace_dir: str | None = None,
    trace_compact: bool = False,
    batch_episodes: int = 1,
    cell_timeout_s: float | None = None,
    worker_faults: "list[FaultPlan | None] | None" = None,
    inline_fallback: bool = True,
    supervise: bool = False,
    coordinator_faults: "FaultPlan | FaultInjector | None" = None,
) -> dict[str, TaskResult]:
    """Run ``tasks`` through a shared-directory queue; results by key.

    Seals the run manifest and publishes the cells in one atomic batch
    (re-dispatching a half-finished — or half-*enqueued* — grid into
    the same directory resumes it), starts ``n_workers`` local worker
    processes (supervised with respawn/backoff when ``supervise``), and
    coordinates until every cell has a published result: reaping
    expired leases so crashed/straggling workers' cells re-issue, and
    draining inline if all workers are lost with no elastic replacement
    in sight. ``worker_faults`` aligns scripted :class:`FaultPlan`\\ s
    with local worker indices; ``coordinator_faults`` scripts the
    coordinator's own death (``kill_coordinator_at``), defaulting to
    the ``REPRO_DIST_FAULTS`` environment plan (testing/CI only).
    """
    queue = WorkQueue(queue_dir, lease_ttl=lease_ttl)
    if coordinator_faults is None:
        # Only the coordinator-facing fields matter here: spawned
        # workers receive their plans explicitly and never read the
        # environment, so a worker-facing env plan is inert.
        coordinator_faults = FaultPlan.from_env()
    injector = (
        coordinator_faults
        if isinstance(coordinator_faults, FaultInjector)
        else FaultInjector(coordinator_faults)
    )
    session = _obs_runtime.session
    keys = [task.key() for task in tasks]
    key_set = set(keys)

    owner = _coordinator_owner()
    attached = _acquire_leadership(queue, owner, keys, poll_interval)
    if attached is not None:
        return attached
    if session is not None:
        session.event(
            "run_leader", queue=str(queue.root), owner=owner,
            cells=len(key_set),
        )
    heartbeat = Heartbeat(
        queue, COORDINATOR_KEY, owner, lease_ttl / 4.0, injector,
        metrics=session.metrics if session is not None else None,
    )
    heartbeat.start()

    supervisor = None
    procs: list = []
    try:
        telemetry_dir = (
            str(session.directory)
            if session is not None and session.directory is not None
            else None
        )
        context_doc = dict(
            trace_dir=trace_dir,
            trace_compact=bool(trace_compact),
            batch_episodes=int(batch_episodes),
            # Late-joining `repro work` processes follow the
            # coordinator's telemetry directory without per-worker
            # flags; same for the per-cell execution deadline.
            **({"cell_timeout_s": float(cell_timeout_s)} if cell_timeout_s else {}),
            **({"telemetry": telemetry_dir} if telemetry_dir else {}),
        )
        queue.write_meta(**context_doc)
        manifest = ensure_enqueued(
            queue, tasks, context=context_doc, injector=injector
        )
        _log.info(
            "run manifest sealed",
            extra=kv(
                queue=str(queue.root), manifest_run=manifest.run_id,
                generation=manifest.generation, cells=len(key_set),
                workers=n_workers,
            ),
        )

        def outstanding() -> list[str]:
            done = queue.done_keys()
            return [k for k in keys if k not in done]

        pending_now = outstanding()
        if pending_now:
            from repro.api.registry import registration_modules

            if mp_start_method is None:
                mp_start_method = (
                    "fork" if sys.platform.startswith("linux") else "spawn"
                )
            mp_context = multiprocessing.get_context(mp_start_method)
            modules = registration_modules()
            faults = list(worker_faults or [])
            if supervise and n_workers > 0:
                from repro.dist.supervise import WorkerSupervisor

                supervisor = WorkerSupervisor(
                    queue,
                    n_workers,
                    lease_ttl=lease_ttl,
                    cell_timeout_s=cell_timeout_s,
                    spawn_faults=[[plan] for plan in faults],
                    mp_start_method=mp_start_method,
                )
                supervisor.start()
            else:
                for index in range(max(0, n_workers)):
                    plan = faults[index] if index < len(faults) else None
                    proc = mp_context.Process(
                        target=worker_process_entry,
                        args=(
                            str(queue.root),
                            f"w{index}-{os.getpid()}",
                            lease_ttl,
                            plan,
                            modules,
                            list(sys.path),
                        ),
                        daemon=False,
                    )
                    proc.start()
                    procs.append(proc)

        fallback_deadline: float | None = None
        while True:
            pending = outstanding()
            if not pending:
                break
            injector.on_coordinator("dispatch")
            if session is not None:
                session.metrics.gauge("dist.pending").set(len(pending))
            now = time.time()
            for lease in queue.leases.leases():
                if lease.key in key_set and lease.expired(now):
                    if queue.leases.reap(lease.key, now):
                        _log.warning(
                            "coordinator reaped expired lease",
                            extra=kv(key=lease.key, owner=lease.owner),
                        )
            poisoned = [k for k in pending if queue.poisoned(k)]
            if poisoned:
                errors = queue.failure_errors(poisoned[0])
                _log.error(
                    "poisoned cell(s) withdrew the grid",
                    extra=kv(poisoned=len(poisoned), first_key=poisoned[0]),
                )
                raise RuntimeError(
                    f"{len(poisoned)} queue cell(s) failed "
                    f"{queue.failure_count(poisoned[0])} attempt(s) and were "
                    f"withdrawn; first error:\n{errors[-1] if errors else '?'}"
                )
            locals_gone = (
                supervisor.done
                if supervisor is not None
                else all(p.exitcode is not None for p in procs)
            )
            if locals_gone:
                # Every local worker exited (or the supervisor gave up)
                # with cells still pending. Give an elastic external
                # worker one lease ttl to pick the grid up, then drain
                # inline so the dispatch always terminates.
                if fallback_deadline is None:
                    fallback_deadline = now + lease_ttl
                    _log.warning(
                        "all local workers exited with cells pending; "
                        "waiting one lease ttl for elastic pickup",
                        extra=kv(pending=len(pending), ttl_s=lease_ttl),
                    )
                elif now >= fallback_deadline and inline_fallback:
                    _log.warning(
                        "no elastic worker appeared; draining inline",
                        extra=kv(pending=len(pending)),
                    )
                    QueueWorker(queue, worker_id=f"coord-{os.getpid()}").run()
                    break
            else:
                fallback_deadline = None
            time.sleep(poll_interval)
    finally:
        if supervisor is not None:
            supervisor.stop()
        for proc in procs:
            proc.join(timeout=30.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        heartbeat.stop()
        try:
            queue.leases.release(COORDINATOR_KEY, owner)
        except OSError:
            pass  # best-effort: an orphan leader lease ages out

    injector.on_coordinator("merge")
    merged = queue.merged_results()
    quarantined = queue.quarantine_count()
    if quarantined:
        _log.warning(
            "merge detected corrupt record(s); quarantined, not dropped",
            extra=kv(quarantined=quarantined, dir=str(queue.quarantine_dir)),
        )
    missing = [k for k in keys if k not in merged]
    if missing:
        raise RuntimeError(
            f"queue dispatch finished with {len(missing)} unpublished "
            f"cell(s): {missing[:4]}{'…' if len(missing) > 4 else ''}"
        )
    _mark_complete(queue, manifest)
    if session is not None:
        session.metrics.gauge("dist.pending").set(0)
        # Roll the workers' published snapshots up into one aggregate
        # beside the coordinator's own metrics (counters/histograms add,
        # gauges latest-wins).
        aggregate = merge_snapshots(queue.worker_metrics())
        if session.directory is not None:
            import json

            (session.directory / "metrics-queue.json").write_text(
                json.dumps(aggregate, sort_keys=True)
            )
        session.event(
            "queue_done",
            cells=len(keys),
            workers_merged=aggregate.get("merged_from", 0),
        )
    _log.info("grid drained", extra=kv(cells=len(keys)))
    return {k: merged[k] for k in keys}


def _mark_complete(queue: WorkQueue, manifest: RunManifest) -> None:
    """Flip the manifest to ``complete`` once *every* promised cell —
    across all generations, not just this dispatch's — is done; elastic
    ``--wait`` workers key their exit off this. Best-effort: a store
    flake here costs a worker some extra polling, never correctness."""
    from dataclasses import replace

    if manifest.complete:
        return
    try:
        done = queue.done_keys()
        if set(manifest.keys) <= done:
            queue.write_manifest(
                replace(manifest, state="complete", updated_at=time.time())
            )
            session = _obs_runtime.session
            if session is not None:
                session.event(
                    "run_complete", manifest_run=manifest.run_id,
                    cells=len(manifest.keys),
                )
            _log.info(
                "run manifest complete",
                extra=kv(
                    manifest_run=manifest.run_id, cells=len(manifest.keys)
                ),
            )
    except OSError as exc:
        _log.warning(
            "failed to mark run manifest complete; workers will keep "
            "polling",
            extra=kv(error=str(exc)),
        )
