"""The sealed run manifest: what a queue run *is*, durably.

PR 9 made individual queue operations survive a flaky store; the run as
a whole was still defined only by the coordinator process's memory — a
coordinator death left no record of what had been enqueued, how far the
enqueue got, or under what execution context. The manifest closes that
gap: one CRC-sealed JSON document (``queue_dir/manifest.json``, written
through the :class:`~repro.dist.store.Store` seam) recording the grid
expansion (cell keys), the enqueue generation, the execution context
and the run state. Any re-invocation of ``repro run --queue`` reads it
and resumes from done-markers/journals to a bit-identical merge.

The manifest is also the **publication point of the atomic batch
enqueue**. Task specs are written as one batch file (sealed JSONL, one
line per cell — 10⁶ cells become one create instead of 10⁶) into
``staging/``, and only a *sealed* manifest promotes them into
``tasks/``. The resulting state machine::

    (no manifest)  — nothing promised; enqueue starts from scratch
    state=staged   — enqueue in flight; nothing published. A crash here
                     is detectable (the staged manifest + staging files)
                     and the whole generation is re-staged
                     deterministically on resume.
    state=sealed   — the generation is published: the key list is
                     authoritative. A crash between seal and promotion
                     is healed by re-running the (idempotent) promote.
    state=complete — every manifest key has a done marker; elastic
                     ``--wait`` workers use this to exit instead of
                     polling forever.

Re-dispatching a *different* grid into the same queue directory opens a
new generation: the new cells land in a fresh batch file and the key
list grows to the union, so one directory can absorb successive sweeps
without ever re-writing published specs.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, replace

__all__ = [
    "RunManifest",
    "ManifestCorrupt",
    "ensure_enqueued",
    "batch_name",
    "MANIFEST_NAME",
    "MANIFEST_STATES",
    "COORDINATOR_KEY",
]

#: the manifest document, directly under the queue root
MANIFEST_NAME = "manifest.json"

MANIFEST_STATES = ("staged", "sealed", "complete")

#: reserved lease key for the coordinator leader-lease — task keys are
#: config-hash hex digests, so the dunder name can never collide
COORDINATOR_KEY = "__coordinator__"


class ManifestCorrupt(ValueError):
    """The on-disk manifest exists but cannot be trusted (bad CRC,
    unparseable JSON, or a malformed document)."""


def batch_name(generation: int) -> str:
    """The batch spec file name of one enqueue generation."""
    return f"batch-g{generation:04d}.jsonl"


@dataclass(frozen=True)
class RunManifest:
    """One queue run, durably: grid expansion + enqueue state.

    Parameters
    ----------
    run_id:
        Stable identifier of the run (created once, preserved across
        generations and takeovers).
    generation:
        Enqueue generation, 1-based; grows when a later dispatch adds
        cells the manifest does not yet cover.
    keys:
        The full grid expansion — every cell key this run has promised,
        across all generations.
    context:
        Execution context snapshot (trace dir, batching, timeouts, …)
        — the same document published to ``meta.json`` for workers.
    state:
        ``staged`` | ``sealed`` | ``complete`` (see module docstring).
    batches:
        Batch spec files backing the keys, in generation order. A name
        appears here once its generation reached the staging dir; only
        a *sealed* manifest makes it eligible for promotion.
    """

    run_id: str
    generation: int
    keys: tuple[str, ...]
    context: dict
    state: str
    batches: tuple[str, ...] = ()
    created_at: float = 0.0
    updated_at: float = 0.0

    def __post_init__(self) -> None:
        if self.state not in MANIFEST_STATES:
            raise ValueError(
                f"manifest state must be one of {MANIFEST_STATES}, "
                f"got {self.state!r}"
            )
        if not isinstance(self.generation, int) or isinstance(
            self.generation, bool
        ) or self.generation < 1:
            raise ValueError(
                f"manifest generation must be a positive int, "
                f"got {self.generation!r}"
            )
        if not self.run_id or not isinstance(self.run_id, str):
            raise ValueError(f"manifest run_id must be a non-empty string, "
                             f"got {self.run_id!r}")
        object.__setattr__(self, "keys", tuple(str(k) for k in self.keys))
        object.__setattr__(
            self, "batches", tuple(str(b) for b in self.batches)
        )
        object.__setattr__(self, "context", dict(self.context))

    @property
    def complete(self) -> bool:
        return self.state == "complete"

    def to_json_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "generation": self.generation,
            "keys": list(self.keys),
            "context": dict(self.context),
            "state": self.state,
            "batches": list(self.batches),
            "created_at": self.created_at,
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "RunManifest":
        return cls(
            run_id=data["run_id"],
            generation=int(data["generation"]),
            keys=tuple(data["keys"]),
            context=dict(data.get("context", {})),
            state=data["state"],
            batches=tuple(data.get("batches", ())),
            created_at=float(data.get("created_at", 0.0)),
            updated_at=float(data.get("updated_at", 0.0)),
        )


def new_run_id() -> str:
    return uuid.uuid4().hex[:12]


def ensure_enqueued(queue, tasks, *, context=None, injector=None):
    """Drive the queue to a sealed manifest covering ``tasks``; resume
    any interrupted enqueue found on disk.

    Idempotent and crash-resumable at every step: a missing manifest
    starts generation 1; a *staged* manifest (enqueue died in flight —
    nothing was published, because publication is the seal) is re-staged
    deterministically under the same generation; a *sealed*/*complete*
    manifest first finishes any interrupted batch promotion, then opens
    a new generation only for cells it does not already cover (or whose
    specs went missing). ``injector`` receives the coordinator kill
    points (``staged``/``sealed``) for the chaos suite.

    Returns the sealed (or still-complete) :class:`RunManifest`.
    """
    on_point = injector.on_coordinator if injector is not None else (
        lambda point: None
    )
    by_key: dict = {}
    for task in tasks:
        by_key.setdefault(task.key(), task)

    try:
        manifest = queue.read_manifest()
    except ManifestCorrupt as exc:
        # A manifest that cannot be trusted is quarantined (with
        # provenance) and rebuilt — the grid expansion is deterministic,
        # so nothing about the *run* is lost, only the record of it.
        queue.quarantine_manifest(str(exc))
        manifest = None

    if manifest is not None and manifest.state in ("sealed", "complete"):
        # The published key list is authoritative. Finish any
        # interrupted promotion first, then cover what's missing.
        queue.promote_staged(manifest.batches)
        present = set(queue.task_keys())
        promised = set(manifest.keys)
        missing = [
            key for key in by_key
            if key not in promised or key not in present
        ]
        if not missing:
            return manifest
        generation = manifest.generation + 1
        run_id = manifest.run_id
        created_at = manifest.created_at
        keys = tuple(dict.fromkeys((*manifest.keys, *by_key)))
        batches = manifest.batches
        new_tasks = [by_key[key] for key in missing]
    else:
        # No manifest, or a staged one: pre-seal state was never
        # published, so the whole generation is (re)staged from this
        # invocation's deterministic grid expansion.
        generation = manifest.generation if manifest is not None else 1
        run_id = manifest.run_id if manifest is not None else new_run_id()
        created_at = (
            manifest.created_at if manifest is not None else time.time()
        )
        present = set(queue.task_keys())
        keys = tuple(by_key)
        batches = ()
        new_tasks = [t for k, t in by_key.items() if k not in present]

    name = batch_name(generation)
    if new_tasks:
        batches = tuple(dict.fromkeys((*batches, name)))
    manifest = RunManifest(
        run_id=run_id,
        generation=generation,
        keys=keys,
        context=dict(context or {}),
        state="staged",
        batches=batches,
        created_at=created_at,
        updated_at=time.time(),
    )
    queue.write_manifest(manifest)
    on_point("staged")
    if new_tasks:
        queue.stage_batch(new_tasks, name)
    manifest = replace(manifest, state="sealed", updated_at=time.time())
    queue.write_manifest(manifest)
    on_point("sealed")
    queue.promote_staged(manifest.batches)
    return manifest
