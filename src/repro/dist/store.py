"""The storage seam of the distributed layer: every byte through one door.

On a single healthy disk the queue/lease protocol's filesystem calls
may as well be infallible; on the NFS-style shared mounts the 10⁶-cell
sweep targets they are the *primary* failure surface — transient
``EIO``/``ESTALE`` flakes, ``ENOSPC`` on a filled volume, torn writes
from a dying client. :class:`Store` routes every queue, lease and
journal operation through one seam that layers three behaviours the
raw calls lack:

* **Deterministic fault injection** — the worker's
  :class:`~repro.dist.faults.FaultInjector` scripts ``io_faults``
  (errno, torn write, slow IO) on the Nth operation matching a path
  pattern, so integration tests reproduce the same storage failure on
  every run (``REPRO_DIST_FAULTS`` carries the plan to CLI workers).
* **Errno-classified bounded retry** — transient errnos (``EIO``,
  ``ESTALE``, ``ETIMEDOUT``, ``EAGAIN``, …) are retried with
  exponential backoff and *seeded* jitter drawn from a private
  ``random.Random`` keyed by the owner id, so the retry schedule is
  reproducible per worker and never touches experiment RNG. Permanent
  errnos (``ENOSPC``, ``EROFS``, ``EDQUOT``) and exhausted retries
  raise :class:`StoreUnavailable`, the worker's cue to degrade
  gracefully. *Semantic* errnos (``ENOENT``, ``EEXIST``, …) propagate
  untouched — the lease protocol's atomicity is built on them.
* **Line checksums** — journal lines are sealed with a CRC32 suffix
  (:func:`seal_line`/:func:`unseal_line`) and task specs carry a
  ``_crc32`` field (:func:`seal_json_payload`), so interior corruption
  is *detected* at read time and quarantined with provenance instead of
  being silently merged away as if it were a torn tail.

Appends get one extra recovery rule: after a failed append attempt an
unknown number of bytes may have landed, so the retry first terminates
any partial line with a newline before re-appending the full line. The
stranded fragment then fails its checksum on merge and lands in
``quarantine/`` — corruption is accounted for, never double-counted as
a result.
"""

from __future__ import annotations

import errno as _errno
import json
import os
import random
import tempfile
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Store",
    "StoreUnavailable",
    "RetryPolicy",
    "classify_errno",
    "TRANSIENT_ERRNOS",
    "PERMANENT_ERRNOS",
    "seal_line",
    "unseal_line",
    "seal_json_payload",
    "verify_sealed_payload",
    "CHECKSUM_KEY",
]

#: errnos worth retrying: the operation may succeed on the next attempt
#: (NFS client flake, stale handle after a server reboot, timeout).
TRANSIENT_ERRNOS = frozenset({
    _errno.EIO,
    _errno.ESTALE,
    _errno.ETIMEDOUT,
    _errno.EAGAIN,
    _errno.EBUSY,
    _errno.EINTR,
})

#: errnos no retry can fix: the volume is full or read-only. These
#: escalate to StoreUnavailable immediately so the worker can degrade
#: (spool locally) instead of burning its retry budget.
PERMANENT_ERRNOS = frozenset({
    _errno.ENOSPC,
    _errno.EROFS,
    _errno.EDQUOT,
})


def classify_errno(code: int | None) -> str:
    """``"transient"`` | ``"permanent"`` | ``"semantic"`` for an errno.

    Semantic errnos (``ENOENT``, ``EEXIST``, …) are part of the lease
    protocol's contract — losing an ``O_EXCL`` race *is* ``EEXIST`` —
    and must propagate to the caller untouched, never retried.
    """
    if code in TRANSIENT_ERRNOS:
        return "transient"
    if code in PERMANENT_ERRNOS:
        return "permanent"
    return "semantic"


class StoreUnavailable(OSError):
    """The shared store refused an operation beyond repair/retry.

    Raised for permanent errnos and for transient errnos that survived
    the full retry budget. ``op``/``path`` identify the operation;
    ``permanent`` says which escalation path fired. The worker treats
    this as the signal to enter degraded mode (spool locally, keep
    heartbeating, flush on recovery).
    """

    def __init__(self, op: str, path: str, cause: OSError, permanent: bool,
                 attempts: int = 1) -> None:
        reason = "permanent storage error" if permanent else (
            f"transient storage error persisted through {attempts} attempt(s)"
        )
        super().__init__(
            cause.errno or _errno.EIO,
            f"{reason} during {op} on {path}: "
            f"[{_errno.errorcode.get(cause.errno or 0, cause.errno)}] {cause}",
        )
        self.op = op
        self.path = str(path)
        self.permanent = permanent
        self.attempts = attempts


# -- line / payload checksums ---------------------------------------------

#: seal suffix marker on journal lines: ``<json> @crc32=deadbeef``
SEAL_MARK = " @crc32="

#: embedded checksum key on sealed JSON documents (task specs)
CHECKSUM_KEY = "_crc32"


def _crc(text: str) -> str:
    return f"{zlib.crc32(text.encode('utf-8')) & 0xFFFFFFFF:08x}"


def seal_line(text: str) -> str:
    """Append the CRC32 seal: ``<text> @crc32=<8 hex digits>``."""
    return f"{text}{SEAL_MARK}{_crc(text)}"


def unseal_line(line: str) -> tuple[str, bool | None]:
    """Split a (possibly) sealed line into ``(text, verdict)``.

    ``verdict`` is True (seal present and valid), False (seal present
    but the checksum does not match — the line is corrupt), or None
    (no seal: a pre-checksum legacy line or a torn fragment; the caller
    falls back to JSON-parse validation).
    """
    idx = line.rfind(SEAL_MARK)
    if idx < 0:
        return line, None
    text, digest = line[:idx], line[idx + len(SEAL_MARK):]
    if len(digest) != 8:
        return text, False
    return text, _crc(text) == digest


def seal_json_payload(payload: dict) -> dict:
    """A copy of ``payload`` with an embedded ``_crc32`` checksum.

    The checksum covers the canonical (sorted-key) JSON rendering of
    the payload *without* the checksum field, so readers that ignore
    unknown keys keep working and :func:`verify_sealed_payload` can
    re-derive it exactly.
    """
    body = {k: v for k, v in payload.items() if k != CHECKSUM_KEY}
    sealed = dict(body)
    sealed[CHECKSUM_KEY] = _crc(json.dumps(body, sort_keys=True))
    return sealed


def verify_sealed_payload(payload: dict) -> tuple[dict, bool | None]:
    """``(payload without checksum, verdict)`` for a sealed document.

    Verdict semantics match :func:`unseal_line`: None means the
    document predates checksumming (accepted as-is).
    """
    if CHECKSUM_KEY not in payload:
        return payload, None
    body = {k: v for k, v in payload.items() if k != CHECKSUM_KEY}
    return body, _crc(json.dumps(body, sort_keys=True)) == payload[CHECKSUM_KEY]


# -- retry policy ----------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded, bounded jitter.

    The delay before retry *k* (1-based) is
    ``min(max_delay_s, base_delay_s * 2**(k-1)) * (1 + u*jitter)`` with
    ``u`` drawn from a private ``random.Random`` seeded by ``seed``
    (the worker id), so two workers never sync their retry storms yet
    each worker's schedule is exactly reproducible — and the experiment
    RNG (numpy, per-cell ``SeedSequence``) is never touched.
    """

    max_retries: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.25
    seed: str = ""

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("retry delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter!r}")

    def rng(self) -> random.Random:
        """A fresh, deterministically seeded jitter stream."""
        return random.Random(zlib.crc32(self.seed.encode("utf-8")))

    def delays(self) -> list[float]:
        """The full retry schedule (deterministic for a given seed)."""
        rng = self.rng()
        out = []
        for attempt in range(1, self.max_retries + 1):
            base = min(self.max_delay_s, self.base_delay_s * 2 ** (attempt - 1))
            out.append(base * (1.0 + rng.random() * self.jitter))
        return out

    def max_total_wait_s(self) -> float:
        """Upper bound on the summed backoff sleeps (jitter maximal)."""
        total = 0.0
        for attempt in range(1, self.max_retries + 1):
            base = min(self.max_delay_s, self.base_delay_s * 2 ** (attempt - 1))
            total += base * (1.0 + self.jitter)
        return total


# -- the seam --------------------------------------------------------------


class Store:
    """Checked, retried, fault-injectable filesystem operations.

    Parameters
    ----------
    retry:
        The transient-errno :class:`RetryPolicy` (default: 5 attempts,
        50 ms base, 2 s cap). ``RetryPolicy(max_retries=0)`` disables
        retrying without disabling classification.
    faults:
        A :class:`~repro.dist.faults.FaultInjector` whose ``on_io``
        hook scripts deterministic IO failures (tests/CI only).
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry`; retries,
        detected corruption and degraded transitions are counted under
        ``store.*`` names.
    sleep:
        Override for ``time.sleep`` (tests pin the backoff schedule
        without waiting it out).
    """

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        faults=None,
        metrics=None,
        sleep=time.sleep,
    ) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self.metrics = metrics
        self._sleep = sleep
        self._jitter = self.retry.rng()
        #: set after any append attempt fails: the next append on that
        #: path first newline-terminates whatever partial line landed.
        self._append_dirty: set[str] = set()

    # -- bookkeeping ------------------------------------------------------

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _next_delay(self, attempt: int) -> float:
        base = min(
            self.retry.max_delay_s,
            self.retry.base_delay_s * 2 ** (attempt - 1),
        )
        return base * (1.0 + self._jitter.random() * self.retry.jitter)

    def _fire(self, op: str, path: Path) -> dict | None:
        """The scripted fault (if any) matching this op, already counted."""
        if self.faults is None:
            return None
        return self.faults.on_io(op, str(path))

    def _apply_fault(self, fault: dict, handle=None, payload: str | None = None):
        """Carry out one fired fault spec: slow IO, torn write, errno."""
        delay = float(fault.get("delay_s", 0.0))
        if delay > 0:
            self._sleep(delay)
        if fault.get("torn") and handle is not None and payload:
            # A dying writer: a prefix of the bytes lands, then the
            # error surfaces. The stranded fragment is exactly what the
            # checksum/quarantine path exists to catch.
            handle.write(payload[: max(1, len(payload) // 2)].rstrip("\n"))
            handle.flush()
        code = fault.get("errno")
        if code is not None:
            num = getattr(_errno, code) if isinstance(code, str) else int(code)
            raise OSError(num, f"injected fault: {code}")

    def _run(self, op: str, path: Path, fn, fire: bool = True):
        """Execute ``fn`` with fault injection, classification, retry."""
        attempt = 0
        while True:
            try:
                if fire:
                    fault = self._fire(op, path)
                    if fault is not None:
                        self._apply_fault(fault)
                return fn()
            except OSError as exc:
                kind = classify_errno(exc.errno)
                if op == "append":
                    # Unknown how much of the line landed; arm the
                    # newline guard so the retry (or a later append)
                    # never extends a partial line into garbage that
                    # swallows a good record.
                    self._append_dirty.add(str(path))
                if kind == "semantic":
                    raise
                if kind == "permanent":
                    self._count("store.permanent_errors")
                    raise StoreUnavailable(
                        op, str(path), exc, permanent=True,
                        attempts=attempt + 1,
                    ) from exc
                attempt += 1
                self._count("store.retries")
                if attempt > self.retry.max_retries:
                    self._count("store.retry_exhausted")
                    raise StoreUnavailable(
                        op, str(path), exc, permanent=False, attempts=attempt,
                    ) from exc
                if self.metrics is not None:
                    self.metrics.counter(f"store.retried.{op}").inc()
                self._sleep(self._next_delay(attempt))

    # -- operations --------------------------------------------------------

    def read_text(self, path: str | os.PathLike) -> str:
        path = Path(path)
        return self._run("read", path, path.read_text)

    def read_json(self, path: str | os.PathLike) -> dict:
        """Parse a JSON document (parse errors propagate to the caller)."""
        return json.loads(self.read_text(path))

    def stat_mtime(self, path: str | os.PathLike) -> float:
        path = Path(path)
        return self._run("stat", path, lambda: path.stat().st_mtime)

    def atomic_write_json(
        self, path: str | os.PathLike, payload: dict, seal: bool = False
    ) -> None:
        """Write ``payload`` via temp file + ``os.replace`` (idempotent,
        so the retry loop can safely re-run the whole sequence)."""
        path = Path(path)
        if seal:
            payload = seal_json_payload(payload)

        def write() -> None:
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".", suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise

        self._run("write", path, write)

    def atomic_write_text(self, path: str | os.PathLike, text: str) -> None:
        """Write ``text`` whole via temp file + ``os.replace``.

        The batch-enqueue path publishes one sealed-JSONL spec file per
        generation through this: readers see the complete file or no
        file, never a prefix — which is what lets a manifest seal stand
        in for 10⁶ individual spec creates.
        """
        path = Path(path)

        def write() -> None:
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".", suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise

        self._run("write", path, write)

    def fsync_append(self, path: str | os.PathLike, line: str) -> None:
        """Durably append one line: write, flush, ``fsync`` (file, and
        the directory on first create).

        The torn-write fault injects mid-write through the open handle,
        so a scripted partial append leaves exactly the bytes a dying
        NFS client would.
        """
        path = Path(path)

        def append() -> None:
            existed = path.exists()
            payload = line + "\n"
            if str(path) in self._append_dirty:
                # A prior attempt may have stranded a partial line;
                # terminate it so this record starts on a clean line.
                payload = "\n" + payload
            with open(path, "a") as handle:
                fault = self._fire("append", path)
                if fault is not None:
                    self._apply_fault(fault, handle=handle, payload=payload)
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            self._append_dirty.discard(str(path))
            if not existed:
                dir_fd = os.open(path.parent, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)

        self._run("append", path, append, fire=False)

    def create_excl_json(self, path: str | os.PathLike, payload: dict) -> bool:
        """``O_CREAT | O_EXCL`` claim write; False when the race is lost.

        ``FileExistsError`` is semantic (exactly-one-winner is the
        point); transient errors on the *open* retry safely — if an
        earlier attempt did create the file, the retry loses the race
        to itself and the claim ages out as a torn lease, which is the
        conservative outcome.
        """
        path = Path(path)

        def create() -> bool:
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                return False
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            return True

        return self._run("create", path, create)

    def replace(self, src: str | os.PathLike, dst: str | os.PathLike) -> None:
        src, dst = Path(src), Path(dst)
        self._run("replace", dst, lambda: os.replace(src, dst))

    def rename(self, src: str | os.PathLike, dst: str | os.PathLike) -> None:
        """Plain rename — ``FileNotFoundError`` stays semantic (it is
        how a reaper learns it lost the race)."""
        src, dst = Path(src), Path(dst)
        self._run("rename", src, lambda: os.rename(src, dst))

    def unlink(self, path: str | os.PathLike) -> None:
        path = Path(path)
        self._run("unlink", path, path.unlink)
