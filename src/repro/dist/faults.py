"""Deterministic fault injection for the distributed dispatch layer.

A :class:`FaultPlan` scripts what goes wrong and *when*, in terms of
worker decision points rather than wall-clock time, so integration tests
reproduce the same failure on every run:

* ``kill_after_claims=n`` — SIGKILL the worker process the instant it
  wins its *n*-th lease claim (crash holding a lease, nothing published).
* ``kill_before_publish=n`` — SIGKILL just before the *n*-th result
  would be appended (the executed work is lost; the cell re-issues).
* ``drop_heartbeats_after=n`` — the heartbeat thread silently stops
  renewing after *n* beats (simulated straggler/partition: the worker
  keeps executing, its lease expires, the cell is re-issued elsewhere
  and the late publish lands idempotently).
* ``delay_publish_s=t`` — sleep before every publish (publish skew).

Kills are real ``SIGKILL``s delivered to ``os.getpid()`` — no cleanup
handlers run, the lease file stays behind exactly as a crashed host
would leave it.

Plans serialise to JSON and travel to worker subprocesses either by
constructor (in-process dispatch) or through the ``REPRO_DIST_FAULTS``
environment variable (the ``repro work`` CLI), which is how the CI
``dist-smoke`` job scripts its mid-run worker loss.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import asdict, dataclass

__all__ = ["FaultPlan", "FaultInjector", "FAULTS_ENV"]

FAULTS_ENV = "REPRO_DIST_FAULTS"


@dataclass(frozen=True)
class FaultPlan:
    """A scripted set of failures, keyed by worker decision points."""

    kill_after_claims: int | None = None
    kill_before_publish: int | None = None
    drop_heartbeats_after: int | None = None
    delay_publish_s: float = 0.0

    def __post_init__(self) -> None:
        for name in ("kill_after_claims", "kill_before_publish",
                     "drop_heartbeats_after"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise ValueError(
                    f"FaultPlan.{name} must be a positive int or None, "
                    f"got {value!r}"
                )
        if self.delay_publish_s < 0:
            raise ValueError(
                f"FaultPlan.delay_publish_s must be >= 0, "
                f"got {self.delay_publish_s!r}"
            )

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, got {text!r}")
        unknown = set(data) - {f for f in asdict(cls()).keys()}
        if unknown:
            raise ValueError(
                f"unknown fault plan field(s) {sorted(unknown)}; "
                f"allowed: {sorted(asdict(cls()).keys())}"
            )
        return cls(**data)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan scripted in ``REPRO_DIST_FAULTS``, if any."""
        text = os.environ.get(FAULTS_ENV)
        return cls.from_json(text) if text else None


class FaultInjector:
    """Counts decision points and fires the plan's scripted faults."""

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self.claims = 0
        self.publishes = 0
        self.heartbeats = 0

    def _kill_self(self) -> None:
        os.kill(os.getpid(), signal.SIGKILL)

    def on_claim(self, key: str) -> None:
        """Called right after a lease claim is won."""
        self.claims += 1
        if self.plan.kill_after_claims is not None and (
            self.claims >= self.plan.kill_after_claims
        ):
            self._kill_self()

    def on_publish(self, key: str) -> None:
        """Called right before a result is appended to the shard."""
        self.publishes += 1
        if self.plan.kill_before_publish is not None and (
            self.publishes >= self.plan.kill_before_publish
        ):
            self._kill_self()
        if self.plan.delay_publish_s:
            time.sleep(self.plan.delay_publish_s)

    def on_heartbeat(self) -> bool:
        """Whether the heartbeat thread should actually renew."""
        self.heartbeats += 1
        return not (
            self.plan.drop_heartbeats_after is not None
            and self.heartbeats > self.plan.drop_heartbeats_after
        )
