"""Deterministic fault injection for the distributed dispatch layer.

A :class:`FaultPlan` scripts what goes wrong and *when*, in terms of
worker decision points rather than wall-clock time, so integration tests
reproduce the same failure on every run:

* ``kill_after_claims=n`` — SIGKILL the worker process the instant it
  wins its *n*-th lease claim (crash holding a lease, nothing published).
* ``kill_before_publish=n`` — SIGKILL just before the *n*-th result
  would be appended (the executed work is lost; the cell re-issues).
* ``drop_heartbeats_after=n`` — the heartbeat thread silently stops
  renewing after *n* beats (simulated straggler/partition: the worker
  keeps executing, its lease expires, the cell is re-issued elsewhere
  and the late publish lands idempotently).
* ``delay_publish_s=t`` — sleep before every publish (publish skew).
* ``kill_coordinator_at=point`` — SIGKILL the *coordinator* process at
  a named run-lifecycle point: ``staged`` (manifest written, specs not
  yet staged — mid-enqueue), ``sealed`` (manifest sealed, batches not
  yet promoted), ``dispatch`` (inside the dispatch poll loop) or
  ``merge`` (just before the final merge). ``kill_coordinator_nth``
  picks the *n*-th crossing of that point (the dispatch loop crosses
  it every poll), so a resume-then-die-again can be scripted.
* ``io_faults=[{...}, ...]`` — scripted *storage* faults fired by the
  :class:`~repro.dist.store.Store` seam. Each entry scripts one fault::

      {"op": "append", "path": "results/*", "errno": "EIO",
       "nth": 2, "count": 1, "torn": true, "delay_s": 0.0}

  ``op`` names the store operation (``read``/``write``/``append``/
  ``create``/``replace``/``rename``/``unlink``/``stat``, or ``any``);
  ``path`` is an fnmatch pattern against the full path (an implicit
  leading ``*`` makes ``results/*`` match anywhere under the queue);
  the fault fires on the ``nth`` matching operation (1-based) and the
  ``count - 1`` after it (``count: 0`` = forever, e.g. a filled-up
  volume); ``errno`` is the symbolic errno raised (omit for pure
  slow-IO via ``delay_s``); ``torn: true`` additionally strands a
  partial line before the error surfaces (append ops only).

Kills are real ``SIGKILL``s delivered to ``os.getpid()`` — no cleanup
handlers run, the lease file stays behind exactly as a crashed host
would leave it.

Plans serialise to JSON and travel to worker subprocesses either by
constructor (in-process dispatch) or through the ``REPRO_DIST_FAULTS``
environment variable (the ``repro work`` CLI), which is how the CI
``dist-smoke`` job scripts its mid-run worker loss.
"""

from __future__ import annotations

import errno as _errno
import fnmatch
import json
import os
import signal
import time
from collections.abc import Mapping
from dataclasses import asdict, dataclass

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FAULTS_ENV",
    "IO_FAULT_OPS",
    "COORDINATOR_KILL_POINTS",
]

FAULTS_ENV = "REPRO_DIST_FAULTS"

#: run-lifecycle points a ``kill_coordinator_at`` plan may target
COORDINATOR_KILL_POINTS = ("staged", "sealed", "dispatch", "merge")

#: store operations an ``io_faults`` entry may target
IO_FAULT_OPS = frozenset({
    "read", "write", "append", "create", "replace", "rename", "unlink",
    "stat", "any",
})

_IO_FAULT_KEYS = frozenset({
    "op", "path", "errno", "nth", "count", "torn", "delay_s",
})


def _validate_io_fault(entry: Mapping, index: int) -> dict:
    if not isinstance(entry, Mapping):
        raise ValueError(
            f"FaultPlan.io_faults[{index}] must be a mapping, got {entry!r}"
        )
    unknown = set(entry) - _IO_FAULT_KEYS
    if unknown:
        raise ValueError(
            f"unknown io_faults[{index}] field(s) {sorted(unknown)}; "
            f"allowed: {sorted(_IO_FAULT_KEYS)}"
        )
    out = dict(entry)
    op = out.setdefault("op", "any")
    if op not in IO_FAULT_OPS:
        raise ValueError(
            f"io_faults[{index}].op must be one of {sorted(IO_FAULT_OPS)}, "
            f"got {op!r}"
        )
    out.setdefault("path", "*")
    code = out.setdefault("errno", None)
    if code is not None and not hasattr(_errno, str(code)):
        raise ValueError(
            f"io_faults[{index}].errno must be a symbolic errno name "
            f"(e.g. 'EIO', 'ENOSPC', 'ESTALE'), got {code!r}"
        )
    nth = out.setdefault("nth", 1)
    if not isinstance(nth, int) or isinstance(nth, bool) or nth < 1:
        raise ValueError(
            f"io_faults[{index}].nth must be a positive int, got {nth!r}"
        )
    count = out.setdefault("count", 1)
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        raise ValueError(
            f"io_faults[{index}].count must be an int >= 0 (0 = forever), "
            f"got {count!r}"
        )
    out.setdefault("torn", False)
    if not isinstance(out["torn"], bool):
        raise ValueError(
            f"io_faults[{index}].torn must be a bool, got {out['torn']!r}"
        )
    delay = out.setdefault("delay_s", 0.0)
    if not isinstance(delay, (int, float)) or isinstance(delay, bool) or delay < 0:
        raise ValueError(
            f"io_faults[{index}].delay_s must be >= 0, got {delay!r}"
        )
    if out["errno"] is None and not out["delay_s"] and not out["torn"]:
        raise ValueError(
            f"io_faults[{index}] scripts nothing: give errno, torn or delay_s"
        )
    return out


@dataclass(frozen=True)
class FaultPlan:
    """A scripted set of failures, keyed by worker decision points."""

    kill_after_claims: int | None = None
    kill_before_publish: int | None = None
    drop_heartbeats_after: int | None = None
    delay_publish_s: float = 0.0
    #: scripted storage faults, fired through the Store seam (see the
    #: module docstring for the entry schema)
    io_faults: tuple = ()
    #: SIGKILL the coordinator at a run-lifecycle point (see the
    #: module docstring); workers ignore these fields
    kill_coordinator_at: str | None = None
    kill_coordinator_nth: int = 1

    def __post_init__(self) -> None:
        for name in ("kill_after_claims", "kill_before_publish",
                     "drop_heartbeats_after"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise ValueError(
                    f"FaultPlan.{name} must be a positive int or None, "
                    f"got {value!r}"
                )
        if self.kill_coordinator_at is not None and (
            self.kill_coordinator_at not in COORDINATOR_KILL_POINTS
        ):
            raise ValueError(
                f"FaultPlan.kill_coordinator_at must be one of "
                f"{COORDINATOR_KILL_POINTS} or None, "
                f"got {self.kill_coordinator_at!r}"
            )
        nth = self.kill_coordinator_nth
        if not isinstance(nth, int) or isinstance(nth, bool) or nth < 1:
            raise ValueError(
                f"FaultPlan.kill_coordinator_nth must be a positive int, "
                f"got {nth!r}"
            )
        if self.delay_publish_s < 0:
            raise ValueError(
                f"FaultPlan.delay_publish_s must be >= 0, "
                f"got {self.delay_publish_s!r}"
            )
        if isinstance(self.io_faults, Mapping) or isinstance(self.io_faults, str):
            raise ValueError(
                f"FaultPlan.io_faults must be a list of fault mappings, "
                f"got {self.io_faults!r}"
            )
        object.__setattr__(
            self,
            "io_faults",
            tuple(
                _validate_io_fault(entry, i)
                for i, entry in enumerate(self.io_faults)
            ),
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, got {text!r}")
        unknown = set(data) - {f for f in asdict(cls()).keys()}
        if unknown:
            raise ValueError(
                f"unknown fault plan field(s) {sorted(unknown)}; "
                f"allowed: {sorted(asdict(cls()).keys())}"
            )
        return cls(**data)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan scripted in ``REPRO_DIST_FAULTS``, if any."""
        text = os.environ.get(FAULTS_ENV)
        return cls.from_json(text) if text else None


class FaultInjector:
    """Counts decision points and fires the plan's scripted faults."""

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self.claims = 0
        self.publishes = 0
        self.heartbeats = 0
        #: per-point crossings of the coordinator lifecycle
        self.coordinator_points: dict[str, int] = {}
        #: per-io_faults-entry count of operations that matched its
        #: (op, path) selector — the "Nth matching op" clock
        self.io_matches = [0] * len(self.plan.io_faults)
        #: per-entry count of times the fault actually fired
        self.io_fired = [0] * len(self.plan.io_faults)

    def _kill_self(self) -> None:
        os.kill(os.getpid(), signal.SIGKILL)

    def on_claim(self, key: str) -> None:
        """Called right after a lease claim is won."""
        self.claims += 1
        if self.plan.kill_after_claims is not None and (
            self.claims >= self.plan.kill_after_claims
        ):
            self._kill_self()

    def on_publish(self, key: str) -> None:
        """Called right before a result is appended to the shard."""
        self.publishes += 1
        if self.plan.kill_before_publish is not None and (
            self.publishes >= self.plan.kill_before_publish
        ):
            self._kill_self()
        if self.plan.delay_publish_s:
            time.sleep(self.plan.delay_publish_s)

    def on_coordinator(self, point: str) -> None:
        """Called by the coordinator at each run-lifecycle point.

        Counts crossings per point and SIGKILLs the coordinator on the
        plan's ``kill_coordinator_nth``-th crossing of its scripted
        ``kill_coordinator_at`` point — a real kill, leaving the
        manifest/staging/lease state exactly as a dead host would.
        """
        self.coordinator_points[point] = (
            self.coordinator_points.get(point, 0) + 1
        )
        if (
            self.plan.kill_coordinator_at == point
            and self.coordinator_points[point]
            >= self.plan.kill_coordinator_nth
        ):
            self._kill_self()

    def on_heartbeat(self) -> bool:
        """Whether the heartbeat thread should actually renew."""
        self.heartbeats += 1
        return not (
            self.plan.drop_heartbeats_after is not None
            and self.heartbeats > self.plan.drop_heartbeats_after
        )

    @staticmethod
    def _path_matches(pattern: str, path: str) -> bool:
        # fnmatch against the full path with an implicit leading `*`, so
        # "results/*" targets the results dir of any queue root.
        return (
            fnmatch.fnmatch(path, pattern)
            or fnmatch.fnmatch(path, f"*{pattern}")
        )

    def on_io(self, op: str, path: str) -> dict | None:
        """Called by the Store seam before each operation.

        Advances every matching ``io_faults`` entry's match counter and
        returns the first entry whose firing window (``nth`` …
        ``nth + count - 1`` matches; ``count: 0`` = open-ended) covers
        this operation, or None. The *store* applies the fault (raise /
        torn write / delay) — the injector only does the deterministic
        bookkeeping, so counts stay comparable across retries.
        """
        fired: dict | None = None
        for index, fault in enumerate(self.plan.io_faults):
            if fault["op"] != "any" and fault["op"] != op:
                continue
            if not self._path_matches(fault["path"], path):
                continue
            self.io_matches[index] += 1
            clock = self.io_matches[index]
            count = fault["count"]
            in_window = clock >= fault["nth"] and (
                count == 0 or clock < fault["nth"] + count
            )
            if in_window and fired is None:
                self.io_fired[index] += 1
                fired = fault
        return fired
