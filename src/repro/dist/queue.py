"""The shared-directory work queue: grid cells as lease-able task files.

Layout (everything under one ``queue_dir``, shareable over any common
filesystem)::

    queue_dir/
      meta.json                      # execution context (trace dir, …)
      manifest.json                  # CRC-sealed run manifest (repro.dist.manifest)
      staging/batch-g<n>.jsonl       # batch specs awaiting manifest seal
      tasks/<key>.json               # one ExperimentTask spec per cell
      tasks/batch-g<n>.jsonl         # published batch specs (one line per cell)
      leases/<key>.json              # lease protocol (repro.dist.lease)
      done/<key>.json                # completion marker: {worker, host, t}
      failed/<key>-<attempt>.json    # per-attempt execution failures
      results/journal-<worker>.jsonl # per-worker journal shards
      quarantine/<origin>-L<n>.json  # detected-corrupt records + provenance
      workers/<worker>.json          # worker registration + heartbeat
      metrics/<worker>.json          # per-worker metrics snapshots

Cells are written once — by the coordinator or by any worker running the
same deterministic :func:`~repro.exp.runner.grid_tasks` expansion; the
task key is the config hash, so concurrent enqueues of the same grid
collapse to identical files. Coordinators enqueue **in batch**: one
sealed-JSONL spec file per generation lands atomically in ``staging/``
and is published by the run manifest's seal (see
:mod:`repro.dist.manifest`), so a 10⁶-cell grid is one create, and a
half-written enqueue is *detectable and resumable* instead of a silent
race. The per-file :meth:`WorkQueue.enqueue` path remains for elastic
workers racing to enqueue and for old queue directories. Completed cells append to *per-worker*
JSONL journal shards (appenders never contend on one file) which are
merged on read; duplicates from straggler re-issues collapse by key and
are bit-identical by construction (per-cell ``SeedSequence`` seeding).

Storage robustness: every filesystem operation routes through the
:class:`~repro.dist.store.Store` seam (transient-errno retry with
seeded backoff; deterministic fault injection in tests), journal lines
and task specs are CRC32-checksummed, and **interior** corruption —
a bit-flipped line in the middle of a shard, as opposed to the torn
tail of a crashed writer — is detected on merge and moved aside into
``quarantine/`` with provenance instead of being silently dropped.
``repro queue-status`` surfaces the quarantine count; a clean run has
zero.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.dist.lease import LeaseBoard
from repro.dist.manifest import MANIFEST_NAME, ManifestCorrupt, RunManifest
from repro.dist.store import (
    Store,
    seal_line,
    unseal_line,
    verify_sealed_payload,
)
from repro.exp.records import ExperimentTask, TaskResult
from repro.obs.logbridge import get_logger, kv

__all__ = ["WorkQueue", "QueueStatus", "fsync_append"]

_log = get_logger("repro.dist.queue")

#: attempts after which a deterministically-failing cell stops being
#: re-issued (workers skip it; the coordinator raises with the errors)
MAX_ATTEMPTS = 3


def fsync_append(path: Path, line: str) -> None:
    """Durably append one journal line: write, flush, ``fsync``.

    The fsync makes a torn tail a last resort (power loss mid-write)
    rather than the common case (process death with a full OS buffer);
    the directory is fsynced on first create so the file's existence is
    durable too. (Kept as the plain, seam-free primitive; queue writes
    go through :meth:`repro.dist.store.Store.fsync_append`.)
    """
    existed = path.exists()
    with open(path, "a") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    if not existed:
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def _atomic_write_json(path: Path, payload: dict) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


@dataclass
class QueueStatus:
    """One snapshot of a queue's progress (``repro queue-status``)."""

    total: int
    done: int
    leased_live: int
    leased_expired: int
    unclaimed: int
    failed_keys: dict[str, int] = field(default_factory=dict)
    workers: list[dict] = field(default_factory=list)
    #: aggregate throughput from the workers' metrics snapshots
    #: (None when no worker has published a snapshot yet)
    cells_per_sec: float | None = None
    eta_s: float | None = None
    #: detected-corrupt records moved aside on merge (clean run: 0)
    quarantined: int = 0
    #: run-manifest snapshot (run_id/state/generation/cells), or None
    #: for a queue that predates manifests / was never coordinator-run
    manifest: dict | None = None
    #: manifest state shorthand: none | staged | sealed | complete |
    #: corrupt — "staged" means a partial (unsealed) enqueue on disk
    enqueue: str = "none"
    #: results parked on worker-local disk awaiting store recovery,
    #: summed over the workers' metrics snapshots
    spool_backlog: int = 0
    #: the coordinator leader-lease, when one is held
    coordinator: dict | None = None

    @property
    def pending(self) -> int:
        return self.total - self.done

    def to_json_dict(self) -> dict:
        return {
            "total": self.total,
            "done": self.done,
            "pending": self.pending,
            "leased_live": self.leased_live,
            "leased_expired": self.leased_expired,
            "unclaimed": self.unclaimed,
            "failed": dict(self.failed_keys),
            "workers": list(self.workers),
            "cells_per_sec": self.cells_per_sec,
            "eta_s": self.eta_s,
            "quarantined": self.quarantined,
            "manifest": dict(self.manifest) if self.manifest else None,
            "enqueue": self.enqueue,
            "spool_backlog": self.spool_backlog,
            "coordinator": dict(self.coordinator) if self.coordinator else None,
        }

    def summary(self) -> str:
        lines = [
            f"cells: {self.done}/{self.total} done, "
            f"{self.leased_live} leased, {self.leased_expired} expired-lease, "
            f"{self.unclaimed} unclaimed"
        ]
        if self.cells_per_sec is not None:
            line = f"throughput: {self.cells_per_sec:.2f} cells/s"
            if self.eta_s is not None:
                from repro.obs.progress import format_duration

                line += f", eta {format_duration(self.eta_s)}"
            lines.append(line)
        if self.failed_keys:
            worst = max(self.failed_keys.values())
            lines.append(
                f"failed attempts on {len(self.failed_keys)} cell(s) "
                f"(worst {worst}/{MAX_ATTEMPTS})"
            )
        if self.quarantined:
            lines.append(
                f"QUARANTINE: {self.quarantined} corrupt record(s) moved "
                f"aside (see queue_dir/quarantine/)"
            )
        if self.manifest:
            lines.append(
                f"run {self.manifest.get('run_id', '?')}: "
                f"enqueue {self.enqueue}, "
                f"generation {self.manifest.get('generation', '?')}"
            )
        elif self.enqueue not in ("none", ""):
            lines.append(f"enqueue {self.enqueue}")
        if self.spool_backlog:
            lines.append(
                f"SPOOL: {self.spool_backlog} result(s) parked on "
                f"worker-local disk awaiting store recovery"
            )
        if self.coordinator:
            state = "live" if self.coordinator.get("live") else "EXPIRED"
            lines.append(
                f"coordinator {self.coordinator.get('owner', '?')} "
                f"({state} lease)"
            )
        now = time.time()
        for worker in self.workers:
            # Clamp: last_seen is the *writer's* clock; on a skewed host
            # it can sit ahead of ours, and a negative age would report
            # bogus liveness.
            age = max(0.0, now - worker.get("last_seen", now))
            lines.append(
                f"worker {worker.get('worker_id', '?'):<20} "
                f"{worker.get('hostname', '?'):<12} "
                f"cells={worker.get('cells_done', 0):<4} "
                f"seen {age:5.1f}s ago"
            )
        return "\n".join(lines)


class WorkQueue:
    """One shared-directory queue of lease-able experiment cells."""

    def __init__(
        self,
        root: str | os.PathLike,
        lease_ttl: float = 30.0,
        create: bool = True,
        store: Store | None = None,
    ) -> None:
        self.root = Path(root)
        if not create and not self.root.is_dir():
            raise FileNotFoundError(f"work queue not found: {self.root}")
        self.store = store if store is not None else Store()
        self.tasks_dir = self.root / "tasks"
        self.done_dir = self.root / "done"
        self.failed_dir = self.root / "failed"
        self.results_dir = self.root / "results"
        self.quarantine_dir = self.root / "quarantine"
        self.workers_dir = self.root / "workers"
        self.metrics_dir = self.root / "metrics"
        self.staging_dir = self.root / "staging"
        if create:
            for path in (
                self.root, self.tasks_dir, self.done_dir, self.failed_dir,
                self.results_dir, self.quarantine_dir, self.workers_dir,
                self.metrics_dir, self.staging_dir,
            ):
                path.mkdir(parents=True, exist_ok=True)
        self.leases = LeaseBoard(
            self.root / "leases", ttl=lease_ttl, store=self.store
        )
        # Published batch files are immutable (re-publication is a new
        # generation under a new name), so their parsed specs are cached
        # by filename for the lifetime of this queue handle.
        self._batch_cache: dict[str, dict[str, dict]] = {}

    def use_store(self, store: Store) -> None:
        """Route this queue (and its lease board) through ``store``.

        Workers install their own seam here so retries count into the
        worker's metrics and scripted IO faults hit every queue/lease
        operation the worker performs.
        """
        self.store = store
        self.leases.store = store

    # -- execution context ------------------------------------------------

    def write_meta(self, **meta) -> None:
        """Publish shared execution context (trace dir, batching, …).

        Written by whoever enqueues the grid so that late-joining
        ``repro work`` processes agree on where trace artifacts go
        without per-worker flags.
        """
        self.store.atomic_write_json(self.root / "meta.json", meta)

    def read_meta(self) -> dict:
        try:
            return self.store.read_json(self.root / "meta.json")
        except (FileNotFoundError, json.JSONDecodeError):
            return {}

    # -- run manifest ------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def read_manifest(self) -> RunManifest | None:
        """The run manifest, or None for a queue that never had one.

        Raises :class:`~repro.dist.manifest.ManifestCorrupt` when a
        manifest exists but cannot be trusted (bad CRC, unparseable
        JSON, malformed document) — callers decide whether to
        quarantine-and-rebuild (the coordinator) or merely report (the
        doctor, ``queue-status``).
        """
        try:
            payload = self.store.read_json(self.manifest_path)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            raise ManifestCorrupt(f"manifest is not JSON: {exc}") from None
        body, verdict = verify_sealed_payload(payload)
        if verdict is False:
            raise ManifestCorrupt("manifest failed its CRC32 checksum")
        try:
            return RunManifest.from_json_dict(body)
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestCorrupt(f"manifest is malformed: {exc}") from None

    def write_manifest(self, manifest: RunManifest) -> None:
        """Atomically publish ``manifest`` (CRC-sealed, last-wins)."""
        self.store.atomic_write_json(
            self.manifest_path, manifest.to_json_dict(), seal=True
        )

    def quarantine_manifest(self, reason: str) -> None:
        """Move an untrustworthy manifest aside, with provenance."""
        try:
            raw = self.manifest_path.read_text()
        except OSError:
            raw = ""
        self._quarantine("manifest", 1, raw, reason)
        try:
            self.store.unlink(self.manifest_path)
        except FileNotFoundError:
            pass

    # -- batch specs -------------------------------------------------------

    def stage_batch(self, tasks: list[ExperimentTask], name: str) -> Path:
        """Write one generation's specs as a single sealed-JSONL file in
        ``staging/`` — unpublished until the manifest seal promotes it.

        One atomic create for the whole generation (the 10⁶-cells →
        10⁶-creates fix), deterministic content for a deterministic
        grid, so re-staging after a crash rewrites the identical file.
        """
        self.staging_dir.mkdir(parents=True, exist_ok=True)
        lines = [
            seal_line(json.dumps(
                {"key": task.key(), "spec": task.to_json_dict()},
                sort_keys=True,
            ))
            for task in tasks
        ]
        path = self.staging_dir / name
        self.store.atomic_write_text(path, "\n".join(lines) + "\n")
        return path

    def promote_staged(self, names: tuple[str, ...] | list[str]) -> list[str]:
        """Move sealed batch files from ``staging/`` into ``tasks/``.

        Idempotent: a name with nothing in staging was already promoted
        (or never staged on this generation) and is skipped. Only ever
        called with the batch list of a *sealed* manifest — the seal is
        the publication point.
        """
        promoted = []
        for name in names:
            src = self.staging_dir / name
            try:
                self.store.replace(src, self.tasks_dir / name)
            except FileNotFoundError:
                continue
            promoted.append(name)
        return promoted

    def _load_batch(self, path: Path) -> dict[str, dict]:
        """Parse one published batch file into ``{key: spec_dict}``.

        Corrupt lines are quarantined with provenance and skipped — the
        coordinator's resume path re-stages any key whose spec went
        missing, so a mangled line costs a re-enqueue, not a cell.
        """
        cached = self._batch_cache.get(path.name)
        if cached is not None:
            return cached
        try:
            text = self.store.read_text(path)
        except FileNotFoundError:
            return {}
        specs: dict[str, dict] = {}
        for line_no, line in enumerate(text.split("\n")):
            stripped = line.strip()
            if not stripped:
                continue
            body, verdict = unseal_line(stripped)
            if verdict is False:
                self._quarantine(
                    path.name, line_no + 1, stripped,
                    "batch spec line checksum mismatch",
                )
                continue
            try:
                record = json.loads(body)
                key = record["key"]
                spec = record["spec"]
            except (json.JSONDecodeError, KeyError, TypeError):
                self._quarantine(
                    path.name, line_no + 1, stripped,
                    "batch spec line failed to parse",
                )
                continue
            specs.setdefault(str(key), spec)
        self._batch_cache[path.name] = specs
        return specs

    def _batch_specs(self) -> dict[str, dict]:
        """Every published batch spec, merged across generations."""
        merged: dict[str, dict] = {}
        for path in sorted(self.tasks_dir.glob("batch-*.jsonl")):
            for key, spec in self._load_batch(path).items():
                merged.setdefault(key, spec)
        return merged

    # -- task records -----------------------------------------------------

    def enqueue(self, tasks: list[ExperimentTask]) -> list[str]:
        """Write task specs for every cell; returns their keys.

        Idempotent: a key whose spec file already exists is left alone
        (its content is identical by construction — the key *is* the
        config hash), so any number of workers may race to enqueue the
        same deterministic grid expansion. Specs are written with an
        embedded CRC32 so a worker can detect on-disk corruption before
        executing garbage.
        """
        keys = []
        for task in tasks:
            key = task.key()
            keys.append(key)
            path = self.tasks_dir / f"{key}.json"
            if not path.exists():
                self.store.atomic_write_json(
                    path, task.to_json_dict(), seal=True
                )
        return keys

    def task_keys(self) -> list[str]:
        """Every enqueued cell key, sorted for a stable scan order.

        The union of per-file specs (``tasks/<key>.json``) and published
        batch specs (``tasks/batch-g<n>.jsonl`` lines) — the two enqueue
        paths coexist in one directory.
        """
        keys = {path.stem for path in self.tasks_dir.glob("*.json")}
        keys.update(self._batch_specs())
        return sorted(keys)

    def load_task(self, key: str) -> ExperimentTask:
        """Load and checksum-verify one task spec.

        Per-file specs win over batch lines (both are keyed by the
        config hash, so the content is identical by construction). A
        spec that fails its checksum (or no longer parses) is
        quarantined with provenance and raises — executing a corrupted
        spec would publish a result under a key that no longer matches
        its content.
        """
        path = self.tasks_dir / f"{key}.json"
        try:
            text = self.store.read_text(path)
        except FileNotFoundError:
            spec = self._batch_specs().get(key)
            if spec is None:
                raise
            return ExperimentTask.from_json_dict(spec)
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            self._quarantine(f"task-{key}", 1, text, "task spec is not JSON")
            raise ValueError(
                f"task spec for {key} is corrupt (unparseable JSON); "
                f"quarantined under {self.quarantine_dir}"
            ) from None
        body, verdict = verify_sealed_payload(payload)
        if verdict is False:
            self._quarantine(
                f"task-{key}", 1, text, "task spec checksum mismatch"
            )
            raise ValueError(
                f"task spec for {key} failed its CRC32 checksum; "
                f"quarantined under {self.quarantine_dir}"
            )
        return ExperimentTask.from_json_dict(body)

    # -- completion -------------------------------------------------------

    def is_done(self, key: str) -> bool:
        return (self.done_dir / f"{key}.json").exists()

    def done_keys(self) -> set[str]:
        return {path.stem for path in self.done_dir.glob("*.json")}

    def mark_done(self, key: str, worker_id: str) -> None:
        """Write the O(1) completion marker (idempotent last-wins)."""
        self.store.atomic_write_json(
            self.done_dir / f"{key}.json",
            {"worker_id": worker_id, "hostname": socket.gethostname(),
             "finished_at": time.time()},
        )

    # -- failures ---------------------------------------------------------

    def record_failure(self, key: str, worker_id: str, error: str) -> int:
        """Record one failed execution attempt; returns the new count."""
        attempt = self.failure_count(key) + 1
        self.store.atomic_write_json(
            self.failed_dir / f"{key}-{attempt}-{worker_id}.json",
            {"key": key, "worker_id": worker_id, "attempt": attempt,
             "error": error, "at": time.time()},
        )
        return self.failure_count(key)

    def failure_count(self, key: str) -> int:
        return sum(1 for _ in self.failed_dir.glob(f"{key}-*.json"))

    def failures(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for path in self.failed_dir.glob("*.json"):
            key = path.stem.split("-")[0]
            counts[key] = counts.get(key, 0) + 1
        return counts

    def poisoned(self, key: str) -> bool:
        """Whether ``key`` has exhausted its re-issue budget."""
        return self.failure_count(key) >= MAX_ATTEMPTS

    def failure_errors(self, key: str) -> list[str]:
        out = []
        for path in sorted(self.failed_dir.glob(f"{key}-*.json")):
            try:
                out.append(self.store.read_json(path).get("error", "?"))
            except (json.JSONDecodeError, OSError):
                continue
        return out

    # -- quarantine -------------------------------------------------------

    def _quarantine(
        self, origin: str, line_no: int, raw: str, reason: str
    ) -> None:
        """Move one detected-corrupt record aside, with provenance.

        Idempotent: the record name hashes the raw bytes, so re-merging
        the same corrupt shard never double-counts. Quarantining is
        best-effort — a store failure here is logged, not raised, so a
        flaky quarantine write can never take down a merge.
        """
        import zlib

        digest = f"{zlib.crc32(raw.encode('utf-8', 'replace')) & 0xFFFFFFFF:08x}"
        name = f"{origin}-L{line_no}-{digest}.json"
        record = {
            "origin": origin,
            "line_no": line_no,
            "reason": reason,
            "raw": raw[:4096],
            "detected_at": time.time(),
            "detected_by": f"{socket.gethostname()}-{os.getpid()}",
        }
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            path = self.quarantine_dir / name
            if not path.exists():
                self.store.atomic_write_json(path, record)
        except OSError as exc:
            _log.warning(
                "failed to write quarantine record",
                extra=kv(origin=origin, line_no=line_no, error=str(exc)),
            )
        else:
            _log.warning(
                "quarantined corrupt record",
                extra=kv(origin=origin, line_no=line_no, reason=reason),
            )
            if self.store.metrics is not None:
                self.store.metrics.counter("store.quarantined").inc()

    def quarantined(self) -> list[dict]:
        """Every quarantine record (missing dir → [])."""
        out = []
        for path in sorted(self.quarantine_dir.glob("*.json")):
            try:
                out.append(self.store.read_json(path))
            except (json.JSONDecodeError, OSError):
                continue
        return out

    def quarantine_count(self) -> int:
        return sum(1 for _ in self.quarantine_dir.glob("*.json"))

    # -- journal shards ---------------------------------------------------

    def shard_path(self, worker_id: str) -> Path:
        return self.results_dir / f"journal-{worker_id}.jsonl"

    def publish(self, worker_id: str, result: TaskResult) -> None:
        """Durably append ``result`` to the worker's own journal shard,
        then flip the done marker. Ordering matters: a crash between the
        two re-issues the cell, and the duplicate row merges away. Lines
        carry a CRC32 seal so later corruption is detected, not merged.
        """
        self.store.fsync_append(
            self.shard_path(worker_id),
            seal_line(json.dumps(result.to_json_dict(), sort_keys=True)),
        )
        self.mark_done(result.key, worker_id)

    def merged_results(self) -> dict[str, TaskResult]:
        """All shards merged by key — corruption detected, not absorbed.

        Duplicate keys across shards come only from straggler re-issues
        and are bit-identical by construction, so the first shard wins.
        Three kinds of bad line are distinguished:

        * a **torn tail** — the last non-empty line of a shard failing
          to parse, with no checksum seal: the writer died mid-append.
          Skipped silently; the cell re-issues (pre-seam behaviour).
        * **interior corruption** — any other unparseable line, or any
          line whose CRC32 seal does not match: the storage layer
          mangled a record that was once written whole. Quarantined
          with provenance, never silently dropped.
        * a **sealed-but-unparseable** line — checksum matches, JSON
          decode still fails (writer bug): quarantined too.
        """
        merged: dict[str, TaskResult] = {}
        for shard in sorted(self.results_dir.glob("journal-*.jsonl")):
            try:
                text = self.store.read_text(shard)
            except FileNotFoundError:
                continue
            lines = text.split("\n")
            last_content = max(
                (i for i, line in enumerate(lines) if line.strip()),
                default=-1,
            )
            for line_no, line in enumerate(lines):
                stripped = line.strip()
                if not stripped:
                    continue
                body, verdict = unseal_line(stripped)
                if verdict is False:
                    self._quarantine(
                        shard.name, line_no + 1, stripped,
                        "journal line checksum mismatch",
                    )
                    continue
                try:
                    result = TaskResult.from_json_dict(json.loads(body))
                except (json.JSONDecodeError, KeyError, ValueError, TypeError):
                    if verdict is True:
                        self._quarantine(
                            shard.name, line_no + 1, stripped,
                            "sealed journal line failed to parse",
                        )
                    elif line_no == last_content:
                        pass  # torn tail of a crashed worker
                    else:
                        self._quarantine(
                            shard.name, line_no + 1, stripped,
                            "interior journal corruption (unsealed)",
                        )
                    continue
                merged.setdefault(result.key, result)
        return merged

    # -- worker registry --------------------------------------------------

    def register_worker(self, worker_id: str, **info) -> None:
        self.store.atomic_write_json(
            self.workers_dir / f"{worker_id}.json",
            {"worker_id": worker_id, "hostname": socket.gethostname(),
             "pid": os.getpid(), "last_seen": time.time(), **info},
        )

    def workers(self) -> list[dict]:
        out = []
        for path in sorted(self.workers_dir.glob("*.json")):
            try:
                out.append(self.store.read_json(path))
            except (json.JSONDecodeError, OSError):
                continue
        return out

    # -- worker metrics snapshots ------------------------------------------

    def write_worker_metrics(self, worker_id: str, snapshot: dict) -> None:
        """Publish one worker's metrics snapshot (atomic last-wins).

        Workers write these unconditionally (telemetry on or off) — they
        are how ``repro queue-status --watch`` computes throughput and
        ETA, and what a telemetry-enabled coordinator aggregates via
        :func:`repro.obs.metrics.merge_snapshots`.
        """
        # Queues created before metrics snapshots existed lack the dir.
        self.metrics_dir.mkdir(parents=True, exist_ok=True)
        self.store.atomic_write_json(
            self.metrics_dir / f"{worker_id}.json", snapshot
        )

    def worker_metrics(self) -> list[dict]:
        """Every worker's latest metrics snapshot (missing dir → [])."""
        out = []
        for path in sorted(self.metrics_dir.glob("*.json")):
            try:
                out.append(self.store.read_json(path))
            except (json.JSONDecodeError, OSError):
                continue
        return out

    def _throughput(self, pending: int) -> tuple[float | None, float | None]:
        """(cells/sec, eta seconds) from the workers' snapshots.

        Each snapshot contributes its worker's own lifetime rate; rates
        add because the workers execute concurrently. Exited workers
        stop contributing once any live worker has a snapshot, so the
        ETA tracks the surviving capacity of an elastic pool. Elapsed
        times difference the *writer's own* clock against itself, so
        cross-host skew cannot produce a bogus rate — negatives are
        discarded by the ``elapsed > 0`` guard regardless.
        """
        snaps = self.worker_metrics()
        live = [s for s in snaps if not s.get("exited")]
        rate = 0.0
        for snap in live or snaps:
            elapsed = float(snap.get("t", 0.0)) - float(snap.get("started_at", 0.0))
            cells = int(snap.get("cells_done", 0))
            if elapsed > 0.0 and cells > 0:
                rate += cells / elapsed
        if rate <= 0.0:
            return (None, None)
        eta = pending / rate if pending > 0 else 0.0
        return (rate, eta)

    # -- status -----------------------------------------------------------

    def status(self) -> QueueStatus:
        keys = self.task_keys()
        done = self.done_keys()
        live = expired = 0
        now = time.time()
        claimed = set()
        coordinator = None
        for lease in self.leases.leases():
            if lease.key.startswith("__"):
                # Reserved (non-task) leases — the coordinator leader
                # lease — are reported separately, never as cell claims.
                coordinator = {
                    "owner": lease.owner,
                    "live": not lease.expired(now),
                    "expires_at": lease.expires_at,
                    "renewals": lease.renewals,
                }
                continue
            if lease.key in done:
                continue
            claimed.add(lease.key)
            if lease.expired(now):
                expired += 1
            else:
                live += 1
        unclaimed = sum(1 for k in keys if k not in done and k not in claimed)
        n_done = sum(1 for k in keys if k in done)
        rate, eta = self._throughput(pending=len(keys) - n_done)
        workers = self.workers()
        for worker in workers:
            # Age clamped at zero: `last_seen` came from the writer's
            # clock, which may run ahead of this reader's on another
            # host; a negative age is always clock skew, never data.
            worker["age_s"] = max(0.0, now - worker.get("last_seen", now))
        manifest_info = None
        enqueue = "none"
        try:
            manifest = self.read_manifest()
        except ManifestCorrupt:
            enqueue = "corrupt"
        else:
            if manifest is not None:
                enqueue = manifest.state
                manifest_info = {
                    "run_id": manifest.run_id,
                    "state": manifest.state,
                    "generation": manifest.generation,
                    "cells": len(manifest.keys),
                    "batches": list(manifest.batches),
                }
        spool = 0
        for snap in self.worker_metrics():
            counters = snap.get("counters", {})
            spool += max(
                0,
                int(counters.get("store.degraded_entries", 0))
                - int(counters.get("store.spool_flushed", 0)),
            )
        return QueueStatus(
            total=len(keys),
            done=n_done,
            leased_live=live,
            leased_expired=expired,
            unclaimed=unclaimed,
            failed_keys=self.failures(),
            workers=workers,
            cells_per_sec=rate,
            eta_s=eta,
            quarantined=self.quarantine_count(),
            manifest=manifest_info,
            enqueue=enqueue,
            spool_backlog=spool,
            coordinator=coordinator,
        )
