"""The serverless lease protocol: atomic file claims with expiry.

A lease is one small JSON file under ``<queue>/leases/<key>.json``
holding the owner id, claim time and expiry. The protocol needs no
coordinator process — only three filesystem primitives that are atomic
on every POSIX filesystem (and NFS with close-to-open consistency):

* **claim** — ``open(..., O_CREAT | O_EXCL)``: exactly one contender
  creates the file, everyone else sees ``FileExistsError`` and moves on.
* **renew** — rewrite via temp file + ``os.replace``: readers observe
  either the old lease or the new one, never a torn intermediate.
* **reap** — ``os.rename`` of an *expired* lease to a unique tombstone:
  only one reaper wins the rename (the loser gets ``FileNotFoundError``),
  after which the key is open for a fresh claim race.

Every one of those calls goes through the :class:`~repro.dist.store.Store`
seam, which classifies and retries transient storage errors and lets
tests script deterministic IO faults. The seam never weakens atomicity:
``EEXIST``/``ENOENT`` stay semantic (they *are* the protocol), and a
read that keeps flaking resolves **conservatively** — an unreadable
claim is treated as still-claimed for one ttl, never as unclaimed,
because "unclaimed" is the answer that invites a double claim.

The protocol minimises duplicate work; it does not have to prevent it.
If a straggler finishes a cell whose lease was reaped and re-issued,
both publishes are accepted — the config-hash key and per-cell
``SeedSequence`` seeding make the duplicate bit-identical, so merging
keeps either copy (see :meth:`repro.dist.queue.WorkQueue.merged_results`).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.dist.store import Store
from repro.obs.logbridge import get_logger, kv

__all__ = ["Lease", "LeaseBoard"]

_log = get_logger("repro.dist.lease")


@dataclass
class Lease:
    """One claimed cell: who owns it and until when."""

    key: str
    owner: str
    claimed_at: float
    expires_at: float
    renewals: int = 0

    def expired(self, now: float | None = None) -> bool:
        return (time.time() if now is None else now) >= self.expires_at

    def to_json_dict(self) -> dict:
        return {
            "key": self.key,
            "owner": self.owner,
            "claimed_at": self.claimed_at,
            "expires_at": self.expires_at,
            "renewals": self.renewals,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "Lease":
        return cls(
            key=data["key"],
            owner=data["owner"],
            claimed_at=float(data["claimed_at"]),
            expires_at=float(data["expires_at"]),
            renewals=int(data.get("renewals", 0)),
        )


class LeaseBoard:
    """The lease directory of one work queue."""

    def __init__(
        self,
        root: str | os.PathLike,
        ttl: float = 30.0,
        store: Store | None = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl!r}")
        self.root = Path(root)
        self.ttl = float(ttl)
        self.store = store if store is not None else Store()
        self.root.mkdir(parents=True, exist_ok=True)
        self._tombstones = self.root / ".reaped"
        self._tombstones.mkdir(exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- protocol ---------------------------------------------------------

    def try_claim(self, key: str, owner: str, now: float | None = None) -> bool:
        """Attempt the O_EXCL claim; True when this owner won the race."""
        now = time.time() if now is None else now
        lease = Lease(key=key, owner=owner, claimed_at=now, expires_at=now + self.ttl)
        return self.store.create_excl_json(self._path(key), lease.to_json_dict())

    def _still_claimed(self, key: str) -> Lease:
        """The conservative answer when a claim file cannot be judged.

        Reading an existing claim as *unclaimed* invites a double claim
        (two owners, one cell); reading it as claimed-for-one-more-ttl
        merely delays a re-issue. Always take the delay.
        """
        now = time.time()
        return Lease(
            key=key, owner="?unreadable", claimed_at=now,
            expires_at=now + self.ttl,
        )

    def read(self, key: str) -> Lease | None:
        """The current lease on ``key``, or None when unclaimed/torn."""
        try:
            text = self.store.read_text(self._path(key))
            return Lease.from_json_dict(json.loads(text))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, ValueError):
            # A torn claim write (crash inside the O_EXCL fill). It can
            # never be renewed, so it ages out like any silent owner:
            # treat it as expired-at-claim once it is older than a ttl.
            try:
                age = time.time() - self.store.stat_mtime(self._path(key))
            except FileNotFoundError:
                return None  # reaped between read and stat: unclaimed
            except OSError as exc:
                # A stat flake must not read a *claimed* key as
                # unclaimed — that is the double-claim answer. Report
                # it and hold the claim for one more ttl instead.
                _log.warning(
                    "stat flaked on torn lease; treating as still claimed",
                    extra=kv(key=key, error=str(exc)),
                )
                return self._still_claimed(key)
            if age >= self.ttl:
                return Lease(key=key, owner="?torn", claimed_at=0.0, expires_at=0.0)
            return Lease(
                key=key, owner="?torn", claimed_at=time.time(),
                expires_at=time.time() + self.ttl,
            )

    def renew(self, key: str, owner: str, now: float | None = None) -> bool:
        """Extend the expiry of ``owner``'s lease (heartbeat).

        Returns False — without touching the file — when the lease is
        gone or has been reaped and re-claimed by someone else, so a
        straggler can never clobber the new owner's lease.
        """
        now = time.time() if now is None else now
        lease = self.read(key)
        if lease is None or lease.owner != owner:
            return False
        lease.expires_at = now + self.ttl
        lease.renewals += 1
        self.store.atomic_write_json(self._path(key), lease.to_json_dict())
        return True

    def release(self, key: str, owner: str) -> bool:
        """Drop ``owner``'s lease after a publish; True when removed."""
        lease = self.read(key)
        if lease is None or lease.owner != owner:
            return False
        try:
            self.store.unlink(self._path(key))
        except FileNotFoundError:
            return False
        return True

    def reap(self, key: str, now: float | None = None) -> bool:
        """Retire an *expired* lease so the cell can be re-issued.

        Atomic via rename-to-tombstone: of N concurrent reapers exactly
        one wins (the others get ``FileNotFoundError``), and a lease
        renewed between the expiry check and the rename is re-read from
        the tombstone and restored, so a live owner is never evicted by
        a slow reaper.
        """
        lease = self.read(key)
        if lease is None or not lease.expired(now):
            return False
        tomb = self._tombstones / f"{key}-{os.getpid()}-{time.monotonic_ns()}"
        try:
            self.store.rename(self._path(key), tomb)
        except FileNotFoundError:
            return False  # another reaper won
        try:
            current = Lease.from_json_dict(json.loads(self.store.read_text(tomb)))
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            current = None
        if current is not None and not current.expired(now):
            # The owner heartbeated in the race window; put it back.
            self.store.replace(tomb, self._path(key))
            return False
        try:
            self.store.unlink(tomb)
        except FileNotFoundError:
            pass
        return True

    def force_release(self, key: str) -> bool:
        """Drop ``key``'s lease unconditionally; True when removed.

        Unlike :meth:`release` this does **not** check ownership — the
        caller is asserting the owner is dead (a supervisor that just
        reaped the worker process, a doctor repairing an orphan lease,
        a coordinator taking over from a dead local leader). Never use
        it on a lease whose owner might still be running.
        """
        try:
            self.store.unlink(self._path(key))
        except FileNotFoundError:
            return False
        return True

    # -- inspection -------------------------------------------------------

    def leases(self) -> list[Lease]:
        """Every readable lease on the board (snapshot, unsorted)."""
        out = []
        for path in self.root.glob("*.json"):
            lease = self.read(path.stem)
            if lease is not None:
                out.append(lease)
        return out

    def owner_leases(self, owner: str) -> list[Lease]:
        """Every lease currently held by ``owner`` (snapshot)."""
        return [lease for lease in self.leases() if lease.owner == owner]
