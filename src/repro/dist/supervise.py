"""Worker supervision: respawn crashed queue workers, break crash loops.

A :class:`WorkerSupervisor` owns N worker *slots*. Each slot runs one
``repro.dist.worker.QueueWorker`` subprocess; when the process dies with
a non-zero exit code (SIGKILL, OOM, unhandled exception) the slot
respawns it — under a fresh worker id, after an exponential backoff —
until the queue drains or the slot's **circuit breaker** opens.

The breaker exists because respawning is only safe when crashes are
*independent*: a worker that dies instantly every time it starts (bad
install, poisoned host, corrupt mount) would otherwise burn through the
whole grid's attempt budget. ``max_crashes`` consecutive crashes —
where "consecutive" resets once an incarnation survives
``healthy_after_s`` — opens the slot for good.

Crashes feed the existing failure accounting: every lease the dead
worker still held gets a recorded failure attempt (it crashed *holding*
that cell) and is force-released for immediate re-issue, so a cell that
kills every worker that touches it poisons at ``MAX_ATTEMPTS`` like any
other deterministic failure, instead of crash-looping the fleet
forever. Lifecycle events (``supervisor_spawn`` / ``supervisor_crash``
/ ``supervisor_circuit_open``) route through ``repro.obs`` when a
telemetry session is active.

Drive it from the CLI as ``repro work --queue DIR --supervise N`` or
let the coordinator own it via ``dispatch_tasks(..., supervise=True)``
(scenario ``execution.supervise``).
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field

from repro.dist.faults import FaultPlan
from repro.dist.queue import WorkQueue
from repro.obs import runtime as _obs_runtime
from repro.obs.logbridge import get_logger, kv

__all__ = ["WorkerSupervisor", "SupervisorReport"]

_log = get_logger("repro.dist.supervise")


@dataclass
class SupervisorReport:
    """What one supervision session did before exiting."""

    slots: int
    spawned: int = 0
    crashes: int = 0
    #: failure attempts recorded against cells dead workers still held
    strikes: int = 0
    #: slot indices whose circuit breaker opened (crash loop)
    circuit_open: list[int] = field(default_factory=list)
    #: ``drained`` | ``circuit_open`` | ``stopped``
    exit_reason: str = ""


class _Slot:
    """One supervised worker position: its live process + crash state."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: multiprocessing.process.BaseProcess | None = None
        self.worker_id: str | None = None
        self.generation = 0  # incarnations spawned so far
        self.consecutive = 0  # crashes without a healthy run between
        self.started_at = 0.0
        self.next_spawn_at = 0.0
        self.open = False  # circuit breaker
        self.retired = False  # clean worker exit: queue drained


class WorkerSupervisor:
    """Respawn-with-backoff supervision over N queue-worker slots.

    Parameters
    ----------
    queue:
        The :class:`WorkQueue` (or its directory path).
    n_workers:
        Number of worker slots.
    backoff_base_s / backoff_max_s:
        Respawn delay after the n-th consecutive crash:
        ``min(backoff_max_s, backoff_base_s * 2**(n-1))``.
    max_crashes:
        Consecutive crashes that open a slot's circuit breaker.
    healthy_after_s:
        An incarnation surviving this long resets its slot's
        consecutive-crash counter (the crash streak was broken).
    wait_for_work:
        Spawn elastic workers (``--wait`` semantics: they exit on a
        complete run manifest instead of a drained scan).
    spawn_faults:
        Scripted :class:`FaultPlan`\\ s per slot *per incarnation*
        (``spawn_faults[slot][generation]``), for testing respawns.
    """

    def __init__(
        self,
        queue: WorkQueue | str | os.PathLike,
        n_workers: int,
        *,
        lease_ttl: float | None = None,
        poll_interval: float = 0.2,
        backoff_base_s: float = 0.5,
        backoff_max_s: float = 30.0,
        max_crashes: int = 5,
        healthy_after_s: float = 5.0,
        wait_for_work: bool = False,
        cell_timeout_s: float | None = None,
        worker_poll_interval: float = 0.2,
        spawn_faults: "list[list[FaultPlan | None]] | None" = None,
        mp_start_method: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(
                f"supervisor needs at least one worker slot, got {n_workers!r}"
            )
        if not isinstance(queue, WorkQueue):
            queue = WorkQueue(queue, lease_ttl=lease_ttl or 30.0, create=False)
        elif lease_ttl is not None:
            queue.leases.ttl = float(lease_ttl)
        self.queue = queue
        self.lease_ttl = queue.leases.ttl
        self.poll_interval = poll_interval
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.max_crashes = max_crashes
        self.healthy_after_s = healthy_after_s
        self.wait_for_work = wait_for_work
        self.cell_timeout_s = cell_timeout_s
        self.worker_poll_interval = worker_poll_interval
        self.spawn_faults = spawn_faults or []
        if mp_start_method is None:
            mp_start_method = (
                "fork" if sys.platform.startswith("linux") else "spawn"
            )
        self._context = multiprocessing.get_context(mp_start_method)
        self._slots = [_Slot(i) for i in range(n_workers)]
        self._halt = threading.Event()
        self._thread: threading.Thread | None = None
        self.report = SupervisorReport(slots=n_workers)
        #: True once the supervision loop has ended (all slots retired,
        #: every breaker open, or stop()); the coordinator's inline
        #: fallback keys off this.
        self.done = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Run supervision on a background thread (coordinator mode)."""
        self._thread = threading.Thread(
            target=self.run, name="worker-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 35.0) -> None:
        """Halt supervision and terminate any live workers."""
        self._halt.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        for slot in self._slots:
            proc = slot.proc
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)

    def alive_count(self) -> int:
        return sum(
            1
            for slot in self._slots
            if slot.proc is not None and slot.proc.is_alive()
        )

    # -- the loop ----------------------------------------------------------

    def run(self) -> SupervisorReport:
        """Supervise until the queue drains or every breaker opens."""
        try:
            while not self._halt.is_set():
                now = time.time()
                for slot in self._slots:
                    self._tick_slot(slot, now)
                live = [
                    s for s in self._slots
                    if s.proc is not None and s.proc.exitcode is None
                ]
                if all(s.open for s in self._slots):
                    self.report.exit_reason = "circuit_open"
                    break
                if not live and (
                    all(s.open or s.retired for s in self._slots)
                    or self._no_work_left()
                ):
                    # Nothing running and nothing to respawn for.
                    self.report.exit_reason = (
                        "drained"
                        if any(s.retired for s in self._slots)
                        or self._no_work_left()
                        else "circuit_open"
                    )
                    break
                self._halt.wait(self.poll_interval)
            else:
                self.report.exit_reason = "stopped"
        finally:
            self.done = True
            self.report.circuit_open = [
                s.index for s in self._slots if s.open
            ]
            _log.info(
                "supervisor exiting",
                extra=kv(
                    spawned=self.report.spawned,
                    crashes=self.report.crashes,
                    strikes=self.report.strikes,
                    circuit_open=self.report.circuit_open,
                    exit_reason=self.report.exit_reason,
                ),
            )
        return self.report

    def _tick_slot(self, slot: _Slot, now: float) -> None:
        if slot.open or slot.retired:
            return
        proc = slot.proc
        if proc is not None:
            if proc.exitcode is None:
                return  # running fine
            self._on_exit(slot, proc.exitcode, now)
            if slot.open or slot.retired:
                return
        if now < slot.next_spawn_at:
            return  # backing off
        if self._no_work_left():
            # Don't spawn into a drained queue; the slot retires
            # quietly (a clean-exited worker would do the same).
            slot.retired = True
            return
        self._spawn(slot)

    def _on_exit(self, slot: _Slot, exitcode: int, now: float) -> None:
        slot.proc = None
        if exitcode == 0:
            # Clean exit: the worker drained the queue (or hit its run-
            # complete signal). The slot retires; respawning would just
            # spin on an empty scan.
            slot.consecutive = 0
            slot.retired = True
            return
        self.report.crashes += 1
        uptime = now - slot.started_at
        if uptime >= self.healthy_after_s:
            slot.consecutive = 1  # streak broken by a healthy run
        else:
            slot.consecutive += 1
        strikes = self._strike_held_leases(slot, exitcode)
        _log.warning(
            "supervised worker crashed",
            extra=kv(
                slot=slot.index, worker_id=slot.worker_id,
                exitcode=exitcode, uptime_s=round(uptime, 2),
                consecutive=slot.consecutive, strikes=strikes,
            ),
        )
        self._event(
            "supervisor_crash", slot=slot.index, worker_id=slot.worker_id,
            exitcode=exitcode, consecutive=slot.consecutive,
        )
        if slot.consecutive >= self.max_crashes:
            slot.open = True
            _log.error(
                "crash loop: circuit breaker opened for slot",
                extra=kv(
                    slot=slot.index, crashes=slot.consecutive,
                    max_crashes=self.max_crashes,
                ),
            )
            self._event(
                "supervisor_circuit_open", slot=slot.index,
                crashes=slot.consecutive,
            )
            return
        backoff = min(
            self.backoff_max_s,
            self.backoff_base_s * (2 ** (slot.consecutive - 1)),
        )
        slot.next_spawn_at = now + backoff

    def _strike_held_leases(self, slot: _Slot, exitcode: int) -> int:
        """Record a failure attempt on, and free, every cell the dead
        worker still held — this is what feeds a crash-*causing* cell
        into the ordinary MAX_ATTEMPTS poison accounting."""
        if slot.worker_id is None:
            return 0
        struck = 0
        try:
            held = self.queue.leases.owner_leases(slot.worker_id)
        except OSError:
            return 0
        for lease in held:
            try:
                self.queue.record_failure(
                    lease.key,
                    slot.worker_id,
                    f"worker process crashed (exit {exitcode}) while "
                    f"holding this cell's lease",
                )
                self.queue.leases.force_release(lease.key)
            except OSError as exc:
                _log.warning(
                    "failed to strike a dead worker's lease",
                    extra=kv(key=lease.key, error=str(exc)),
                )
                continue
            struck += 1
        self.report.strikes += struck
        return struck

    def _spawn(self, slot: _Slot) -> None:
        from repro.api.registry import registration_modules
        from repro.dist.coordinator import worker_process_entry

        plan = self._plan_for(slot)
        worker_id = (
            f"sup{slot.index}g{slot.generation}-"
            f"{socket.gethostname().split('.')[0]}-{os.getpid()}-"
            f"{uuid.uuid4().hex[:4]}"
        )
        options = {
            "wait_for_work": self.wait_for_work,
            "poll_interval": self.worker_poll_interval,
        }
        if self.cell_timeout_s is not None:
            options["cell_timeout_s"] = self.cell_timeout_s
        proc = self._context.Process(
            target=worker_process_entry,
            args=(
                str(self.queue.root),
                worker_id,
                self.lease_ttl,
                plan,
                registration_modules(),
                list(sys.path),
                options,
            ),
            daemon=False,
        )
        proc.start()
        slot.proc = proc
        slot.worker_id = worker_id
        slot.generation += 1
        slot.started_at = time.time()
        self.report.spawned += 1
        _log.info(
            "supervised worker spawned",
            extra=kv(
                slot=slot.index, worker_id=worker_id,
                incarnation=slot.generation,
            ),
        )
        self._event(
            "supervisor_spawn", slot=slot.index, worker_id=worker_id,
            incarnation=slot.generation,
        )

    def _plan_for(self, slot: _Slot) -> FaultPlan | None:
        """The scripted fault plan of this slot's *next* incarnation."""
        if slot.index >= len(self.spawn_faults):
            return None
        per_generation = self.spawn_faults[slot.index]
        if slot.generation >= len(per_generation):
            return None
        return per_generation[slot.generation]

    def _no_work_left(self) -> bool:
        """No cell a fresh worker could make progress on (done, poisoned,
        or — conservatively — none at all readable)."""
        try:
            for key in self.queue.task_keys():
                if self.queue.is_done(key) or self.queue.poisoned(key):
                    continue
                return False
        except OSError:
            return False  # can't tell: keep supervising
        return True

    def _event(self, name: str, **fields) -> None:
        session = _obs_runtime.session
        if session is not None:
            session.event(name, **fields)
