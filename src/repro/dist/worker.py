"""The elastic queue worker: claim → execute → publish, forever.

A :class:`QueueWorker` is completely stateless with respect to the grid:
everything it needs — task specs, leases, completion markers, the shared
execution context — lives in the queue directory, so workers can be
started or SIGKILLed at any moment mid-grid (``repro work --queue DIR``)
and the sweep converges regardless. Crash recovery is the lease
protocol's job: a worker that dies holding a lease simply stops
heartbeating, the lease expires, and any scanning worker reaps and
re-claims the cell. Results of re-issued cells are bit-identical to the
lost original (per-cell ``SeedSequence`` seeds), so publishes are
idempotent by construction.

Storage robustness (this layer's contribution on shared mounts):

* every queue/lease operation goes through the worker's own
  :class:`~repro.dist.store.Store`, whose retry jitter is seeded by the
  worker id — reproducible per worker, never synchronized across
  workers, never touching experiment RNG;
* a cell that exceeds ``cell_timeout_s`` is abandoned by a watchdog,
  recorded as a failed attempt (counting toward ``MAX_ATTEMPTS``) and
  its lease released, so a hung simulation cannot hold a cell hostage
  behind a live heartbeat;
* when the shared store refuses writes (:class:`StoreUnavailable`),
  the worker **degrades instead of dying**: finished results spool to a
  local directory, heartbeats keep trying, and the spool flushes the
  moment the store recovers. Only a store that stays down through the
  strike budget exits the worker — with an error that says exactly
  where the spooled results live.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.dist.faults import FaultInjector, FaultPlan
from repro.dist.queue import WorkQueue, fsync_append
from repro.dist.store import RetryPolicy, Store, StoreUnavailable, seal_line
from repro.exp.tasks import execute_task
from repro.obs.events import bind
from repro.obs.logbridge import get_logger, kv
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "QueueWorker",
    "WorkerReport",
    "Heartbeat",
    "CellTimeout",
    "new_worker_id",
]

_log = get_logger("repro.dist.worker")


def new_worker_id() -> str:
    """A short host-qualified id (``host-pid-rand``) for shard naming."""
    return (
        f"{socket.gethostname().split('.')[0]}-{os.getpid()}-"
        f"{uuid.uuid4().hex[:6]}"
    )


class CellTimeout(RuntimeError):
    """A cell exceeded its ``cell_timeout_s`` execution deadline."""


class Heartbeat(threading.Thread):
    """Background lease renewal for the cell currently executing."""

    def __init__(
        self,
        queue: WorkQueue,
        key: str,
        owner: str,
        interval: float,
        faults: FaultInjector,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(name=f"heartbeat-{key[:8]}", daemon=True)
        self.queue = queue
        self.key = key
        self.owner = owner
        self.interval = interval
        self.faults = faults
        self.metrics = metrics
        self._halt = threading.Event()
        #: False once a renewal was refused (lease reaped + re-claimed);
        #: execution continues — the publish is idempotent — but the
        #: worker knows it became a straggler on this cell.
        self.owned = True

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            if not self.faults.on_heartbeat():
                continue  # scripted heartbeat loss: skip the renewal
            try:
                renewed = self.queue.leases.renew(self.key, self.owner)
            except OSError as exc:
                # A store flake is not a refusal: the lease may well
                # still be ours. Keep beating — renewal succeeding on a
                # later tick is exactly how a degraded worker holds its
                # claim through a storage brown-out.
                if self.metrics is not None:
                    self.metrics.counter("lease.renew_errors").inc()
                _log.warning(
                    "lease renewal errored; will keep trying",
                    extra=kv(key=self.key, error=str(exc)),
                )
                continue
            if renewed:
                if self.metrics is not None:
                    self.metrics.counter("lease.renews").inc()
            else:
                if self.owned:
                    _log.warning(
                        "lease renewal refused; continuing as straggler",
                        extra=kv(key=self.key, worker_id=self.owner),
                    )
                if self.metrics is not None:
                    self.metrics.counter("lease.renew_refused").inc()
                self.owned = False

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


@dataclass
class WorkerReport:
    """What one worker loop did before exiting."""

    worker_id: str
    executed: list[str] = field(default_factory=list)
    reaped: list[str] = field(default_factory=list)
    straggled: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)
    timed_out: list[str] = field(default_factory=list)
    spooled: list[str] = field(default_factory=list)
    #: why the loop ended: ``drained`` | ``max_cells`` | ``run_complete``
    #: (a ``--wait`` worker that saw the run manifest flip to complete)
    exit_reason: str = ""

    @property
    def cells_done(self) -> int:
        return len(self.executed)


class QueueWorker:
    """One claim/execute/publish loop over a shared work queue.

    Parameters
    ----------
    queue:
        The :class:`WorkQueue` (or its directory path).
    worker_id:
        Shard / lease owner id; defaults to a fresh host-qualified id.
    heartbeat_interval:
        Lease renewal period; defaults to a quarter of the queue's ttl
        so a healthy worker never comes close to expiry.
    poll_interval:
        Sleep between scans when nothing was claimable.
    max_cells:
        Stop after executing this many cells (None = unbounded).
    wait_for_work:
        Keep polling after the queue drains (elastic long-lived worker)
        instead of exiting. ``repro work --wait``.
    cell_timeout_s:
        Per-cell execution deadline; a cell still running after this
        many seconds is abandoned, recorded as a failed attempt and its
        lease released. None (default) defers to the queue meta's
        ``cell_timeout_s`` (set by ``execution.cell_timeout_s`` in the
        scenario spec); 0 disables the watchdog outright.
    faults:
        Scripted :class:`FaultPlan` for the integration tests / CI.
    execute:
        Override for :func:`~repro.exp.tasks.execute_task` (same
        signature). The dispatch-overhead bench serves pre-computed
        results through this to time the coordination term alone.
    spool_dir:
        Where results spool when the shared store refuses writes
        (default: a per-worker directory under the system temp dir —
        deliberately *local* storage, since the shared mount is what
        just failed).
    """

    #: consecutive store-failed scan passes tolerated before the worker
    #: gives up on the store recovering and exits with an error
    MAX_STORE_STRIKES = 3

    def __init__(
        self,
        queue: WorkQueue | str | os.PathLike,
        worker_id: str | None = None,
        lease_ttl: float | None = None,
        heartbeat_interval: float | None = None,
        poll_interval: float = 0.2,
        max_cells: int | None = None,
        wait_for_work: bool = False,
        cell_timeout_s: float | None = None,
        faults: FaultPlan | FaultInjector | None = None,
        execute=None,
        spool_dir: str | os.PathLike | None = None,
    ) -> None:
        if not isinstance(queue, WorkQueue):
            queue = WorkQueue(queue, lease_ttl=lease_ttl or 30.0, create=False)
        elif lease_ttl is not None:
            queue.leases.ttl = float(lease_ttl)
        self.queue = queue
        self.worker_id = worker_id or new_worker_id()
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else queue.leases.ttl / 4.0
        )
        self.poll_interval = poll_interval
        self.max_cells = max_cells
        self.wait_for_work = wait_for_work
        self.cell_timeout_s = cell_timeout_s
        self.faults = (
            faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        )
        self.execute = execute if execute is not None else execute_task
        self.report = WorkerReport(worker_id=self.worker_id)
        #: always-on private registry, published to the queue's
        #: ``metrics/`` dir so throughput/ETA work without --telemetry
        self.metrics = MetricsRegistry()
        #: the worker's storage seam: retry jitter seeded by worker id,
        #: scripted io_faults routed from the fault plan, retries and
        #: degradations counted into the worker's own metrics
        self.store = Store(
            retry=RetryPolicy(seed=self.worker_id),
            faults=self.faults,
            metrics=self.metrics,
        )
        self.queue.use_store(self.store)
        self.spool_dir = Path(
            spool_dir
            if spool_dir is not None
            else Path(tempfile.gettempdir()) / f"repro-spool-{self.worker_id}"
        )
        self._spooled: list = []  # TaskResults awaiting a store recovery
        self._store_strikes = 0
        self._started_at = time.time()
        #: mid-run snapshot publishes are throttled so sub-second cells
        #: don't pay one atomic JSON write each (exit always publishes)
        self.metrics_publish_interval = 0.5
        self._metrics_published_at = 0.0

    # -- the loop ---------------------------------------------------------

    def run(self) -> WorkerReport:
        """Work until the queue drains (or ``wait_for_work`` forever)."""
        meta = self.queue.read_meta()
        telemetry = meta.get("telemetry")
        if telemetry:
            # The enqueuer asked for telemetry: late-joining workers
            # follow the shared directory (no-op if already enabled).
            import repro.obs as obs

            obs.enable(telemetry)
        if self.cell_timeout_s is None and meta.get("cell_timeout_s"):
            self.cell_timeout_s = float(meta["cell_timeout_s"])
        self._started_at = time.time()
        self._best_effort(
            lambda: self.queue.register_worker(self.worker_id, cells_done=0),
            "worker registration",
        )
        with bind(worker_id=self.worker_id):
            _log.info(
                "worker started",
                extra=kv(
                    queue=str(self.queue.root),
                    wait=self.wait_for_work,
                    cell_timeout_s=self.cell_timeout_s,
                ),
            )
            while True:
                try:
                    if self._spooled:
                        self._try_flush_spool()
                    progress = self._scan_once(meta)
                except StoreUnavailable as exc:
                    self._store_strikes += 1
                    self.metrics.counter("store.scan_failures").inc()
                    if self._store_strikes >= self.MAX_STORE_STRIKES:
                        raise self._degraded_exit_error(exc) from exc
                    _log.warning(
                        "store unavailable during scan; backing off",
                        extra=kv(
                            strikes=self._store_strikes,
                            budget=self.MAX_STORE_STRIKES,
                            error=str(exc),
                        ),
                    )
                    time.sleep(self.poll_interval)
                    continue
                self._store_strikes = 0
                if self.max_cells is not None and (
                    len(self.report.executed) >= self.max_cells
                ):
                    self.report.exit_reason = "max_cells"
                    break
                if not progress:
                    if self._drained():
                        if not self.wait_for_work:
                            self.report.exit_reason = "drained"
                            break
                        if self._run_complete():
                            # The coordinator marked the run manifest
                            # complete: every promised cell is done, no
                            # later generation is coming. An elastic
                            # --wait worker exits with a distinct
                            # status instead of polling forever.
                            self.report.exit_reason = "run_complete"
                            _log.info(
                                "run manifest complete; elastic worker "
                                "exiting",
                                extra=kv(queue=str(self.queue.root)),
                            )
                            break
                    time.sleep(self.poll_interval)
            if self._spooled:
                # Last chance before exit: the queue may have drained
                # around our spooled cells (idempotent re-issue), but a
                # spooled result that never lands loses nothing *only*
                # if someone else published the cell — flush or fail
                # loudly.
                try:
                    self._try_flush_spool()
                except StoreUnavailable:
                    pass
                undelivered = [
                    r for r in self._spooled
                    if not self.queue.is_done(r.key)
                ]
                if undelivered:
                    raise self._degraded_exit_error(None)
                self._spooled.clear()
            self._best_effort(
                lambda: self.queue.register_worker(
                    self.worker_id,
                    cells_done=self.report.cells_done,
                    exited=True,
                ),
                "exit registration",
            )
            self._best_effort(
                lambda: self._publish_metrics(exited=True), "metrics publish"
            )
            _log.info(
                "worker exiting",
                extra=kv(
                    executed=len(self.report.executed),
                    reaped=len(self.report.reaped),
                    straggled=len(self.report.straggled),
                    failed=len(self.report.failed),
                    timed_out=len(self.report.timed_out),
                    exit_reason=self.report.exit_reason,
                ),
            )
        return self.report

    def _best_effort(self, fn, what: str) -> None:
        """Run a non-critical store write; log-and-continue on failure."""
        try:
            fn()
        except OSError as exc:
            _log.warning(
                f"{what} failed; continuing",
                extra=kv(worker_id=self.worker_id, error=str(exc)),
            )

    def _publish_metrics(self, exited: bool = False) -> None:
        now = time.time()
        if not exited and (
            now - self._metrics_published_at < self.metrics_publish_interval
        ):
            return
        self._metrics_published_at = now
        self.queue.write_worker_metrics(
            self.worker_id,
            self.metrics.snapshot(
                worker_id=self.worker_id,
                started_at=self._started_at,
                cells_done=self.report.cells_done,
                exited=exited,
            ),
        )

    def _drained(self) -> bool:
        """No cell left that this worker could ever make progress on.

        A live lease held by *someone else* does not count as drained —
        that owner may yet die, so the worker keeps polling until the
        cell is done (or poisoned by repeated failures).
        """
        for key in self.queue.task_keys():
            if self.queue.is_done(key) or self.queue.poisoned(key):
                continue
            return False
        return True

    def _run_complete(self) -> bool:
        """Whether the run manifest says every promised cell is done.

        Conservative on any doubt (missing, corrupt, unreadable → not
        complete): the wrong answer here merely keeps an elastic worker
        polling, never strands work.
        """
        from repro.dist.manifest import ManifestCorrupt

        try:
            manifest = self.queue.read_manifest()
        except (ManifestCorrupt, OSError, json.JSONDecodeError):
            return False
        return manifest is not None and manifest.complete

    def _scan_once(self, meta: dict) -> bool:
        """One pass over the task records; True when a cell executed."""
        for key in self.queue.task_keys():
            if self.queue.is_done(key) or self.queue.poisoned(key):
                continue
            lease = self.queue.leases.read(key)
            if lease is not None:
                if not lease.expired():
                    continue
                if not self.queue.leases.reap(key):
                    continue  # lost the reap race or the owner renewed
                self.report.reaped.append(key)
                self.metrics.counter("lease.reaps").inc()
                _log.warning(
                    "reaped expired lease",
                    extra=kv(key=key, prev_owner=lease.owner),
                )
            if not self.queue.leases.try_claim(key, self.worker_id):
                continue
            if self.queue.is_done(key):
                # Raced a straggler's publish between scan and claim.
                self.queue.leases.release(key, self.worker_id)
                self.metrics.counter("queue.straggler_dedupes").inc()
                _log.info(
                    "claim raced a straggler's publish; released",
                    extra=kv(key=key),
                )
                continue
            self.metrics.counter("lease.claims").inc()
            _log.info("claimed cell", extra=kv(key=key))
            self.faults.on_claim(key)
            self._execute_cell(key, meta)
            return True
        return False

    # -- execution --------------------------------------------------------

    def _execute_with_deadline(self, key: str, meta: dict):
        """Run the cell, bounded by the ``cell_timeout_s`` watchdog.

        Without a timeout the call runs inline (zero overhead). With
        one, execution moves to a daemon thread that is *abandoned* on
        deadline — its eventual result is discarded (only this method's
        return value ever reaches ``publish``), and the process exiting
        reaps the thread. Python offers no safe preemption of arbitrary
        user code; abandonment plus lease release is the portable way
        to stop a hung cell from blocking the grid.
        """

        def call():
            return self.execute(
                self.queue.load_task(key),
                meta.get("trace_dir"),
                bool(meta.get("trace_compact", False)),
                int(meta.get("batch_episodes", 1)),
            )

        timeout = self.cell_timeout_s
        if not timeout:
            return call()
        box: dict = {}

        def target() -> None:
            try:
                box["result"] = call()
            except BaseException as exc:  # travels to the caller below
                box["error"] = exc

        thread = threading.Thread(
            target=target, name=f"cell-{key[:8]}", daemon=True
        )
        thread.start()
        thread.join(timeout)
        if thread.is_alive():
            raise CellTimeout(
                f"cell {key} still executing after cell_timeout_s={timeout}; "
                f"abandoning the attempt"
            )
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _execute_cell(self, key: str, meta: dict) -> None:
        heartbeat = Heartbeat(
            self.queue, key, self.worker_id, self.heartbeat_interval, self.faults,
            metrics=self.metrics,
        )
        heartbeat.start()
        t0 = time.perf_counter()
        try:
            result = self._execute_with_deadline(key, meta)
        except StoreUnavailable:
            # The *store* failed (spec unreadable), not the cell: this
            # is a scan-level storage problem — release and let the
            # run-loop strike budget decide, without burning one of the
            # cell's MAX_ATTEMPTS on a storage brown-out.
            heartbeat.stop()
            self._best_effort(
                lambda: self.queue.leases.release(key, self.worker_id),
                "lease release",
            )
            raise
        except CellTimeout as exc:
            heartbeat.stop()
            self.report.timed_out.append(key)
            self.report.failed.append(key)
            self.metrics.counter("queue.cell_timeouts").inc()
            attempts = 0

            def record() -> None:
                nonlocal attempts
                attempts = self.queue.record_failure(
                    key, self.worker_id, str(exc)
                )

            self._best_effort(record, "timeout failure record")
            _log.error(
                "cell exceeded its deadline; abandoned",
                extra=kv(
                    key=key, timeout_s=self.cell_timeout_s, attempts=attempts
                ),
            )
            self._best_effort(
                lambda: self.queue.leases.release(key, self.worker_id),
                "lease release",
            )
            self._best_effort(lambda: self._publish_metrics(), "metrics publish")
            return
        except Exception:
            # Record-and-continue is deliberate (the lease protocol
            # re-issues the cell elsewhere; MAX_ATTEMPTS poisons a
            # deterministic failure) — but never silently.
            heartbeat.stop()
            self.report.failed.append(key)
            self.metrics.counter("queue.failures").inc()
            attempts = self.queue.record_failure(
                key, self.worker_id, traceback.format_exc(limit=20)
            )
            _log.exception(
                "cell execution failed",
                extra=kv(key=key, attempts=attempts),
            )
            self.queue.leases.release(key, self.worker_id)
            self._publish_metrics()
            return
        heartbeat.stop()
        if not heartbeat.owned:
            self.report.straggled.append(key)
            self.metrics.counter("queue.straggles").inc()
            _log.warning(
                "publishing as straggler (lease was reaped mid-execution)",
                extra=kv(key=key),
            )
        result.worker_id = self.worker_id
        self.faults.on_publish(key)
        try:
            self.queue.publish(self.worker_id, result)
        except StoreUnavailable as exc:
            self._spool_result(key, result, exc)
        else:
            if self._spooled:
                try:
                    self._try_flush_spool()
                except StoreUnavailable:
                    pass
        self._best_effort(
            lambda: self.queue.leases.release(key, self.worker_id),
            "lease release",
        )
        self.report.executed.append(key)
        self.metrics.counter("queue.cells_executed").inc()
        self.metrics.histogram("queue.cell_wall_s").observe(
            time.perf_counter() - t0
        )
        self._best_effort(
            lambda: self.queue.register_worker(
                self.worker_id, cells_done=self.report.cells_done
            ),
            "worker registration",
        )
        self._best_effort(lambda: self._publish_metrics(), "metrics publish")
        _log.info(
            "published cell",
            extra=kv(key=key, wall_s=round(result.wall_time, 3)),
        )

    # -- degraded mode ----------------------------------------------------

    def _spool_result(self, key: str, result, exc: StoreUnavailable) -> None:
        """Park a finished result on *local* disk: the work is not lost,
        the store just cannot take it yet."""
        self._spooled.append(result)
        self.report.spooled.append(key)
        self.metrics.counter("store.degraded_entries").inc()
        try:
            self.spool_dir.mkdir(parents=True, exist_ok=True)
            fsync_append(
                self.spool_dir / "results.jsonl",
                seal_line(json.dumps(result.to_json_dict(), sort_keys=True)),
            )
        except OSError as spool_exc:
            _log.warning(
                "local spool write failed (result kept in memory)",
                extra=kv(key=key, error=str(spool_exc)),
            )
        _log.error(
            "store unavailable on publish; result spooled locally",
            extra=kv(
                key=key,
                spool=str(self.spool_dir),
                pending_flush=len(self._spooled),
                error=str(exc),
            ),
        )

    def _try_flush_spool(self) -> None:
        """Re-publish spooled results oldest-first; stop on first refusal
        (StoreUnavailable propagates to the caller's strike handling)."""
        while self._spooled:
            result = self._spooled[0]
            if not self.queue.is_done(result.key):
                self.queue.publish(self.worker_id, result)
            self._spooled.pop(0)
            self.metrics.counter("store.spool_flushed").inc()
        try:
            (self.spool_dir / "results.jsonl").unlink(missing_ok=True)
        except OSError:
            pass
        _log.info("store recovered; local spool flushed", extra=kv())

    def _degraded_exit_error(self, cause: OSError | None) -> RuntimeError:
        spooled = len(self._spooled)
        spool_note = (
            f" {spooled} finished result(s) are spooled at {self.spool_dir} "
            f"(sealed JSONL; re-run a worker against the queue once the "
            f"store recovers — re-execution is bit-identical, or append "
            f"the spool to a journal shard to salvage the compute)."
            if spooled
            else ""
        )
        return RuntimeError(
            f"shared store at {self.queue.root} stayed unavailable through "
            f"{self.MAX_STORE_STRIKES} consecutive scan attempts"
            f"{f' (last error: {cause})' if cause else ''}; worker "
            f"{self.worker_id} is giving up.{spool_note} Check the mount "
            f"(df -h; dmesg) and re-start workers with `repro work --queue "
            f"{self.queue.root}` — the queue state is resumable in place."
        )
