"""The elastic queue worker: claim → execute → publish, forever.

A :class:`QueueWorker` is completely stateless with respect to the grid:
everything it needs — task specs, leases, completion markers, the shared
execution context — lives in the queue directory, so workers can be
started or SIGKILLed at any moment mid-grid (``repro work --queue DIR``)
and the sweep converges regardless. Crash recovery is the lease
protocol's job: a worker that dies holding a lease simply stops
heartbeating, the lease expires, and any scanning worker reaps and
re-claims the cell. Results of re-issued cells are bit-identical to the
lost original (per-cell ``SeedSequence`` seeds), so publishes are
idempotent by construction.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field

from repro.dist.faults import FaultInjector, FaultPlan
from repro.dist.queue import WorkQueue
from repro.exp.tasks import execute_task
from repro.obs.events import bind
from repro.obs.logbridge import get_logger, kv
from repro.obs.metrics import MetricsRegistry

__all__ = ["QueueWorker", "WorkerReport", "Heartbeat", "new_worker_id"]

_log = get_logger("repro.dist.worker")


def new_worker_id() -> str:
    """A short host-qualified id (``host-pid-rand``) for shard naming."""
    return (
        f"{socket.gethostname().split('.')[0]}-{os.getpid()}-"
        f"{uuid.uuid4().hex[:6]}"
    )


class Heartbeat(threading.Thread):
    """Background lease renewal for the cell currently executing."""

    def __init__(
        self,
        queue: WorkQueue,
        key: str,
        owner: str,
        interval: float,
        faults: FaultInjector,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(name=f"heartbeat-{key[:8]}", daemon=True)
        self.queue = queue
        self.key = key
        self.owner = owner
        self.interval = interval
        self.faults = faults
        self.metrics = metrics
        self._halt = threading.Event()
        #: False once a renewal was refused (lease reaped + re-claimed);
        #: execution continues — the publish is idempotent — but the
        #: worker knows it became a straggler on this cell.
        self.owned = True

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            if not self.faults.on_heartbeat():
                continue  # scripted heartbeat loss: skip the renewal
            if self.queue.leases.renew(self.key, self.owner):
                if self.metrics is not None:
                    self.metrics.counter("lease.renews").inc()
            else:
                if self.owned:
                    _log.warning(
                        "lease renewal refused; continuing as straggler",
                        extra=kv(key=self.key, worker_id=self.owner),
                    )
                if self.metrics is not None:
                    self.metrics.counter("lease.renew_refused").inc()
                self.owned = False

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


@dataclass
class WorkerReport:
    """What one worker loop did before exiting."""

    worker_id: str
    executed: list[str] = field(default_factory=list)
    reaped: list[str] = field(default_factory=list)
    straggled: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)

    @property
    def cells_done(self) -> int:
        return len(self.executed)


class QueueWorker:
    """One claim/execute/publish loop over a shared work queue.

    Parameters
    ----------
    queue:
        The :class:`WorkQueue` (or its directory path).
    worker_id:
        Shard / lease owner id; defaults to a fresh host-qualified id.
    heartbeat_interval:
        Lease renewal period; defaults to a quarter of the queue's ttl
        so a healthy worker never comes close to expiry.
    poll_interval:
        Sleep between scans when nothing was claimable.
    max_cells:
        Stop after executing this many cells (None = unbounded).
    wait_for_work:
        Keep polling after the queue drains (elastic long-lived worker)
        instead of exiting. ``repro work --wait``.
    faults:
        Scripted :class:`FaultPlan` for the integration tests / CI.
    execute:
        Override for :func:`~repro.exp.tasks.execute_task` (same
        signature). The dispatch-overhead bench serves pre-computed
        results through this to time the coordination term alone.
    """

    def __init__(
        self,
        queue: WorkQueue | str | os.PathLike,
        worker_id: str | None = None,
        lease_ttl: float | None = None,
        heartbeat_interval: float | None = None,
        poll_interval: float = 0.2,
        max_cells: int | None = None,
        wait_for_work: bool = False,
        faults: FaultPlan | FaultInjector | None = None,
        execute=None,
    ) -> None:
        if not isinstance(queue, WorkQueue):
            queue = WorkQueue(queue, lease_ttl=lease_ttl or 30.0, create=False)
        elif lease_ttl is not None:
            queue.leases.ttl = float(lease_ttl)
        self.queue = queue
        self.worker_id = worker_id or new_worker_id()
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else queue.leases.ttl / 4.0
        )
        self.poll_interval = poll_interval
        self.max_cells = max_cells
        self.wait_for_work = wait_for_work
        self.faults = (
            faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        )
        self.execute = execute if execute is not None else execute_task
        self.report = WorkerReport(worker_id=self.worker_id)
        #: always-on private registry, published to the queue's
        #: ``metrics/`` dir so throughput/ETA work without --telemetry
        self.metrics = MetricsRegistry()
        self._started_at = time.time()
        #: mid-run snapshot publishes are throttled so sub-second cells
        #: don't pay one atomic JSON write each (exit always publishes)
        self.metrics_publish_interval = 0.5
        self._metrics_published_at = 0.0

    # -- the loop ---------------------------------------------------------

    def run(self) -> WorkerReport:
        """Work until the queue drains (or ``wait_for_work`` forever)."""
        meta = self.queue.read_meta()
        telemetry = meta.get("telemetry")
        if telemetry:
            # The enqueuer asked for telemetry: late-joining workers
            # follow the shared directory (no-op if already enabled).
            import repro.obs as obs

            obs.enable(telemetry)
        self._started_at = time.time()
        self.queue.register_worker(self.worker_id, cells_done=0)
        with bind(worker_id=self.worker_id):
            _log.info(
                "worker started",
                extra=kv(queue=str(self.queue.root), wait=self.wait_for_work),
            )
            while True:
                progress = self._scan_once(meta)
                if self.max_cells is not None and (
                    len(self.report.executed) >= self.max_cells
                ):
                    break
                if not progress:
                    if self._drained() and not self.wait_for_work:
                        break
                    time.sleep(self.poll_interval)
            self.queue.register_worker(
                self.worker_id, cells_done=self.report.cells_done, exited=True
            )
            self._publish_metrics(exited=True)
            _log.info(
                "worker exiting",
                extra=kv(
                    executed=len(self.report.executed),
                    reaped=len(self.report.reaped),
                    straggled=len(self.report.straggled),
                    failed=len(self.report.failed),
                ),
            )
        return self.report

    def _publish_metrics(self, exited: bool = False) -> None:
        now = time.time()
        if not exited and (
            now - self._metrics_published_at < self.metrics_publish_interval
        ):
            return
        self._metrics_published_at = now
        self.queue.write_worker_metrics(
            self.worker_id,
            self.metrics.snapshot(
                worker_id=self.worker_id,
                started_at=self._started_at,
                cells_done=self.report.cells_done,
                exited=exited,
            ),
        )

    def _drained(self) -> bool:
        """No cell left that this worker could ever make progress on.

        A live lease held by *someone else* does not count as drained —
        that owner may yet die, so the worker keeps polling until the
        cell is done (or poisoned by repeated failures).
        """
        for key in self.queue.task_keys():
            if self.queue.is_done(key) or self.queue.poisoned(key):
                continue
            return False
        return True

    def _scan_once(self, meta: dict) -> bool:
        """One pass over the task records; True when a cell executed."""
        for key in self.queue.task_keys():
            if self.queue.is_done(key) or self.queue.poisoned(key):
                continue
            lease = self.queue.leases.read(key)
            if lease is not None:
                if not lease.expired():
                    continue
                if not self.queue.leases.reap(key):
                    continue  # lost the reap race or the owner renewed
                self.report.reaped.append(key)
                self.metrics.counter("lease.reaps").inc()
                _log.warning(
                    "reaped expired lease",
                    extra=kv(key=key, prev_owner=lease.owner),
                )
            if not self.queue.leases.try_claim(key, self.worker_id):
                continue
            if self.queue.is_done(key):
                # Raced a straggler's publish between scan and claim.
                self.queue.leases.release(key, self.worker_id)
                self.metrics.counter("queue.straggler_dedupes").inc()
                _log.info(
                    "claim raced a straggler's publish; released",
                    extra=kv(key=key),
                )
                continue
            self.metrics.counter("lease.claims").inc()
            _log.info("claimed cell", extra=kv(key=key))
            self.faults.on_claim(key)
            self._execute_cell(key, meta)
            return True
        return False

    def _execute_cell(self, key: str, meta: dict) -> None:
        heartbeat = Heartbeat(
            self.queue, key, self.worker_id, self.heartbeat_interval, self.faults,
            metrics=self.metrics,
        )
        heartbeat.start()
        t0 = time.perf_counter()
        try:
            result = self.execute(
                self.queue.load_task(key),
                meta.get("trace_dir"),
                bool(meta.get("trace_compact", False)),
                int(meta.get("batch_episodes", 1)),
            )
        except Exception:
            # Record-and-continue is deliberate (the lease protocol
            # re-issues the cell elsewhere; MAX_ATTEMPTS poisons a
            # deterministic failure) — but never silently.
            heartbeat.stop()
            self.report.failed.append(key)
            self.metrics.counter("queue.failures").inc()
            attempts = self.queue.record_failure(
                key, self.worker_id, traceback.format_exc(limit=20)
            )
            _log.exception(
                "cell execution failed",
                extra=kv(key=key, attempts=attempts),
            )
            self.queue.leases.release(key, self.worker_id)
            self._publish_metrics()
            return
        heartbeat.stop()
        if not heartbeat.owned:
            self.report.straggled.append(key)
            self.metrics.counter("queue.straggles").inc()
            _log.warning(
                "publishing as straggler (lease was reaped mid-execution)",
                extra=kv(key=key),
            )
        result.worker_id = self.worker_id
        self.faults.on_publish(key)
        self.queue.publish(self.worker_id, result)
        self.queue.leases.release(key, self.worker_id)
        self.report.executed.append(key)
        self.metrics.counter("queue.cells_executed").inc()
        self.metrics.histogram("queue.cell_wall_s").observe(
            time.perf_counter() - t0
        )
        self.queue.register_worker(self.worker_id, cells_done=self.report.cells_done)
        self._publish_metrics()
        _log.info(
            "published cell",
            extra=kv(key=key, wall_s=round(result.wall_time, 3)),
        )
