"""``repro doctor``: audit (and repair) a queue directory after an
incident.

The queue's crash-safety story means *no* leftover state is fatal — a
re-run resumes through the manifest, leases age out, duplicate
publishes merge away. But an operator staring at a directory after a
bad night still needs to know what state it is in and what can be
cleaned. :func:`audit_queue` walks one queue directory and reports
every anomaly it understands, each as a :class:`Finding` with a
severity and (where safe) a mechanical repair:

* an unreadable/corrupt run manifest (repair: quarantine it — the next
  coordinator rebuilds it deterministically);
* a *staged* manifest, i.e. an enqueue that died in flight (resume by
  re-running the dispatch; nothing to repair mechanically);
* sealed-but-unpromoted batch files (repair: finish the promotion —
  it is idempotent);
* orphan staging files no manifest references (repair: delete);
* a dead coordinator's leader lease (repair: force-release);
* orphan leases on cells already done, and expired leases on pending
  cells (repair: force-release / reap);
* leftover reap tombstones (repair: delete);
* stale worker registrations that stopped heartbeating without an exit
  record (repair: mark exited+stale);
* leftover atomic-write temp files (repair: delete);
* poisoned cells, pending-vs-complete inconsistencies, quarantine
  contents and spool backlog (report-only — these need a human).

Dry-run by default; ``repair=True`` (CLI ``--repair``) applies the
mechanical repairs. ``DoctorReport.ok`` is True when nothing
unrepaired at warning-or-worse severity remains — the contract the CI
rehearsal asserts after a crash-and-resume cycle.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.dist.manifest import ManifestCorrupt
from repro.dist.queue import MAX_ATTEMPTS, WorkQueue
from repro.obs.logbridge import get_logger, kv

__all__ = ["audit_queue", "DoctorReport", "Finding"]

_log = get_logger("repro.dist.doctor")

SEVERITIES = ("info", "warn", "error")


@dataclass
class Finding:
    """One anomaly the doctor understands."""

    check: str
    severity: str  # info | warn | error
    path: str
    detail: str
    #: what --repair would do (empty: report-only)
    repair: str = ""
    #: whether the repair was applied this audit
    repaired: bool = False

    def to_json_dict(self) -> dict:
        return {
            "check": self.check,
            "severity": self.severity,
            "path": self.path,
            "detail": self.detail,
            "repair": self.repair,
            "repaired": self.repaired,
        }


@dataclass
class DoctorReport:
    """Everything one audit pass found (and possibly repaired)."""

    queue_dir: str
    repair: bool
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No unrepaired finding at warning-or-worse severity."""
        return not any(
            f.severity in ("warn", "error") and not f.repaired
            for f in self.findings
        )

    def counts(self) -> dict[str, int]:
        out = {s: 0 for s in SEVERITIES}
        for finding in self.findings:
            out[finding.severity] = out.get(finding.severity, 0) + 1
        return out

    def to_json_dict(self) -> dict:
        return {
            "queue_dir": self.queue_dir,
            "repair": self.repair,
            "ok": self.ok,
            "counts": self.counts(),
            "findings": [f.to_json_dict() for f in self.findings],
        }

    def summary(self) -> str:
        if not self.findings:
            return f"{self.queue_dir}: clean — nothing to report"
        lines = []
        for f in self.findings:
            state = (
                "repaired"
                if f.repaired
                else (f"repairable: {f.repair}" if f.repair else "report-only")
            )
            lines.append(
                f"[{f.severity:<5}] {f.check:<22} {f.path}\n"
                f"        {f.detail} ({state})"
            )
        counts = self.counts()
        verdict = "OK" if self.ok else "NOT OK"
        lines.append(
            f"{verdict}: {counts['error']} error(s), {counts['warn']} "
            f"warning(s), {counts['info']} note(s)"
            + ("" if self.repair else " — dry run; use --repair to act")
        )
        return "\n".join(lines)


class _Audit:
    def __init__(self, queue: WorkQueue, repair: bool, stale_worker_s: float):
        self.queue = queue
        self.repair = repair
        self.stale_worker_s = stale_worker_s
        self.report = DoctorReport(
            queue_dir=str(queue.root), repair=repair
        )

    def add(
        self, check: str, severity: str, path, detail: str,
        repair: str = "", fix=None,
    ) -> Finding:
        finding = Finding(
            check=check, severity=severity, path=str(path), detail=detail,
            repair=repair,
        )
        if self.repair and fix is not None:
            try:
                fix()
            except OSError as exc:
                finding.detail += f" [repair failed: {exc}]"
            else:
                finding.repaired = True
        self.report.findings.append(finding)
        return finding

    # -- checks ------------------------------------------------------------

    def manifest(self):
        queue = self.queue
        try:
            manifest = queue.read_manifest()
        except ManifestCorrupt as exc:
            self.add(
                "manifest-corrupt", "error", queue.manifest_path, str(exc),
                repair="quarantine the manifest (the next coordinator "
                       "run rebuilds it deterministically)",
                fix=lambda: queue.quarantine_manifest(str(exc)),
            )
            return None
        if manifest is None:
            self.add(
                "manifest-missing", "info", queue.manifest_path,
                "no run manifest (pre-manifest queue, or never "
                "coordinator-run); nothing wrong, nothing resumable",
            )
            return None
        if manifest.state == "staged":
            self.add(
                "manifest-staged", "warn", queue.manifest_path,
                f"enqueue generation {manifest.generation} died in "
                f"flight (manifest staged, never sealed); re-run the "
                f"dispatch to resume it",
            )
        return manifest

    def batches(self, manifest):
        queue = self.queue
        referenced = set(manifest.batches) if manifest is not None else set()
        staged_state = manifest is not None and manifest.state == "staged"
        if manifest is not None and manifest.state in ("sealed", "complete"):
            for name in manifest.batches:
                src = queue.staging_dir / name
                if src.exists():
                    self.add(
                        "batch-unpromoted", "warn", src,
                        "sealed manifest references this batch but it "
                        "was never promoted into tasks/ (crash between "
                        "seal and promote)",
                        repair="promote it (idempotent rename)",
                        fix=lambda n=name: queue.promote_staged((n,)),
                    )
        if queue.staging_dir.is_dir():
            for path in sorted(queue.staging_dir.iterdir()):
                if staged_state and path.name in referenced:
                    continue  # part of the interrupted enqueue above
                if path.name in referenced:
                    continue  # handled as batch-unpromoted
                self.add(
                    "staging-orphan", "warn", path,
                    "staging file no manifest references (enqueue died "
                    "before its manifest was written, or a stale "
                    "generation)",
                    repair="delete it (staged specs are re-derived "
                           "deterministically)",
                    fix=lambda p=path: p.unlink(),
                )

    def leases(self, done: set):
        from repro.dist.coordinator import _local_owner_dead

        queue = self.queue
        now = time.time()
        for lease in queue.leases.leases():
            path = queue.leases._path(lease.key)
            if lease.key.startswith("__"):
                if lease.expired(now) or _local_owner_dead(lease.owner):
                    self.add(
                        "coordinator-dead", "warn", path,
                        f"leader lease held by {lease.owner} "
                        f"({'expired' if lease.expired(now) else 'dead local pid'}); "
                        f"a re-run takes the run over",
                        repair="force-release the leader lease",
                        fix=lambda k=lease.key: queue.leases.force_release(k),
                    )
                else:
                    self.add(
                        "coordinator-live", "info", path,
                        f"coordinator {lease.owner} holds a live leader "
                        f"lease — the run is being driven right now",
                    )
                continue
            if lease.key in done:
                self.add(
                    "lease-orphan", "warn", path,
                    f"lease by {lease.owner} on a cell that is already "
                    f"done (worker died between publish and release)",
                    repair="force-release it",
                    fix=lambda k=lease.key: queue.leases.force_release(k),
                )
            elif lease.expired(now):
                self.add(
                    "lease-expired", "warn", path,
                    f"expired lease by {lease.owner} on a pending cell "
                    f"(owner stopped heartbeating); any worker would "
                    f"reap it on scan",
                    repair="reap it now",
                    fix=lambda k=lease.key: queue.leases.reap(k),
                )
        tombs = queue.leases._tombstones
        if tombs.is_dir():
            for path in sorted(tombs.iterdir()):
                self.add(
                    "reap-tombstone", "info", path,
                    "leftover reap tombstone (reaper died mid-reap); "
                    "harmless",
                    repair="delete it",
                    fix=lambda p=path: p.unlink(),
                )

    def cells(self, manifest, done: set):
        queue = self.queue
        keys = queue.task_keys()
        pending = [k for k in keys if k not in done]
        poisoned = [k for k in pending if queue.poisoned(k)]
        for key in poisoned:
            self.add(
                "cell-poisoned", "warn", queue.tasks_dir / key,
                f"cell failed {queue.failure_count(key)}/{MAX_ATTEMPTS} "
                f"attempts and was withdrawn; see failed/ for errors",
            )
        live_pending = [k for k in pending if k not in poisoned]
        if live_pending and manifest is not None and manifest.complete:
            self.add(
                "complete-but-pending", "error", queue.manifest_path,
                f"manifest says complete but {len(live_pending)} "
                f"cell(s) have no done marker — the completion flip "
                f"was wrong or done markers were lost",
            )
        elif live_pending:
            self.add(
                "cells-pending", "info", queue.tasks_dir,
                f"{len(live_pending)} cell(s) pending — workers (or a "
                f"dispatch re-run) will drain them",
            )
        if manifest is not None:
            specless = [
                k for k in manifest.keys
                if k not in set(keys) and k not in done
            ]
            if specless:
                self.add(
                    "spec-missing", "warn", queue.tasks_dir,
                    f"{len(specless)} manifest key(s) have neither a "
                    f"task spec nor a done marker (lost/corrupt batch "
                    f"lines); a dispatch re-run re-stages them",
                )

    def workers(self):
        queue = self.queue
        now = time.time()
        for worker in queue.workers():
            worker_id = worker.get("worker_id", "?")
            if worker.get("exited"):
                continue
            age = now - float(worker.get("last_seen", now))
            if age <= self.stale_worker_s:
                continue
            path = queue.workers_dir / f"{worker_id}.json"

            def fix(rec=dict(worker), p=path):
                rec.update(exited=True, stale=True)
                queue.store.atomic_write_json(p, rec)

            self.add(
                "worker-stale", "warn", path,
                f"worker {worker_id} last seen {age:.0f}s ago with no "
                f"exit record (crashed or partitioned)",
                repair="mark it exited (stale) so status stops "
                       "counting it",
                fix=fix,
            )

    def debris(self):
        queue = self.queue
        for path in sorted(queue.root.rglob(".*.tmp")):
            self.add(
                "tmp-debris", "info", path,
                "leftover atomic-write temp file (writer crashed "
                "mid-replace); harmless",
                repair="delete it",
                fix=lambda p=path: p.unlink(),
            )
        n_quarantined = queue.quarantine_count()
        if n_quarantined:
            self.add(
                "quarantine", "warn", queue.quarantine_dir,
                f"{n_quarantined} quarantined corrupt record(s) with "
                f"provenance — inspect before deleting; the cells were "
                f"re-issued, no data was merged from them",
            )
        spool = 0
        for snap in queue.worker_metrics():
            counters = snap.get("counters", {})
            spool += max(
                0,
                int(counters.get("store.degraded_entries", 0))
                - int(counters.get("store.spool_flushed", 0)),
            )
        if spool:
            self.add(
                "spool-backlog", "warn", queue.metrics_dir,
                f"{spool} result(s) spooled on worker-local disk and "
                f"never flushed (store outage outlived the worker); "
                f"the cells re-issue bit-identically, or salvage the "
                f"spool per the worker's exit message",
            )


def audit_queue(
    queue_dir: str | os.PathLike,
    *,
    repair: bool = False,
    stale_worker_s: float = 300.0,
) -> DoctorReport:
    """Audit one queue directory; see the module docstring for checks.

    Dry-run unless ``repair``; raises ``FileNotFoundError`` when
    ``queue_dir`` is not a queue directory.
    """
    queue = WorkQueue(queue_dir, create=False)
    audit = _Audit(queue, repair=repair, stale_worker_s=stale_worker_s)
    manifest = audit.manifest()
    done = queue.done_keys()
    audit.batches(manifest)
    audit.leases(done)
    audit.cells(manifest, done)
    audit.workers()
    audit.debris()
    _log.info(
        "queue audited",
        extra=kv(
            queue=str(queue.root), findings=len(audit.report.findings),
            ok=audit.report.ok, repair=repair,
        ),
    )
    return audit.report
