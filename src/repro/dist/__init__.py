"""Distributed experiment dispatch over a shared-directory work queue.

The coordination layer that promotes the experiment engine from a
single-host process pool to an elastic multi-worker service: grid cells
become lease-able task records in a shared directory
(:class:`~repro.dist.queue.WorkQueue`), claimed via an atomic serverless
lease protocol (:class:`~repro.dist.lease.LeaseBoard`), executed by any
number of :class:`~repro.dist.worker.QueueWorker` loops that may join or
leave mid-grid, and published durably to per-worker journal shards that
merge losslessly. Crash recovery is re-issue after lease expiry;
correctness under re-issue is free because every cell is a deterministic
function of its config hash and ``SeedSequence`` seed — duplicates are
bit-identical.

Every filesystem byte of that protocol moves through one storage seam
(:class:`~repro.dist.store.Store`): errno-classified bounded retry with
per-worker seeded jitter, CRC32-checksummed journal lines and task
specs with quarantine-on-corruption, deterministic IO fault injection
for tests, and :class:`~repro.dist.store.StoreUnavailable` as the
degraded-mode escalation signal (workers spool finished results locally
and flush when the store recovers).

The *run* is crash-safe end to end: a CRC-sealed run manifest
(:class:`~repro.dist.manifest.RunManifest`) records the grid expansion
and publishes the atomic batch enqueue, a coordinator leader-lease lets
any re-invocation attach to a live run or take over a dead one
(resuming to bit-identical merged metrics), crashed local workers can
be respawned with backoff and a crash-loop circuit breaker
(:class:`~repro.dist.supervise.WorkerSupervisor`, ``repro work
--supervise N``), and :func:`~repro.dist.doctor.audit_queue`
(``repro doctor``) reports/repairs whatever an incident left behind.

Use it through ``ExperimentRunner(dispatch="queue", queue_dir=...)``,
a scenario's ``execution`` block, or the ``repro work`` /
``repro queue-status`` / ``repro doctor`` CLI subcommands. Scripted
failures for tests live in :mod:`repro.dist.faults`.
"""

from repro.dist.coordinator import dispatch_tasks, worker_process_entry
from repro.dist.doctor import DoctorReport, Finding, audit_queue
from repro.dist.faults import FaultInjector, FaultPlan
from repro.dist.lease import Lease, LeaseBoard
from repro.dist.manifest import (
    COORDINATOR_KEY,
    ManifestCorrupt,
    RunManifest,
    ensure_enqueued,
)
from repro.dist.queue import QueueStatus, WorkQueue
from repro.dist.store import (
    RetryPolicy,
    Store,
    StoreUnavailable,
    classify_errno,
    seal_line,
    unseal_line,
)
from repro.dist.supervise import SupervisorReport, WorkerSupervisor
from repro.dist.worker import (
    CellTimeout,
    QueueWorker,
    WorkerReport,
    new_worker_id,
)

__all__ = [
    "WorkQueue",
    "QueueStatus",
    "Lease",
    "LeaseBoard",
    "QueueWorker",
    "WorkerReport",
    "CellTimeout",
    "FaultPlan",
    "FaultInjector",
    "Store",
    "StoreUnavailable",
    "RetryPolicy",
    "classify_errno",
    "seal_line",
    "unseal_line",
    "dispatch_tasks",
    "worker_process_entry",
    "new_worker_id",
    "RunManifest",
    "ManifestCorrupt",
    "ensure_enqueued",
    "COORDINATOR_KEY",
    "WorkerSupervisor",
    "SupervisorReport",
    "audit_queue",
    "DoctorReport",
    "Finding",
]
