"""Distributed experiment dispatch over a shared-directory work queue.

The coordination layer that promotes the experiment engine from a
single-host process pool to an elastic multi-worker service: grid cells
become lease-able task records in a shared directory
(:class:`~repro.dist.queue.WorkQueue`), claimed via an atomic serverless
lease protocol (:class:`~repro.dist.lease.LeaseBoard`), executed by any
number of :class:`~repro.dist.worker.QueueWorker` loops that may join or
leave mid-grid, and published durably to per-worker journal shards that
merge losslessly. Crash recovery is re-issue after lease expiry;
correctness under re-issue is free because every cell is a deterministic
function of its config hash and ``SeedSequence`` seed — duplicates are
bit-identical.

Use it through ``ExperimentRunner(dispatch="queue", queue_dir=...)``,
a scenario's ``execution`` block, or the ``repro work`` /
``repro queue-status`` CLI subcommands. Scripted failures for tests live
in :mod:`repro.dist.faults`.
"""

from repro.dist.coordinator import dispatch_tasks
from repro.dist.faults import FaultInjector, FaultPlan
from repro.dist.lease import Lease, LeaseBoard
from repro.dist.queue import QueueStatus, WorkQueue
from repro.dist.worker import QueueWorker, WorkerReport, new_worker_id

__all__ = [
    "WorkQueue",
    "QueueStatus",
    "Lease",
    "LeaseBoard",
    "QueueWorker",
    "WorkerReport",
    "FaultPlan",
    "FaultInjector",
    "dispatch_tasks",
    "new_worker_id",
]
