"""The ``BENCH_hotpath.json`` performance trajectory.

One JSON file at the repository root records how the hot path has moved
over time: an append-only list of entries, each one commit's benchmark
suite run. Raw wall times are kept for reading, but comparisons use the
**normalised** value ``wall_s / calibration_s`` — wall time in units of
a fixed NumPy reference workload timed on the same machine — so a
laptop entry and a CI entry are comparable.

The regression guard (:func:`check_regression`) protects the trajectory
the other way round: CI runs the smoke-scale suite, normalises it, and
fails when any benchmark is more than ``threshold``× slower than the
last committed entry measured at the same scale.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

from repro.perf.hotpath import BenchResult

__all__ = [
    "TRAJECTORY_PATH",
    "TRAJECTORY_SCHEMA_VERSION",
    "make_entry",
    "load_trajectory",
    "append_entry",
    "latest_entry",
    "check_regression",
    "format_entry",
]

TRAJECTORY_SCHEMA_VERSION = 1

#: default trajectory location: the repository root
TRAJECTORY_PATH = Path(__file__).resolve().parents[3] / "BENCH_hotpath.json"


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        return out.stdout.strip() if out.returncode == 0 else ""
    except (OSError, subprocess.SubprocessError):
        return ""


def make_entry(
    label: str,
    results: dict[str, BenchResult],
    calibration_s: float,
    scale: str = "full",
    commit: str | None = None,
) -> dict:
    """Assemble one trajectory entry from a suite run."""
    if calibration_s <= 0:
        raise ValueError("calibration_s must be positive")
    return {
        "label": label,
        "commit": _git_commit() if commit is None else commit,
        "date": time.strftime("%Y-%m-%d"),
        "scale": scale,
        "calibration_s": calibration_s,
        "results": {
            name: {
                **r.to_json_dict(),
                "normalized": r.wall_s / calibration_s,
            }
            for name, r in sorted(results.items())
        },
    }


def load_trajectory(path: str | os.PathLike = TRAJECTORY_PATH) -> dict:
    """The trajectory document (an empty skeleton when absent)."""
    path = Path(path)
    if not path.exists():
        return {"schema": TRAJECTORY_SCHEMA_VERSION, "trajectory": []}
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != TRAJECTORY_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trajectory schema {doc.get('schema')!r} in {path}"
        )
    return doc


def append_entry(entry: dict, path: str | os.PathLike = TRAJECTORY_PATH) -> dict:
    """Append ``entry`` to the trajectory file; returns the document."""
    path = Path(path)
    doc = load_trajectory(path)
    doc["trajectory"].append(entry)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return doc


def latest_entry(
    doc: dict, scale: str | None = None, before_label: str | None = None
) -> dict | None:
    """The most recent entry (optionally: at ``scale``, excluding one label)."""
    for entry in reversed(doc.get("trajectory", [])):
        if scale is not None and entry.get("scale") != scale:
            continue
        if before_label is not None and entry.get("label") == before_label:
            continue
        return entry
    return None


def check_regression(
    current: dict, baseline: dict, threshold: float = 1.5
) -> list[str]:
    """Normalised-slowdown guard: current vs a committed baseline entry.

    Returns one message per benchmark whose ``normalized`` value exceeds
    ``threshold``× the baseline's (empty list = pass). Benchmarks absent
    from either entry are skipped — the guard protects what both runs
    measured.
    """
    failures = []
    base_results = baseline.get("results", {})
    for name, cur in sorted(current.get("results", {}).items()):
        base = base_results.get(name)
        if base is None:
            continue
        ratio = cur["normalized"] / base["normalized"]
        if ratio > threshold:
            failures.append(
                f"{name}: {ratio:.2f}x slower than baseline "
                f"{baseline.get('label', '?')} "
                f"(normalized {cur['normalized']:.3f} vs {base['normalized']:.3f}, "
                f"threshold {threshold:.2f}x)"
            )
    return failures


def format_entry(entry: dict) -> str:
    """Human-readable table of one trajectory entry."""
    lines = [
        f"{entry.get('label', '?')} ({entry.get('commit', '?') or 'no commit'}, "
        f"{entry.get('date', '?')}, scale={entry.get('scale', '?')}, "
        f"calibration {entry.get('calibration_s', float('nan')):.3f}s)",
        f"  {'benchmark':<22} {'wall s':>10} {'per unit ms':>12} {'normalized':>11}",
    ]
    for name, r in sorted(entry.get("results", {}).items()):
        line = (
            f"  {name:<22} {r['wall_s']:>10.3f} {r['per_unit_ms']:>12.4f} "
            f"{r['normalized']:>11.3f}"
        )
        speedup = r.get("meta", {}).get("speedup_vs_fresh")
        if speedup is not None:
            line += f"  ({speedup:.1f}x vs fresh encode)"
        lines.append(line)
    return "\n".join(lines)
