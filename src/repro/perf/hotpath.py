"""Hot-path micro-benchmarks (PR 4's measured surface).

Each benchmark exercises one layer the replay pipeline leans on:

* :func:`bench_fcfs_replay` — end-to-end event-driven replay of a
  saturated Theta-like trace under FCFS+EASY. Dominated by the
  scheduler-loop bookkeeping (window extraction, dequeues, the
  vectorized backfill pass) — the paper-scale scaling term.
* :func:`bench_mrsch_episode` — one MRSch training episode (simulation
  rollout with per-decision DFP scoring + the replay-buffer training
  epoch), i.e. the §III-D curriculum unit of work.
* :func:`bench_pool_accounting` — ResourcePool allocate/release churn
  interleaved with the EASY order-statistic queries
  (``earliest_fit_time`` / ``free_units_at`` / ``can_fit``).
* :func:`bench_dfp_scoring` — per-decision ``forward_scores`` calls
  (the folded inference path), optionally in float32.
* :func:`bench_batched_episodes` — N lockstep inference episodes
  through :class:`~repro.sim.batched.BatchedSimulator` (one
  ``action_scores_batch`` GEMM per macro-step) against the same N
  episodes replayed one at a time, with an end-to-end decision-identity
  check between the two paths.
* :func:`bench_mrsch_theta_decision` — per-decision MRSch state
  maintenance at the paper's real machine geometry (4,392 nodes +
  1,290 BB units → an 11k-element §III-A vector): a deterministic
  §III-C-shaped decision stream replayed through the incremental
  encoder, with the fresh-``encode`` reference timed on the identical
  stream for the speedup claim.

This module deliberately touches only long-stable public APIs
(simulator, schedulers, pool, trace generator, DFP agent), so the very
same file can be dropped onto an older checkout to measure a historical
commit for the ``BENCH_hotpath.json`` trajectory.

Timings are wall-clock (``perf_counter``) around the measured phase
only — trace generation and scheduler construction are setup.
:func:`calibrate` times a fixed NumPy workload so trajectory entries
carry a machine-speed yardstick; regression checks compare
``wall / calibration`` ratios, not raw seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "BenchResult",
    "calibrate",
    "bench_fcfs_replay",
    "bench_mrsch_episode",
    "bench_pool_accounting",
    "bench_dfp_scoring",
    "bench_mrsch_theta_decision",
    "bench_batched_episodes",
    "bench_dispatch_overhead",
    "bench_telemetry_overhead",
    "run_suite",
    "list_benches",
    "BENCHES",
    "SCALES",
]


@dataclass
class BenchResult:
    """One benchmark measurement."""

    name: str
    wall_s: float
    #: work units behind ``wall_s`` (jobs replayed, decisions scored …)
    n_units: int
    #: free-form sizing/context (trace size, queue depth, dtype, …)
    meta: dict = field(default_factory=dict)

    @property
    def per_unit_ms(self) -> float:
        return 1e3 * self.wall_s / max(self.n_units, 1)

    def to_json_dict(self) -> dict:
        return {
            "wall_s": self.wall_s,
            "n_units": self.n_units,
            "per_unit_ms": self.per_unit_ms,
            "meta": dict(self.meta),
        }


def calibrate(repeats: int = 3) -> float:
    """Seconds for a fixed NumPy reference workload (median of runs).

    A machine-speed yardstick: trajectory entries store raw wall time
    *and* ``wall / calibration``, so the regression guard compares
    commits meaningfully even across laptops/CI runners.
    """
    rng = np.random.default_rng(0)
    a = rng.normal(size=(256, 256))
    b = rng.normal(size=(256, 256))
    v = rng.normal(size=200_000)
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = a
        for _ in range(60):
            acc = np.tanh(acc @ b * 1e-2)
        np.sort(v.copy())
        times.append(time.perf_counter() - t0)
    times.sort()
    return float(times[len(times) // 2])


# -- workload construction ---------------------------------------------------


def _saturated_trace(n_jobs: int, nodes: int, bb_units: int, seed: int,
                     mean_interarrival: float):
    """A Theta-like trace that keeps deep queues (the hard regime)."""
    from repro.cluster.resources import SystemConfig
    from repro.workload.suites import build_workload
    from repro.workload.theta import ThetaTraceConfig, generate_theta_trace

    system = SystemConfig.mini_theta(nodes=nodes, bb_units=bb_units)
    base = generate_theta_trace(
        ThetaTraceConfig(
            total_nodes=nodes, n_jobs=n_jobs, mean_interarrival=mean_interarrival
        ),
        seed=seed,
    )
    jobs = build_workload("S3", base, system, seed=seed)
    return system, jobs


# -- benchmarks ---------------------------------------------------------------


def bench_fcfs_replay(
    n_jobs: int = 20_000,
    nodes: int = 128,
    bb_units: int = 64,
    mean_interarrival: float = 55.0,
    seed: int = 7,
) -> BenchResult:
    """Replay ``n_jobs`` under FCFS+EASY; the end-to-end hot path."""
    from repro.sched.fcfs import FCFSScheduler
    from repro.sim.simulator import Simulator

    system, jobs = _saturated_trace(n_jobs, nodes, bb_units, seed, mean_interarrival)
    sim = Simulator(system, FCFSScheduler(window_size=10), record_timeline=False)
    t0 = time.perf_counter()
    result = sim.run(jobs)
    wall = time.perf_counter() - t0
    return BenchResult(
        name="fcfs_replay",
        wall_s=wall,
        n_units=n_jobs,
        meta={
            "nodes": nodes,
            "bb_units": bb_units,
            "mean_interarrival": mean_interarrival,
            "makespan": result.makespan,
            "instances": result.n_scheduling_instances,
        },
    )


def bench_mrsch_episode(
    n_jobs: int = 2_500,
    nodes: int = 128,
    bb_units: int = 64,
    mean_interarrival: float = 110.0,
    seed: int = 11,
    agent_seed: int = 5,
) -> BenchResult:
    """One MRSch training episode: rollout + replay training epoch."""
    from repro.core.mrsch import MRSchScheduler
    from repro.core.training import train_episodes

    system, jobs = _saturated_trace(n_jobs, nodes, bb_units, seed, mean_interarrival)
    sched = MRSchScheduler(system, window_size=10, seed=agent_seed)
    t0 = time.perf_counter()
    result = train_episodes(sched, [jobs], system)
    wall = time.perf_counter() - t0
    return BenchResult(
        name="mrsch_episode",
        wall_s=wall,
        n_units=n_jobs,
        meta={
            "nodes": nodes,
            "bb_units": bb_units,
            "mean_interarrival": mean_interarrival,
            "final_loss": result.final_loss(),
        },
    )


def bench_pool_accounting(
    n_rounds: int = 2_000, nodes: int = 512, bb_units: int = 256, seed: int = 3
) -> BenchResult:
    """Allocate/release churn + EASY order-statistic queries."""
    from repro.cluster.resources import ResourcePool, SystemConfig
    from repro.workload.job import Job

    system = SystemConfig.mini_theta(nodes=nodes, bb_units=bb_units)
    pool = ResourcePool(system)
    rng = np.random.default_rng(seed)
    jobs = [
        Job(
            job_id=i,
            submit_time=0.0,
            runtime=float(rng.integers(60, 5000)),
            walltime=float(rng.integers(5000, 20000)),
            requests={
                "node": int(rng.integers(1, nodes // 4)),
                "burst_buffer": int(rng.integers(0, bb_units // 4)),
            },
        )
        for i in range(64)
    ]
    probe = jobs[0]
    active: list[Job] = []
    t0 = time.perf_counter()
    now = 0.0
    n_queries = 0
    for round_i in range(n_rounds):
        now += 10.0
        job = jobs[round_i % len(jobs)]
        if job.job_id in {j.job_id for j in active}:
            pool.release(job)
            active.remove(job)
        elif pool.can_fit(job):
            pool.allocate(job, now)
            active.append(job)
        # An EASY pass worth of queries against the current state.
        shadow = pool.earliest_fit_time(probe, now)
        for name in system.names:
            pool.free_units_at(name, shadow, now)
        for j in jobs[:8]:
            pool.can_fit(j)
        n_queries += 1 + system.n_resources + 8
    wall = time.perf_counter() - t0
    for job in active:
        pool.release(job)
    return BenchResult(
        name="pool_accounting",
        wall_s=wall,
        n_units=n_queries,
        meta={"nodes": nodes, "bb_units": bb_units, "rounds": n_rounds},
    )


def bench_dfp_scoring(
    n_calls: int = 2_000,
    nodes: int = 128,
    bb_units: int = 64,
    window: int = 10,
    seed: int = 9,
    dtype: str | None = None,
) -> BenchResult:
    """Per-decision folded inference (``forward_scores``), B = 1.

    ``dtype="float32"`` opts into the reduced-precision scoring mode on
    checkouts that provide it (silently skipped on older ones, so the
    trajectory driver can run the same file everywhere).
    """
    from repro.cluster.resources import ResourcePool, SystemConfig
    from repro.core.dfp import DFPAgent, DFPConfig
    from repro.core.encoding import StateEncoder

    system = SystemConfig.mini_theta(nodes=nodes, bb_units=bb_units)
    encoder = StateEncoder(system, window_size=window)
    config = DFPConfig(
        state_dim=encoder.state_dim,
        n_measurements=system.n_resources,
        n_actions=window,
        slot_dim=encoder.job_dim,
    )
    agent = DFPAgent(config, rng=seed)
    if dtype is not None and hasattr(agent, "set_inference_dtype"):
        agent.set_inference_dtype(dtype)
    # Report the dtype the network is *configured* with, read back from
    # the agent — not the request. On checkouts without the reduced-
    # precision mode a float32 request silently measures float64, and
    # the trajectory entry must say so (the committed pr3-seed entry is
    # exactly such a run).
    applied_dtype = "float64"
    network = getattr(agent, "network", None)
    if network is not None and hasattr(network, "inference_dtype"):
        applied_dtype = np.dtype(network.inference_dtype).name
    rng = np.random.default_rng(seed)
    pool = ResourcePool(system)
    state = rng.normal(size=encoder.state_dim)
    measurement = pool.utilizations()
    goal = np.full(system.n_resources, 1.0 / system.n_resources)
    agent.action_scores(state, measurement, goal)  # warm buffers/caches
    t0 = time.perf_counter()
    for _ in range(n_calls):
        agent.action_scores(state, measurement, goal)
    wall = time.perf_counter() - t0
    return BenchResult(
        name="dfp_scoring" if dtype is None else f"dfp_scoring_{dtype}",
        wall_s=wall,
        n_units=n_calls,
        meta={
            "state_dim": encoder.state_dim,
            "window": window,
            "dtype": applied_dtype,
            "requested_dtype": dtype or "float64",
        },
    )


def bench_mrsch_theta_decision(
    n_decisions: int = 2_000,
    nodes: int = 4392,
    bb_units: int = 1290,
    window: int = 10,
    seed: int = 13,
) -> BenchResult:
    """Per-decision MRSch state maintenance at full-machine geometry.

    Replays a deterministic §III-C-shaped decision stream — scheduling
    instances of several selections at one clock, allocations on
    fitting picks, releases and a clock advance between instances —
    and accumulates the wall time of the per-decision *state assembly*:
    the §III-A encode plus the feasibility inputs (window request
    matrix + fits vector) the MRSch prior consumes. Pool mutations and
    window bookkeeping run outside the timer, identically for both
    paths. ``wall_s`` measures the incremental pipeline (what the MRSch
    scheduler ships with); the fresh-``encode`` reference — a fresh
    ``StateEncoder.encode`` plus per-job request extraction and
    ``can_fit`` probes, the pre-incremental ``select`` data path — is
    timed on the *identical* stream and reported in ``meta`` together
    with the speedup and a final-state equality check. On checkouts
    predating the incremental encoder the reference path is what gets
    measured (``meta.encoder`` says which).

    DFP scoring cost is deliberately excluded — ``bench_dfp_scoring``
    owns it; this benchmark isolates the per-decision state-maintenance
    term the ROADMAP's full-machine-scale open item named.
    """
    from repro.cluster.resources import ResourcePool, SystemConfig
    from repro.core.encoding import StateEncoder
    from repro.workload.job import Job

    try:
        from repro.core.encoding import IncrementalStateEncoder
    except ImportError:  # pre-PR-5 checkout: measure the reference path
        IncrementalStateEncoder = None

    system = SystemConfig.mini_theta(nodes=nodes, bb_units=bb_units)
    names = system.names

    def make_jobs() -> list[Job]:
        rng = np.random.default_rng(seed)
        return [
            Job(
                job_id=i,
                submit_time=float(rng.integers(0, 50_000)),
                runtime=float(rng.integers(300, 40_000)),
                walltime=float(rng.integers(40_000, 90_000)),
                requests={
                    "node": int(rng.integers(1, max(2, nodes // 8))),
                    "burst_buffer": int(rng.integers(0, max(1, bb_units // 8))),
                },
            )
            for i in range(256)
        ]

    def fresh_decide(encoder):
        def decide(pending, pool, now):
            state = encoder.encode(pending, pool, now)
            reqs = np.array(
                [[job.request(name) for name in names] for job in pending],
                dtype=float,
            )
            fits = np.fromiter(
                (pool.can_fit(job) for job in pending), dtype=bool, count=len(pending)
            )
            return state, reqs, fits

        return decide

    def incremental_decide(encoder):
        return encoder.encode_decision

    def replay(decide) -> tuple[float, np.ndarray]:
        """Drive the decision stream; returns (Σ decision wall, final state).

        The waiting queue is FIFO, as in the simulator: the window is
        the queue head, a start removes its job (later slots shift up),
        and completed jobs re-enter at the *tail* as recycled arrivals
        so the stream never drains.
        """
        rng = np.random.default_rng(seed + 1)
        queue = make_jobs()
        pool = ResourcePool(system)
        active: list[tuple[float, Job]] = []
        now = 0.0
        wall = 0.0
        decisions = 0
        state = None
        while decisions < n_decisions:
            now += float(rng.integers(30, 3_000))
            for end, job in [pair for pair in active if pair[0] <= now]:
                pool.release(job)
                active.remove((end, job))
                queue.append(job)
            selections = 1 + int(rng.integers(0, 4))
            for _ in range(selections):
                pending = queue[:window]
                if not pending:
                    break
                t0 = time.perf_counter()
                state, _, fits = decide(pending, pool, now)
                wall += time.perf_counter() - t0
                decisions += 1
                started = np.flatnonzero(fits)
                if started.size:
                    job = pending[int(started[0])]
                    pool.allocate(job, now)
                    active.append((now + job.runtime, job))
                    queue.remove(job)
                if decisions >= n_decisions:
                    break
        return wall, np.array(state, dtype=float, copy=True)

    reference = StateEncoder(system, window_size=window)
    wall_ref, state_ref = replay(fresh_decide(reference))
    meta = {
        "nodes": nodes,
        "bb_units": bb_units,
        "window": window,
        "state_dim": reference.state_dim,
    }
    if IncrementalStateEncoder is None:
        meta["encoder"] = "fresh"
        wall = wall_ref
    else:
        incremental = IncrementalStateEncoder(StateEncoder(system, window_size=window))
        wall, state_inc = replay(incremental_decide(incremental))
        meta.update(
            encoder="incremental",
            reference_wall_s=wall_ref,
            speedup_vs_fresh=wall_ref / wall if wall > 0 else float("inf"),
            bit_identical=bool(np.array_equal(state_ref, state_inc)),
        )
    return BenchResult(
        name="mrsch_theta_decision",
        wall_s=wall,
        n_units=n_decisions,
        meta=meta,
    )


def bench_batched_episodes(
    n_episodes: int = 32,
    n_jobs: int = 150,
    nodes: int = 4392,
    bb_units: int = 1290,
    mean_interarrival: float = 800.0,
    seed: int = 17,
    agent_seed: int = 5,
    repeats: int = 5,
) -> BenchResult:
    """N lockstep MRSch inference episodes vs N sequential replays.

    The aggregate-throughput claim of the batched substrate: the same N
    episodes (same seeds, same trained-from-init agent weights) are
    replayed once sequentially — one ``forward_scores`` call per
    decision — and once through :class:`~repro.sim.batched
    .BatchedSimulator`, which stacks every episode awaiting a decision
    into ONE ``action_scores_batch`` call per macro-step. ``wall_s`` is
    the batched wall; ``meta`` carries the sequential wall, the
    speedup, the batching statistics actually achieved (calls/rows) and
    an end-to-end decision-identity check between the two paths.

    The default geometry is the paper's real machine (4,392 nodes +
    1,290 burst-buffer units → an ~11k-element §III-A state), in a
    drained-queue regime where nearly every job start is a window
    decision rather than a backfill move: that is exactly where
    per-decision network cost dominates the replay and stacking rows
    into one GEMM pays. At mini-Theta widths the network is a minor
    term and batching is roughly wall-neutral — the bench documents the
    regime honestly instead of hiding it.
    """
    from repro.core.mrsch import MRSchScheduler
    from repro.sim.batched import BatchedSimulator
    from repro.sim.simulator import Simulator

    system, _ = _saturated_trace(8, nodes, bb_units, seed, mean_interarrival)
    jobsets = [
        _saturated_trace(n_jobs, nodes, bb_units, seed + i, mean_interarrival)[1]
        for i in range(n_episodes)
    ]

    # Inference replays consume no RNG, so every repeat reproduces the
    # same decisions; repeats are interleaved and the minimum wall kept
    # per path to suppress scheduler-noise / BLAS-thread interference.
    wall_seq = wall = float("inf")
    seq_results = bat_results = None
    batched = None
    for _ in range(max(1, repeats)):
        seq_sched = MRSchScheduler(system, window_size=10, seed=agent_seed)
        sim = Simulator(system, seq_sched, record_timeline=False)
        t0 = time.perf_counter()
        results = [sim.run(jobs) for jobs in jobsets]
        wall_seq = min(wall_seq, time.perf_counter() - t0)
        seq_results = seq_results or results

        bat_sched = MRSchScheduler(system, window_size=10, seed=agent_seed)
        trial = BatchedSimulator.for_scheduler(
            system, bat_sched, n_episodes, record_timeline=False
        )
        t0 = time.perf_counter()
        results = trial.run(jobsets)
        elapsed = time.perf_counter() - t0
        if elapsed < wall:
            wall, batched = elapsed, trial
        bat_results = bat_results or results

    identical = all(
        [(j.job_id, j.start_time) for j in a.jobs]
        == [(j.job_id, j.start_time) for j in b.jobs]
        for a, b in zip(seq_results, bat_results)
    )
    return BenchResult(
        name="batched_episodes",
        wall_s=wall,
        n_units=n_episodes * n_jobs,
        meta={
            "n_episodes": n_episodes,
            "n_jobs": n_jobs,
            "nodes": nodes,
            "bb_units": bb_units,
            "mean_interarrival": mean_interarrival,
            "repeats": max(1, repeats),
            "state_dim": bat_sched.encoder.state_dim,
            "sequential_wall_s": wall_seq,
            "speedup_vs_sequential": wall_seq / wall if wall > 0 else float("inf"),
            "decision_identical": bool(identical),
            "batch_calls": batched.batch_calls,
            "scored_rows": batched.scored_rows,
        },
    )


def bench_dispatch_overhead(
    n_jobs: int = 120,
    nodes: int = 64,
    bb_units: int = 32,
    n_seeds: int = 2,
    window_size: int = 5,
    seed: int = 3,
    repeats: int = 3,
) -> BenchResult:
    """Per-cell coordination cost of queue dispatch (``repro.dist``).

    The coordination term is *additive*: claim, task-spec read, fsynced
    journal publish, done marker and lease release happen strictly
    before/after a cell executes. Differencing two noisy end-to-end
    walls cannot resolve a ~5 ms/cell term under ±30% cell-execution
    noise, so the bench times the term directly: the full queue path —
    enqueue, inline worker drain, shard merge — with cell results served
    from a pre-computed table through the worker's ``execute`` hook.
    ``wall_s`` is that coordination-only wall (min over interleaved
    repeats); ``meta`` carries the serial execution floor measured on
    the identical grid, ``overhead_fraction`` (coordination wall over
    serial wall — the <10% guard), and a bit-identity check from one
    *real* end-to-end queue run against the serial results. Worker
    process spawn is deliberately out of scope: a fixed per-worker cost,
    not part of the per-cell scaling this bench guards.

    On checkouts predating ``repro.dist`` only the serial floor is
    measured (``meta.dispatch`` says which).
    """
    import tempfile

    from repro.exp.runner import grid_tasks
    from repro.exp.tasks import execute_task
    from repro.experiments.harness import ExperimentConfig

    try:
        from repro.dist import QueueWorker, WorkQueue
    except ImportError:  # pre-dist checkout: measure the serial floor
        QueueWorker = WorkQueue = None

    config = ExperimentConfig(
        nodes=nodes, bb_units=bb_units, n_jobs=n_jobs,
        window_size=window_size, seed=seed,
    )
    tasks = grid_tasks(["heuristic", "scalar_rl"], ["S1"], config, n_seeds=n_seeds)
    execute_task(tasks[0], None, False, 1)  # warm imports/caches

    def queue_drain(execute) -> tuple[float, dict]:
        with tempfile.TemporaryDirectory(prefix="bench-dispatch-") as tmp:
            t0 = time.perf_counter()
            queue = WorkQueue(tmp, lease_ttl=30.0)
            queue.write_meta(batch_episodes=1)
            queue.enqueue(tasks)
            QueueWorker(queue, worker_id="bench-inline", execute=execute).run()
            merged = queue.merged_results()
            return time.perf_counter() - t0, merged

    serial_wall = wall = float("inf")
    serial: dict | None = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        results = {task.key(): execute_task(task, None, False, 1) for task in tasks}
        serial_wall = min(serial_wall, time.perf_counter() - t0)
        serial = serial or results
        if WorkQueue is not None:
            coord_wall, _ = queue_drain(lambda task, *args: serial[task.key()])
            wall = min(wall, coord_wall)

    meta = {
        "nodes": nodes,
        "bb_units": bb_units,
        "n_jobs": n_jobs,
        "n_cells": len(tasks),
        "repeats": max(1, repeats),
        "serial_wall_s": serial_wall,
    }
    if WorkQueue is None:
        meta["dispatch"] = "serial-only"
        wall = serial_wall
    else:
        _, merged = queue_drain(execute_task)  # real end-to-end run
        identical = all(
            merged[key].metrics[w].full_dict() == result.metrics[w].full_dict()
            for key, result in serial.items()
            for w in result.metrics
        )
        meta.update(
            dispatch="queue-inline",
            overhead_fraction=wall / serial_wall
            if serial_wall > 0
            else float("inf"),
            bit_identical=bool(identical),
        )
    return BenchResult(
        name="dispatch_overhead",
        wall_s=wall,
        n_units=len(tasks),
        meta=meta,
    )


def bench_telemetry_overhead(
    n_jobs: int = 2_000,
    nodes: int = 128,
    bb_units: int = 64,
    mean_interarrival: float = 110.0,
    seed: int = 19,
    agent_seed: int = 5,
    repeats: int = 3,
) -> BenchResult:
    """Wall cost of an enabled telemetry session on the decision path.

    Replays the same MRSch inference episode twice per repeat —
    telemetry disabled, then enabled with the sampled decision-latency
    probe armed and all sinks writing to a real (temporary) directory —
    interleaved, minimum wall kept per path. ``wall_s`` is the
    *enabled* wall so the regression guard tracks the instrumented
    path; ``meta`` carries the disabled wall, the overhead fraction
    (the <2% claim), the sampled-decision count, and a decision
    bit-identity check between the two replays (telemetry consumes no
    RNG and touches no simulation state, so the job start streams must
    be byte-equal).

    The *disabled* cost — the ``None`` attribute check the hot loops
    pay on every selection — is covered by every other benchmark in
    this suite: they all run with telemetry off under the same
    normalized regression guard.
    """
    import tempfile

    import repro.obs as obs
    from repro.core.mrsch import MRSchScheduler
    from repro.sim.simulator import Simulator

    if obs.enabled():
        raise RuntimeError(
            "bench_telemetry_overhead needs telemetry disabled at entry "
            "(it measures enable/disable itself)"
        )
    system, jobs = _saturated_trace(n_jobs, nodes, bb_units, seed, mean_interarrival)

    def replay() -> tuple[float, list]:
        sched = MRSchScheduler(system, window_size=10, seed=agent_seed)
        sim = Simulator(system, sched, record_timeline=False)
        t0 = time.perf_counter()
        result = sim.run(jobs)
        wall = time.perf_counter() - t0
        return wall, [(j.job_id, j.start_time) for j in result.jobs]

    replay()  # warm imports/caches outside both timed paths
    wall_off = wall_on = float("inf")
    starts_off = starts_on = None
    decisions = sampled = 0
    with tempfile.TemporaryDirectory(prefix="bench-telemetry-") as tmp:
        for _ in range(max(1, repeats)):
            wall, starts = replay()
            wall_off = min(wall_off, wall)
            starts_off = starts_off or starts

            session = obs.enable(tmp, sample_decisions=True)
            try:
                wall, starts = replay()
                decisions = session.decision_probe.decisions
                sampled = session.metrics.counter("sched.decisions_sampled").value
            finally:
                obs.disable()
            wall_on = min(wall_on, wall)
            starts_on = starts_on or starts

    return BenchResult(
        name="telemetry_overhead",
        wall_s=wall_on,
        n_units=n_jobs,
        meta={
            "nodes": nodes,
            "bb_units": bb_units,
            "mean_interarrival": mean_interarrival,
            "repeats": max(1, repeats),
            "disabled_wall_s": wall_off,
            "overhead_fraction": (wall_on / wall_off - 1.0)
            if wall_off > 0
            else float("inf"),
            "decisions": decisions,
            "decisions_sampled": sampled,
            "bit_identical": bool(starts_off == starts_on),
        },
    )


#: the suite's benchmarks, in run order: name → (callable, one-line
#: description). ``repro bench --list`` and ``--only`` are driven from
#: this registry, so adding a benchmark here is all a future perf PR
#: needs to do.
BENCHES: dict[str, tuple] = {
    "fcfs_replay": (
        bench_fcfs_replay,
        "end-to-end saturated FCFS+EASY replay (scheduler-loop scaling)",
    ),
    "mrsch_episode": (
        bench_mrsch_episode,
        "one MRSch training episode: rollout + replay training epoch",
    ),
    "pool_accounting": (
        bench_pool_accounting,
        "pool allocate/release churn + EASY order-statistic queries",
    ),
    "dfp_scoring": (
        bench_dfp_scoring,
        "per-decision folded DFP inference (plus a float32 variant)",
    ),
    "mrsch_theta_decision": (
        bench_mrsch_theta_decision,
        "incremental vs fresh per-decision state encoding at Theta geometry",
    ),
    "batched_episodes": (
        bench_batched_episodes,
        "N lockstep MRSch episodes, one batched network call per macro-step",
    ),
    "dispatch_overhead": (
        bench_dispatch_overhead,
        "queue-dispatch coordination cost vs bare serial execution",
    ),
    "telemetry_overhead": (
        bench_telemetry_overhead,
        "enabled-telemetry wall cost on the MRSch decision hot path",
    ),
}

#: benchmark sizings: "full" demonstrates the paper-scale claims,
#: "smoke" finishes in seconds for the CI fast lane
SCALES: dict[str, dict] = {
    "full": {
        "fcfs_replay": {"n_jobs": 20_000, "mean_interarrival": 55.0},
        "mrsch_episode": {"n_jobs": 2_500, "mean_interarrival": 110.0},
        "pool_accounting": {"n_rounds": 2_000},
        "dfp_scoring": {"n_calls": 2_000},
        "mrsch_theta_decision": {"n_decisions": 2_000, "nodes": 4392, "bb_units": 1290},
        "batched_episodes": {"n_episodes": 32, "n_jobs": 150},
        "dispatch_overhead": {"n_jobs": 400, "n_seeds": 3},
        "telemetry_overhead": {"n_jobs": 1_200, "repeats": 3},
    },
    "smoke": {
        "fcfs_replay": {"n_jobs": 1_500, "mean_interarrival": 70.0},
        "mrsch_episode": {"n_jobs": 250, "mean_interarrival": 150.0},
        "pool_accounting": {"n_rounds": 300},
        "dfp_scoring": {"n_calls": 300},
        "mrsch_theta_decision": {"n_decisions": 300, "nodes": 256, "bb_units": 128},
        "batched_episodes": {
            "n_episodes": 4,
            "n_jobs": 60,
            "nodes": 256,
            "bb_units": 128,
            "repeats": 1,
        },
        "dispatch_overhead": {"n_jobs": 400, "n_seeds": 2},
        "telemetry_overhead": {"n_jobs": 200, "repeats": 2},
    },
}


def list_benches() -> list[dict]:
    """Name, description and per-scale sizing of every benchmark."""
    return [
        {
            "name": name,
            "description": description,
            "sizes": {scale: dict(SCALES[scale].get(name, {})) for scale in SCALES},
        }
        for name, (_, description) in BENCHES.items()
    ]


def run_suite(
    scale: str = "full",
    float32: bool = True,
    only: list[str] | None = None,
) -> dict[str, BenchResult]:
    """Run the hot-path benchmarks at ``scale``; keyed by name.

    ``only`` restricts the run to a subset of :data:`BENCHES` (the
    float32 scoring variant rides with ``dfp_scoring``).
    """
    if scale not in SCALES:
        raise ValueError(f"unknown bench scale {scale!r}; choose from {sorted(SCALES)}")
    names = list(BENCHES) if only is None else list(only)
    unknown = sorted(set(names) - set(BENCHES))
    if unknown:
        raise ValueError(
            f"unknown benchmark(s) {unknown}; choose from {sorted(BENCHES)}"
        )
    sizes = SCALES[scale]
    results: list[BenchResult] = []
    for name in names:
        func = BENCHES[name][0]
        results.append(func(**sizes.get(name, {})))
        if name == "dfp_scoring" and float32:
            results.append(bench_dfp_scoring(**sizes.get(name, {}), dtype="float32"))
    return {r.name: r for r in results}
