"""Micro-benchmark subsystem for the simulate→decide→replay hot path.

``repro.perf`` turns "the hot path got faster/slower" into a recorded,
machine-readable fact:

* :mod:`repro.perf.hotpath` — the benchmark suite itself: a large-trace
  FCFS replay, an MRSch training episode, pool-accounting / DFP scoring
  micro-benchmarks, and the Theta-geometry incremental-decision
  benchmark, each returning a :class:`BenchResult`; the registry in
  :data:`repro.perf.hotpath.BENCHES` drives ``repro bench --list`` and
  ``--only``;
* :mod:`repro.perf.trajectory` — the ``BENCH_hotpath.json`` trajectory
  file: one entry per measured commit, with timings normalised by an
  on-machine calibration loop so entries from different machines remain
  comparable, plus the CI regression guard that fails when the current
  run is >1.5× slower (normalised) than the last committed entry.

Run it via ``repro bench`` or ``python benchmarks/bench_hotpath.py``;
see the README "Performance" section.
"""

from repro.perf.hotpath import (
    BENCHES,
    BenchResult,
    bench_batched_episodes,
    bench_dfp_scoring,
    bench_fcfs_replay,
    bench_mrsch_episode,
    bench_mrsch_theta_decision,
    bench_pool_accounting,
    calibrate,
    list_benches,
    run_suite,
)
from repro.perf.trajectory import (
    TRAJECTORY_PATH,
    append_entry,
    check_regression,
    load_trajectory,
    make_entry,
)

__all__ = [
    "BENCHES",
    "BenchResult",
    "bench_batched_episodes",
    "bench_dfp_scoring",
    "bench_fcfs_replay",
    "bench_mrsch_episode",
    "bench_mrsch_theta_decision",
    "bench_pool_accounting",
    "calibrate",
    "list_benches",
    "run_suite",
    "TRAJECTORY_PATH",
    "append_entry",
    "check_regression",
    "load_trajectory",
    "make_entry",
]
