"""Scheduler factory keyed by the paper's method names."""

from __future__ import annotations

from repro.cluster.resources import SystemConfig
from repro.sched.base import Scheduler
from repro.sched.fcfs import FCFSScheduler
from repro.sched.ga import GAScheduler
from repro.sched.scalar_rl import ScalarRLScheduler

__all__ = ["make_scheduler", "available_schedulers"]

_METHODS = ("heuristic", "optimization", "scalar_rl", "mrsch")


def available_schedulers() -> tuple[str, ...]:
    """Names accepted by :func:`make_scheduler` (paper §IV-D methods)."""
    return _METHODS


def make_scheduler(
    name: str,
    system: SystemConfig,
    window_size: int = 10,
    seed: int | None = None,
    **kwargs,
) -> Scheduler:
    """Instantiate a comparison method by its paper name.

    ``heuristic`` → FCFS list scheduling, ``optimization`` → NSGA-II,
    ``scalar_rl`` → fixed-weight REINFORCE, ``mrsch`` → the DFP agent.
    Extra keyword arguments are forwarded to the scheduler constructor.
    """
    key = name.lower()
    if key == "heuristic":
        return FCFSScheduler(window_size=window_size, **kwargs)
    if key == "optimization":
        return GAScheduler(window_size=window_size, seed=seed, **kwargs)
    if key == "scalar_rl":
        return ScalarRLScheduler(system, window_size=window_size, seed=seed, **kwargs)
    if key == "mrsch":
        # Imported lazily: repro.core depends on repro.sched.base.
        from repro.core.mrsch import MRSchScheduler

        return MRSchScheduler(system, window_size=window_size, seed=seed, **kwargs)
    raise KeyError(f"unknown scheduler {name!r}; choose from {_METHODS}")
