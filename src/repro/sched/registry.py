"""Scheduler factory keyed by the paper's method names.

.. deprecated::
    This module is a thin compatibility shim over the pluggable
    registry in :mod:`repro.api.registry`. New code should use
    ``repro.api`` (``SCHEDULERS``, ``register_scheduler``,
    ``run_scenario``); the functions here keep their original
    signatures and delegate.
"""

from __future__ import annotations

import warnings

from repro.cluster.resources import SystemConfig
from repro.sched.base import Scheduler

__all__ = ["make_scheduler", "available_schedulers"]


def available_schedulers() -> tuple[str, ...]:
    """Names accepted by :func:`make_scheduler` (registry order).

    Deprecated shim — equivalent to :func:`repro.api.list_schedulers`.
    """
    warnings.warn(
        "repro.sched.registry.available_schedulers is deprecated; use "
        "repro.api.list_schedulers",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.registry import SCHEDULERS

    return SCHEDULERS.names()


def make_scheduler(
    name: str,
    system: SystemConfig,
    window_size: int = 10,
    seed: int | None = None,
    **kwargs,
) -> Scheduler:
    """Instantiate a registered scheduler by name (case-insensitive).

    ``heuristic`` → FCFS list scheduling, ``optimization`` → NSGA-II,
    ``scalar_rl`` → fixed-weight REINFORCE, ``mrsch`` → the DFP agent —
    plus anything registered via
    :func:`repro.api.registry.register_scheduler`. Extra keyword
    arguments are forwarded to the scheduler constructor.

    Deprecated shim — equivalent to
    ``repro.api.SCHEDULERS.get(name).build(...)``.
    """
    warnings.warn(
        "repro.sched.registry.make_scheduler is deprecated; use "
        "repro.api.SCHEDULERS.get(name).build(...) or the scenario API",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.registry import SCHEDULERS

    return SCHEDULERS.get(name).build(
        system, window_size=window_size, seed=seed, **kwargs
    )
