"""The *Optimization* baseline: multi-objective GA over the window.

The paper's optimization comparator (§IV-D) formulates multi-resource
scheduling as a multi-objective optimization solved with a genetic
algorithm (Fan et al., HPDC'19), applied over the same selection window
as MRSch for fairness. We implement an NSGA-II style optimizer:

* **genome** — a permutation of the window jobs (the start order),
* **objectives** — per-resource utilization over the estimated
  placement horizon, each maximized; evaluation list-schedules the
  permutation against the pool's *estimated* unit free times,
* **machinery** — fast non-dominated sorting, crowding distance,
  binary tournament selection, order crossover (OX1) and swap mutation.

The returned ordering is the knee of the first Pareto front (the
individual with the best sum of normalized objectives), making the
decision single-valued as the scheduler interface requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.resources import ResourcePool
from repro.sched.base import SchedulingContext, WindowPolicyScheduler
from repro.utils.rng import as_generator
from repro.workload.job import Job

__all__ = ["NSGA2Config", "GAScheduler"]


@dataclass(frozen=True)
class NSGA2Config:
    """GA hyper-parameters; defaults sized for windows of ~10 jobs."""

    population: int = 24
    generations: int = 15
    p_crossover: float = 0.9
    p_mutation: float = 0.2

    def __post_init__(self) -> None:
        if self.population < 2 or self.generations < 1:
            raise ValueError("population >= 2 and generations >= 1 required")
        if not (0 <= self.p_crossover <= 1 and 0 <= self.p_mutation <= 1):
            raise ValueError("probabilities must be in [0, 1]")


class GAScheduler(WindowPolicyScheduler):
    """NSGA-II multi-objective window ordering."""

    name = "optimization"

    def __init__(
        self,
        window_size: int = 10,
        backfill: bool = True,
        config: NSGA2Config | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(window_size=window_size, backfill=backfill)
        self.config = config or NSGA2Config()
        self.rng = as_generator(seed)
        # Snapshot the stream so reset() restores run-to-run determinism:
        # replaying the same trace twice yields identical schedules.
        self._rng_state = self.rng.bit_generator.state

    def reset(self) -> None:
        super().reset()
        self.rng.bit_generator.state = self._rng_state

    # -- ordering ------------------------------------------------------------

    def rank(self, window: list[Job], ctx: SchedulingContext) -> list[Job]:
        if len(window) <= 1:
            return list(window)
        best = self._optimize(window, ctx)
        return [window[i] for i in best]

    def _optimize(self, window: list[Job], ctx: SchedulingContext) -> np.ndarray:
        cfg = self.config
        n = len(window)
        pop = [self.rng.permutation(n) for _ in range(cfg.population)]
        # Seed FCFS order so the GA can never do worse than the heuristic
        # on its own objective.
        pop[0] = np.arange(n)
        objs = np.array([self._evaluate(p, window, ctx) for p in pop])
        for _ in range(cfg.generations):
            offspring = self._make_offspring(pop)
            off_objs = np.array([self._evaluate(p, window, ctx) for p in offspring])
            pop, objs = self._environmental_selection(
                pop + offspring, np.vstack([objs, off_objs]), cfg.population
            )
        return self._knee(pop, objs)

    # -- objective evaluation ---------------------------------------------

    def _evaluate(
        self, perm: np.ndarray, window: list[Job], ctx: SchedulingContext
    ) -> np.ndarray:
        """Estimated per-resource utilization of one start order (negated).

        List-schedules the permutation against per-unit estimated free
        times (walltime-based, never actual runtimes): each job starts at
        the latest k-th order statistic across its resources; utilization
        is used unit-time over capacity × horizon.
        """
        names = ctx.system.names
        free = {n: _estimated_free_times(ctx.pool, n, ctx.now) for n in names}
        used = {
            n: np.maximum(free[n] - ctx.now, 0.0).sum() for n in names
        }  # running jobs' remaining estimated occupancy
        horizon = ctx.now
        for idx in perm:
            job = window[idx]
            start = ctx.now
            for name in names:
                amount = job.request(name)
                if amount <= 0:
                    continue
                start = max(start, float(np.partition(free[name], amount - 1)[amount - 1]))
            end = start + job.walltime
            horizon = max(horizon, end)
            for name in names:
                amount = job.request(name)
                if amount <= 0:
                    continue
                sel = np.argpartition(free[name], amount - 1)[:amount]
                free[name][sel] = end
                used[name] += amount * job.walltime
        span = max(horizon - ctx.now, 1e-9)
        caps = np.array([ctx.system.capacity(n) for n in names], dtype=float)
        util = np.array([used[n] for n in names]) / (caps * span)
        return -util  # NSGA-II minimizes

    # -- NSGA-II machinery -----------------------------------------------

    def _make_offspring(self, pop: list[np.ndarray]) -> list[np.ndarray]:
        cfg = self.config
        offspring = []
        for _ in range(len(pop)):
            a, b = self._tournament(pop), self._tournament(pop)
            child = (
                _order_crossover(a, b, self.rng)
                if self.rng.random() < cfg.p_crossover
                else a.copy()
            )
            if self.rng.random() < cfg.p_mutation:
                _swap_mutation(child, self.rng)
            offspring.append(child)
        return offspring

    def _tournament(self, pop: list[np.ndarray]) -> np.ndarray:
        i, j = self.rng.integers(0, len(pop), size=2)
        # Rank information is folded into the population ordering after
        # environmental selection; lower index = better.
        return pop[min(i, j)]

    @staticmethod
    def _environmental_selection(
        pop: list[np.ndarray], objs: np.ndarray, k: int
    ) -> tuple[list[np.ndarray], np.ndarray]:
        fronts = _non_dominated_sort(objs)
        chosen: list[int] = []
        for front in fronts:
            if len(chosen) + len(front) <= k:
                # Keep whole front, best-crowded first.
                dist = _crowding_distance(objs[front])
                order = np.argsort(-dist)
                chosen.extend(front[i] for i in order)
            else:
                dist = _crowding_distance(objs[front])
                order = np.argsort(-dist)
                chosen.extend(front[i] for i in order[: k - len(chosen)])
                break
        return [pop[i] for i in chosen], objs[chosen]

    @staticmethod
    def _knee(pop: list[np.ndarray], objs: np.ndarray) -> np.ndarray:
        fronts = _non_dominated_sort(objs)
        front = fronts[0]
        front_objs = objs[front]
        lo = front_objs.min(axis=0)
        hi = front_objs.max(axis=0)
        scale = np.where(hi > lo, hi - lo, 1.0)
        score = ((front_objs - lo) / scale).sum(axis=1)
        return pop[front[int(np.argmin(score))]]


# -- permutation operators & Pareto helpers (module-level, reusable) -------


def _estimated_free_times(pool: ResourcePool, name: str, now: float) -> np.ndarray:
    avail, ttf = pool.unit_state(name, now)
    return np.where(avail > 0, now, now + ttf)


def _order_crossover(a: np.ndarray, b: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """OX1 order crossover preserving permutation validity."""
    n = a.size
    if n < 2:
        return a.copy()
    i, j = sorted(rng.integers(0, n, size=2))
    j += 1
    child = -np.ones(n, dtype=a.dtype)
    child[i:j] = a[i:j]
    fill = [g for g in b if g not in set(a[i:j].tolist())]
    positions = [p for p in range(n) if not (i <= p < j)]
    for pos, gene in zip(positions, fill):
        child[pos] = gene
    return child


def _swap_mutation(perm: np.ndarray, rng: np.random.Generator) -> None:
    if perm.size < 2:
        return
    i, j = rng.integers(0, perm.size, size=2)
    perm[i], perm[j] = perm[j], perm[i]


def _non_dominated_sort(objs: np.ndarray) -> list[np.ndarray]:
    """Fast non-dominated sorting (minimization); returns index fronts."""
    n = objs.shape[0]
    # Pairwise domination: i dominates j if <= on all and < on one.
    le = (objs[:, None, :] <= objs[None, :, :]).all(axis=2)
    lt = (objs[:, None, :] < objs[None, :, :]).any(axis=2)
    dominates = le & lt
    dominated_count = dominates.sum(axis=0)
    fronts: list[np.ndarray] = []
    remaining = np.ones(n, dtype=bool)
    counts = dominated_count.copy()
    while remaining.any():
        current = np.flatnonzero(remaining & (counts == 0))
        if current.size == 0:
            # Numerical ties: emit everything left as one front.
            current = np.flatnonzero(remaining)
        fronts.append(current)
        remaining[current] = False
        counts = counts - dominates[current].sum(axis=0)
    return fronts


def _crowding_distance(objs: np.ndarray) -> np.ndarray:
    n, m = objs.shape
    if n <= 2:
        return np.full(n, np.inf)
    dist = np.zeros(n)
    for k in range(m):
        order = np.argsort(objs[:, k])
        lo, hi = objs[order[0], k], objs[order[-1], k]
        dist[order[0]] = dist[order[-1]] = np.inf
        if hi > lo:
            gaps = (objs[order[2:], k] - objs[order[:-2], k]) / (hi - lo)
            dist[order[1:-1]] += gaps
    return dist
