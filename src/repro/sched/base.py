"""Scheduler interface and the shared §III-C starvation-avoidance loop.

Every policy — the FCFS heuristic, the GA optimizer, scalar RL, and
MRSch — runs inside the same scheduling-instance machinery:

1. a **window** exposes the ``window_size`` oldest waiting jobs (older
   jobs get priority, alleviating starvation),
2. the policy repeatedly **selects** one window job; fitting selections
   start immediately (the window re-fills and the system state the
   policy observes is updated between selections),
3. the first selected job that does *not* fit becomes the
   **reservation** — its resources are held via a shadow time so it
   starts at the earliest estimated opportunity,
4. **EASY backfilling** then moves later queued jobs ahead iff they do
   not delay the reservation (Mu'alem & Feitelson).

Policies implement :meth:`Scheduler.select`; everything else is shared.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.cluster.resources import ResourcePool, SystemConfig
from repro.workload.job import Job

__all__ = ["SchedulingContext", "Scheduler", "WindowPolicyScheduler"]


@dataclass
class SchedulingContext:
    """Everything a policy may observe and the one action it may take.

    ``start`` is provided by the simulator: it allocates resources,
    stamps the job's start time and schedules its end event. Policies
    must start jobs only through the machinery in :class:`Scheduler`.
    """

    now: float
    queue: list[Job]
    pool: ResourcePool
    system: SystemConfig
    start: Callable[[Job], None]
    #: jobs currently executing (needed by Eq. 1's contention terms)
    running: list[Job] = field(default_factory=list)
    #: jobs started during this instance (filled by the scheduler loop)
    started: list[Job] = field(default_factory=list)


class Scheduler(ABC):
    """Base scheduler implementing the §III-C instance loop."""

    name = "base"

    def __init__(self, window_size: int = 10, backfill: bool = True) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.window_size = window_size
        self.backfill_enabled = backfill
        #: job currently holding a reservation (head-of-queue protection)
        self.reserved_job: Job | None = None
        #: optional :class:`repro.eval.recorder.DecisionTraceRecorder`;
        #: when attached, every selection (fitting starts and the
        #: reservation pick alike) is reported for offline evaluation.
        #: Recording is passive — no RNG, no behaviour change.
        self.decision_recorder = None

    # -- policy hooks -----------------------------------------------------

    @abstractmethod
    def select(self, window: list[Job], ctx: SchedulingContext) -> Job | None:
        """Pick the next job from ``window`` (None = stop selecting)."""

    def begin_instance(self, ctx: SchedulingContext) -> None:
        """Called once per scheduling instance before any selection."""

    def end_instance(self, ctx: SchedulingContext) -> None:
        """Called once per scheduling instance after backfilling."""

    def decision_features(self, window: list[Job], ctx: SchedulingContext) -> dict | None:
        """Decision inputs of the *last* :meth:`select` call, if exposed.

        Policies that already compute DFP-style inputs (state encoding,
        measurement, goal, prior, scores) return them here so the trace
        recorder stores the policy's own values bit-for-bit; the default
        ``None`` lets the recorder derive canonical features itself.
        """
        return None

    def reset(self) -> None:
        """Clear episode state; called by the simulator before a run."""
        self.reserved_job = None

    # -- the shared instance loop ------------------------------------------

    def schedule(self, ctx: SchedulingContext) -> None:
        """Run one scheduling instance (§III-C)."""
        self.begin_instance(ctx)
        self._clear_stale_reservation(ctx)
        self._selection_loop(ctx)
        if self.backfill_enabled and self.reserved_job is not None:
            self._easy_backfill(ctx)
        self.end_instance(ctx)

    def _clear_stale_reservation(self, ctx: SchedulingContext) -> None:
        """Start (or drop) a previous instance's reservation first.

        The reserved job keeps absolute priority: if its resources are
        now available it starts before anything else is considered.
        """
        job = self.reserved_job
        if job is None:
            return
        if job not in ctx.queue:
            self.reserved_job = None
            return
        if ctx.pool.can_fit(job):
            self._start(job, ctx)
            self.reserved_job = None

    def _selection_loop(self, ctx: SchedulingContext) -> None:
        if self.reserved_job is not None:
            # An unsatisfied reservation blocks new head-of-queue
            # selections; only backfilling may proceed.
            return
        while True:
            window = [j for j in ctx.queue if not j.started][: self.window_size]
            if not window:
                return
            job = self.select(window, ctx)
            if job is None:
                return
            if job not in window:
                raise RuntimeError(
                    f"{self.name}: selected job {job.job_id} outside the window"
                )
            if self.decision_recorder is not None:
                # Before the start/reserve below, while the pool still
                # reflects the state the policy decided on.
                self.decision_recorder.on_decision(self, window, job, ctx)
            if ctx.pool.can_fit(job):
                self._start(job, ctx)
            else:
                self.reserved_job = job
                return

    def _start(self, job: Job, ctx: SchedulingContext) -> None:
        ctx.start(job)
        ctx.started.append(job)
        ctx.queue.remove(job)

    # -- EASY backfilling ------------------------------------------------------

    def _easy_backfill(self, ctx: SchedulingContext) -> None:
        """Move later jobs ahead iff they cannot delay the reservation.

        Multi-resource EASY: the *shadow time* is the estimated earliest
        instant the reserved job fits (per-resource k-th order statistic
        of estimated unit free times); the per-resource *spare* units are
        what remains free at the shadow time after the reservation is
        placed. A candidate may backfill if it fits now and either (a)
        its walltime ends before the shadow time, or (b) it consumes only
        spare units.
        """
        reserved = self.reserved_job
        assert reserved is not None
        shadow = ctx.pool.earliest_fit_time(reserved, ctx.now)
        spare = {
            name: ctx.pool.free_units_at(name, shadow, ctx.now) - reserved.request(name)
            for name in ctx.system.names
        }
        for job in list(ctx.queue):
            if job is reserved or job.started:
                continue
            if not ctx.pool.can_fit(job):
                continue
            ends_before_shadow = ctx.now + job.walltime <= shadow
            fits_spare = all(
                job.request(name) <= spare[name] for name in ctx.system.names
            )
            if ends_before_shadow or fits_spare:
                self._start(job, ctx)
                if not ends_before_shadow:
                    for name in ctx.system.names:
                        spare[name] -= job.request(name)


class WindowPolicyScheduler(Scheduler):
    """Scheduler whose policy is a per-instance *ordering* of the window.

    FCFS and the GA optimizer decide a full ordering once per instance;
    this adapter caches the ordering and serves it one job at a time
    through :meth:`select`, re-validating against the live window.
    """

    def __init__(self, window_size: int = 10, backfill: bool = True) -> None:
        super().__init__(window_size=window_size, backfill=backfill)
        self._ordering: list[Job] = []

    @abstractmethod
    def rank(self, window: list[Job], ctx: SchedulingContext) -> list[Job]:
        """Return the window jobs in the order they should be started."""

    def begin_instance(self, ctx: SchedulingContext) -> None:
        window = [j for j in ctx.queue if not j.started][: self.window_size]
        self._ordering = self.rank(window, ctx) if window else []

    def select(self, window: list[Job], ctx: SchedulingContext) -> Job | None:
        while self._ordering:
            job = self._ordering.pop(0)
            if job in window:
                return job
        # Ordering exhausted: fall back to queue order for jobs that
        # rotated into the window after earlier starts.
        return window[0] if window else None
