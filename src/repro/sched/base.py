"""Scheduler interface and the shared §III-C starvation-avoidance loop.

Every policy — the FCFS heuristic, the GA optimizer, scalar RL, and
MRSch — runs inside the same scheduling-instance machinery:

1. a **window** exposes the ``window_size`` oldest waiting jobs (older
   jobs get priority, alleviating starvation),
2. the policy repeatedly **selects** one window job; fitting selections
   start immediately (the window re-fills and the system state the
   policy observes is updated between selections),
3. the first selected job that does *not* fit becomes the
   **reservation** — its resources are held via a shadow time so it
   starts at the earliest estimated opportunity,
4. **EASY backfilling** then moves later queued jobs ahead iff they do
   not delay the reservation (Mu'alem & Feitelson).

Policies implement :meth:`Scheduler.select`; everything else is shared.

The machinery accepts the queue in two forms. A plain ``list`` drives
the straightforward reference implementation (what the unit tests pin
the semantics with); a :class:`~repro.sched.jobqueue.JobQueue` — what
the simulator supplies — additionally enables the incremental hot path:
O(window) window extraction instead of per-selection queue re-filters,
O(1) dequeues instead of ``list.remove`` shifts, and a vectorized EASY
pass over the queue's columnar request arrays instead of per-candidate
``can_fit`` calls. The two queue forms make identical decisions —
the golden FCFS-metrics test holds the fast path to the reference bit
for bit, and since the Eq.-1 contention terms moved both queue forms
onto one columnar summation order (:mod:`repro.core.goal`), MRSch's
dynamic goal vector is bit-identical between them too.

Policies that maintain *incremental per-decision state* (MRSch's
persistent state buffer, fed by pool dirty trackers) rely on one
invariant of this loop: every pool mutation between two ``select``
calls — the ``ctx.start`` allocation behind a fitting selection, the
simulator's releases and resets between instances — goes through
``ResourcePool.allocate``/``release``/``reset``, so registered
trackers observe the exact unit regions that changed. Nothing in the
selection/backfill machinery touches pool unit state directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.obs import runtime as _obs_runtime

from repro.cluster.resources import ResourcePool, SystemConfig
from repro.sched.jobqueue import JobQueue
from repro.workload.job import Job

__all__ = [
    "SchedulingContext",
    "DecisionInputs",
    "Scheduler",
    "WindowPolicyScheduler",
]


@dataclass
class SchedulingContext:
    """Everything a policy may observe and the one action it may take.

    ``start`` is provided by the simulator: it allocates resources,
    stamps the job's start time and schedules its end event. Policies
    must start jobs only through the machinery in :class:`Scheduler`.
    """

    now: float
    queue: list[Job]
    pool: ResourcePool
    system: SystemConfig
    start: Callable[[Job], None]
    #: jobs currently executing (needed by Eq. 1's contention terms)
    running: list[Job] = field(default_factory=list)
    #: jobs started during this instance (filled by the scheduler loop)
    started: list[Job] = field(default_factory=list)

    def window(self, size: int) -> list[Job]:
        """The first ``size`` waiting (unstarted) jobs, queue order.

        O(size) on a :class:`JobQueue`; on plain lists the scan stops
        as soon as ``size`` waiting jobs are found instead of filtering
        the whole queue per selection.
        """
        queue = self.queue
        if isinstance(queue, JobQueue):
            return queue.window(size)
        out: list[Job] = []
        for job in queue:
            if not job.started:
                out.append(job)
                if len(out) == size:
                    break
        return out


@dataclass
class DecisionInputs:
    """Network inputs of one staged window decision (split protocol).

    :meth:`Scheduler.prepare_decision` fills these so a batch layer can
    stack many episodes' rows into one network call and hand each
    episode its score row back through
    :meth:`Scheduler.apply_decision`. ``needs_scores`` is ``False``
    when the policy already committed to an action without the network
    (an exploration draw): the decision still flows through the split
    protocol, but the batch layer must not spend a scoring row on it.
    """

    state: np.ndarray
    measurement: np.ndarray
    goal: np.ndarray
    needs_scores: bool = True


class Scheduler(ABC):
    """Base scheduler implementing the §III-C instance loop."""

    name = "base"

    def __init__(self, window_size: int = 10, backfill: bool = True) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.window_size = window_size
        self.backfill_enabled = backfill
        #: job currently holding a reservation (head-of-queue protection)
        self.reserved_job: Job | None = None
        #: optional :class:`repro.eval.recorder.DecisionTraceRecorder`;
        #: when attached, every selection (fitting starts and the
        #: reservation pick alike) is reported for offline evaluation.
        #: Recording is passive — no RNG, no behaviour change.
        self.decision_recorder = None

    # -- policy hooks -----------------------------------------------------

    @abstractmethod
    def select(self, window: list[Job], ctx: SchedulingContext) -> Job | None:
        """Pick the next job from ``window`` (None = stop selecting)."""

    def begin_instance(self, ctx: SchedulingContext) -> None:
        """Called once per scheduling instance before any selection."""

    def end_instance(self, ctx: SchedulingContext) -> None:
        """Called once per scheduling instance after backfilling."""

    def decision_features(self, window: list[Job], ctx: SchedulingContext) -> dict | None:
        """Decision inputs of the *last* :meth:`select` call, if exposed.

        Policies that already compute DFP-style inputs (state encoding,
        measurement, goal, prior, scores) return them here so the trace
        recorder stores the policy's own values bit-for-bit; the default
        ``None`` lets the recorder derive canonical features itself.
        """
        return None

    def reset(self) -> None:
        """Clear episode state; called by the simulator before a run."""
        self.reserved_job = None

    # -- split decision protocol (batched lockstep scoring) ----------------

    def prepare_decision(
        self, window: list[Job], ctx: SchedulingContext
    ) -> DecisionInputs | None:
        """Stage one window decision for external scoring.

        Policies whose :meth:`select` boils down to *encode inputs → run
        the network → pick over scores* split it here: return the
        network inputs (stashing whatever per-decision context
        :meth:`apply_decision` will need), and a batch layer scores many
        episodes' staged decisions in one call. The default ``None``
        declares the policy unsplittable; the loop falls back to
        :meth:`select`.
        """
        return None

    def apply_decision(
        self, window: list[Job], ctx: SchedulingContext, scores: np.ndarray | None
    ) -> Job | None:
        """Finish the decision staged by :meth:`prepare_decision`.

        ``scores`` is the policy's own scoring output for the staged
        inputs (``None`` when the staged decision said it needed no
        scores). Must behave exactly like the tail of :meth:`select`.
        """
        raise NotImplementedError(f"{self.name} does not implement the split protocol")

    def batch_scorer(self):
        """``(key, fn)`` for stacked scoring, or ``None``.

        ``fn(states, measurements, goals)`` must return per-row score
        arrays for stacked :class:`DecisionInputs` rows; ``key`` is an
        identity token (e.g. the shared agent) so a batch layer only
        stacks decisions that the same scorer can serve in one call.
        """
        return None

    def lockstep_clone(self) -> "Scheduler | None":
        """An independent scheduler for one more lockstep episode.

        Clones share read-only policy machinery (e.g. one DFP agent's
        weights and workspaces) but nothing episode-mutable, so N clones
        can run N episodes concurrently within one process. ``None``
        declares the policy unsafe to batch (e.g. it consumes per-decision
        RNG whose stream order the lockstep interleaving would change).
        """
        return None

    # -- the shared instance loop ------------------------------------------

    def schedule(self, ctx: SchedulingContext) -> None:
        """Run one scheduling instance (§III-C)."""
        self.begin_instance(ctx)
        self._clear_stale_reservation(ctx)
        self._selection_loop(ctx)
        if self.backfill_enabled and self.reserved_job is not None:
            self._easy_backfill(ctx)
        self.end_instance(ctx)

    def _clear_stale_reservation(self, ctx: SchedulingContext) -> None:
        """Start (or drop) a previous instance's reservation first.

        The reserved job keeps absolute priority: if its resources are
        now available it starts before anything else is considered.
        """
        job = self.reserved_job
        if job is None:
            return
        if job not in ctx.queue:
            self.reserved_job = None
            return
        if ctx.pool.can_fit(job):
            self._start(job, ctx)
            self.reserved_job = None

    def _selection_loop(self, ctx: SchedulingContext) -> None:
        if self.reserved_job is not None:
            # An unsatisfied reservation blocks new head-of-queue
            # selections; only backfilling may proceed.
            return
        # Telemetry-off runs pay one module-attribute read per instance
        # and one None check per selection; the probe itself only times
        # every N-th selection. Purely passive — no RNG, no state.
        probe = _obs_runtime.decision_probe
        while True:
            window = ctx.window(self.window_size)
            if not window:
                return
            if probe is not None and probe.tick():
                t0 = perf_counter()
                job = self.select(window, ctx)
                probe.observe(self.name, perf_counter() - t0)
            else:
                job = self.select(window, ctx)
            if not self._handle_selection(job, window, ctx):
                return

    def _handle_selection(
        self, job: Job | None, window: list[Job], ctx: SchedulingContext
    ) -> bool:
        """Common tail of one selection; ``True`` keeps selecting."""
        if job is None:
            return False
        if job not in window:
            raise RuntimeError(
                f"{self.name}: selected job {job.job_id} outside the window"
            )
        if self.decision_recorder is not None:
            # Before the start/reserve below, while the pool still
            # reflects the state the policy decided on.
            self.decision_recorder.on_decision(self, window, job, ctx)
        if ctx.pool.can_fit(job):
            self._start(job, ctx)
            return True
        self.reserved_job = job
        return False

    # -- generator form of the instance loop --------------------------------

    def schedule_gen(self, ctx: SchedulingContext):
        """:meth:`schedule` as a generator that pauses at network calls.

        Yields a :class:`DecisionInputs` at every point where the policy
        staged a decision via :meth:`prepare_decision`; the driver
        resumes the generator with ``send(scores)`` (or ``send(None)``
        when the staged decision needs no scores). Policies without the
        split protocol never yield — the generator runs the whole
        instance on first advance. Decision order, recorder hooks and
        reservation handling are identical to :meth:`schedule`.
        """
        self.begin_instance(ctx)
        self._clear_stale_reservation(ctx)
        yield from self._selection_loop_gen(ctx)
        if self.backfill_enabled and self.reserved_job is not None:
            self._easy_backfill(ctx)
        self.end_instance(ctx)

    def _selection_loop_gen(self, ctx: SchedulingContext):
        if self.reserved_job is not None:
            return
        probe = _obs_runtime.decision_probe
        while True:
            window = ctx.window(self.window_size)
            if not window:
                return
            inputs = self.prepare_decision(window, ctx)
            if inputs is None:
                # Only the unsplit path is timed: a split decision spans
                # a yield, and timing it would charge the batch layer's
                # cross-episode wait to this scheduler.
                if probe is not None and probe.tick():
                    t0 = perf_counter()
                    job = self.select(window, ctx)
                    probe.observe(self.name, perf_counter() - t0)
                else:
                    job = self.select(window, ctx)
            else:
                scores = (yield inputs) if inputs.needs_scores else None
                job = self.apply_decision(window, ctx, scores)
            if not self._handle_selection(job, window, ctx):
                return

    def _start(self, job: Job, ctx: SchedulingContext) -> None:
        ctx.start(job)
        ctx.started.append(job)
        ctx.queue.remove(job)

    # -- EASY backfilling ------------------------------------------------------

    def _easy_backfill(self, ctx: SchedulingContext) -> None:
        """Move later jobs ahead iff they cannot delay the reservation.

        Multi-resource EASY: the *shadow time* is the estimated earliest
        instant the reserved job fits (per-resource k-th order statistic
        of estimated unit free times); the per-resource *spare* units are
        what remains free at the shadow time after the reservation is
        placed. A candidate may backfill if it fits now and either (a)
        its walltime ends before the shadow time, or (b) it consumes only
        spare units.
        """
        reserved = self.reserved_job
        assert reserved is not None
        shadow = ctx.pool.earliest_fit_time(reserved, ctx.now)
        queue = ctx.queue
        if isinstance(queue, JobQueue) and list(queue.names) == ctx.system.names:
            self._easy_backfill_vectorized(ctx, reserved, shadow)
            return
        spare = {
            name: ctx.pool.free_units_at(name, shadow, ctx.now) - reserved.request(name)
            for name in ctx.system.names
        }
        for job in list(ctx.queue):
            if job is reserved or job.started:
                continue
            if not ctx.pool.can_fit(job):
                continue
            ends_before_shadow = ctx.now + job.walltime <= shadow
            fits_spare = all(
                job.request(name) <= spare[name] for name in ctx.system.names
            )
            if ends_before_shadow or fits_spare:
                self._start(job, ctx)
                if not ends_before_shadow:
                    for name in ctx.system.names:
                        spare[name] -= job.request(name)

    def _easy_backfill_vectorized(
        self, ctx: SchedulingContext, reserved: Job, shadow: float
    ) -> None:
        """One EASY pass over the queue's columnar candidate arrays.

        Decision-identical to the reference loop above but evaluated as
        ONE whole-queue NumPy scan. Correctness: free and spare units
        only *shrink* during a pass (starts allocate, nothing releases),
        so a candidate inadmissible under the pass's *initial* state can
        never become admissible later in the same pass — the initial
        scan's rejections are final, and only its survivors need an O(R)
        re-verification against the live counters as earlier survivors
        start and consume units.
        """
        queue: JobQueue = ctx.queue  # type: ignore[assignment]
        pool = ctx.pool
        now = ctx.now
        names = ctx.system.names
        reqs, wall, alive, base = queue.candidate_arrays()
        if reqs.shape[0] == 0:
            return
        spare = np.array(
            [
                pool.free_units_at(name, shadow, now) - reserved.request(name)
                for name in names
            ],
            dtype=float,
        )
        ends_ok = now + wall <= shadow  # static: the clock is fixed mid-pass
        free = pool.free_vector()  # live view — allocate updates in place
        ok = alive & (reqs <= free).all(axis=1)
        ok &= ends_ok | (reqs <= spare).all(axis=1)
        ok[queue.slot_of(reserved) - base] = False
        cand = np.flatnonzero(ok)  # queue-ordered survivors
        while cand.size:
            rel = int(cand[0])
            # The head survivor is admissible under the *current*
            # counters: the initial scan vouched for the first one, the
            # re-filter below for every later head.
            self._start(queue.job_at_slot(base + rel), ctx)
            if not ends_ok[rel]:
                spare -= reqs[rel]
            rest = cand[1:]
            if rest.size == 0:
                return
            sub = reqs[rest]
            keep = (sub <= free).all(axis=1)
            keep &= ends_ok[rest] | (sub <= spare).all(axis=1)
            cand = rest[keep]


class WindowPolicyScheduler(Scheduler):
    """Scheduler whose policy is a per-instance *ordering* of the window.

    FCFS and the GA optimizer decide a full ordering once per instance;
    this adapter caches the ordering and serves it one job at a time
    through :meth:`select` (an index cursor — consumed entries are never
    popped), re-validating against the live window.
    """

    def __init__(self, window_size: int = 10, backfill: bool = True) -> None:
        super().__init__(window_size=window_size, backfill=backfill)
        self._ordering: list[Job] = []
        self._cursor = 0

    @abstractmethod
    def rank(self, window: list[Job], ctx: SchedulingContext) -> list[Job]:
        """Return the window jobs in the order they should be started."""

    def begin_instance(self, ctx: SchedulingContext) -> None:
        window = ctx.window(self.window_size)
        self._ordering = self.rank(window, ctx) if window else []
        self._cursor = 0

    def select(self, window: list[Job], ctx: SchedulingContext) -> Job | None:
        ordering = self._ordering
        while self._cursor < len(ordering):
            job = ordering[self._cursor]
            self._cursor += 1
            if job in window:
                return job
        # Ordering exhausted: fall back to queue order for jobs that
        # rotated into the window after earlier starts.
        return window[0] if window else None
