"""Scheduling policies and the shared window/reservation/backfill machinery.

The paper compares four methods (§IV-D), all sharing the HPC-specific
starvation-avoidance machinery of §III-C (selection window, reservation
of the first non-fitting selection, EASY backfilling):

* ``fcfs``      — the *Heuristic* baseline: FCFS extended to multiple
  resources (list scheduling).
* ``ga``        — the *Optimization* baseline: multi-objective genetic
  algorithm (NSGA-II) over the window ordering.
* ``scalar_rl`` — the *Scalar RL* baseline: policy-gradient RL with a
  fixed-weight scalar reward (0.5·CPU util + 0.5·BB util).
* MRSch itself lives in :mod:`repro.core.mrsch` and plugs into the same
  :class:`~repro.sched.base.Scheduler` interface.
"""

from repro.sched.base import SchedulingContext, Scheduler, WindowPolicyScheduler
from repro.sched.fcfs import FCFSScheduler
from repro.sched.ga import GAScheduler, NSGA2Config
from repro.sched.registry import available_schedulers, make_scheduler
from repro.sched.scalar_rl import ScalarRLScheduler

__all__ = [
    "SchedulingContext",
    "Scheduler",
    "WindowPolicyScheduler",
    "FCFSScheduler",
    "GAScheduler",
    "NSGA2Config",
    "ScalarRLScheduler",
    "make_scheduler",
    "available_schedulers",
]
