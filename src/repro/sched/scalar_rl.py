"""The *Scalar RL* baseline: policy gradient with a fixed-weight reward.

The paper's third comparator (§IV-D) represents the straightforward
extension of single-resource RL schedulers (DeepRM, RLScheduler) to
multiple resources: a policy-gradient agent whose scalar reward fixes
the priority of every resource up front —
``0.5 · CPU util + 0.5 · BB util`` for two resources (equal weights in
general). The motivating example of Fig. 1 shows exactly why this static
weighting underperforms MRSch's dynamic goal vector.

Implementation: REINFORCE (Monte-Carlo policy gradient) over a masked
softmax policy. The observation is a compact window encoding — per slot
the (R+2) job vector of §III-A, plus the per-resource free fraction —
and the action picks a window slot.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dense, LeakyReLU
from repro.nn.network import Sequential
from repro.nn.optim import Adam
from repro.sched.base import SchedulingContext, Scheduler
from repro.utils.rng import as_generator, spawn_generators
from repro.workload.job import Job

__all__ = ["ScalarRLScheduler"]

_NEG_INF = -1e30


class ScalarRLScheduler(Scheduler):
    """REINFORCE scheduler with a fixed scalar multi-resource reward."""

    name = "scalar_rl"

    def __init__(
        self,
        system,
        window_size: int = 10,
        backfill: bool = True,
        hidden: tuple[int, int] = (64, 64),
        lr: float = 1e-3,
        gamma: float = 0.99,
        reward_weights: dict[str, float] | None = None,
        walltime_scale: float = 3600.0 * 4,
        wait_scale: float = 3600.0 * 4,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(window_size=window_size, backfill=backfill)
        self.system = system
        self.gamma = gamma
        self.walltime_scale = walltime_scale
        self.wait_scale = wait_scale
        self.rng = as_generator(seed)
        names = system.names
        if reward_weights is None:
            # Paper: 0.5/0.5 for two resources; equal weights generally.
            reward_weights = {n: 1.0 / len(names) for n in names}
        if abs(sum(reward_weights.values()) - 1.0) > 1e-6:
            raise ValueError("reward weights must sum to 1")
        self.reward_weights = reward_weights

        self.n_resources = len(names)
        self.obs_dim = window_size * (self.n_resources + 2) + self.n_resources
        rngs = spawn_generators(self.rng, 3)
        self.policy = Sequential(
            [
                Dense(self.obs_dim, hidden[0], rng=rngs[0]),
                LeakyReLU(),
                Dense(hidden[0], hidden[1], rng=rngs[1]),
                LeakyReLU(),
                Dense(hidden[1], window_size, rng=rngs[2]),
            ]
        )
        self.optimizer = Adam(self.policy.layers, lr=lr)
        self.training = False
        self._episode: list[tuple[np.ndarray, np.ndarray, int, float]] = []

    # -- observation / reward ------------------------------------------------

    def encode(self, window: list[Job], ctx: SchedulingContext) -> tuple[np.ndarray, np.ndarray]:
        """Return (observation, valid-slot mask)."""
        names = self.system.names
        caps = np.array([self.system.capacity(n) for n in names], dtype=float)
        obs = np.zeros(self.obs_dim)
        mask = np.zeros(self.window_size, dtype=bool)
        per = self.n_resources + 2
        for slot, job in enumerate(window[: self.window_size]):
            base = slot * per
            req = np.array([job.request(n) for n in names], dtype=float) / caps
            obs[base : base + self.n_resources] = req
            obs[base + self.n_resources] = min(job.walltime / self.walltime_scale, 4.0)
            obs[base + self.n_resources + 1] = min(
                (ctx.now - job.submit_time) / self.wait_scale, 4.0
            )
            mask[slot] = True
        obs[-self.n_resources :] = np.array(
            [ctx.pool.free_units(n) for n in names], dtype=float
        ) / caps
        return obs, mask

    def reward(self, ctx: SchedulingContext) -> float:
        """Fixed-weight scalar utilization reward."""
        return float(
            sum(
                self.reward_weights[n] * ctx.pool.utilization(n)
                for n in self.system.names
            )
        )

    # -- policy ------------------------------------------------------------

    def _probabilities(self, obs: np.ndarray, mask: np.ndarray) -> np.ndarray:
        logits = self.policy.forward(obs[None, :])[0]
        logits = np.where(mask, logits, _NEG_INF)
        shifted = logits - logits.max()
        exp = np.exp(shifted)
        return exp / exp.sum()

    def select(self, window: list[Job], ctx: SchedulingContext) -> Job | None:
        if not window:
            return None
        obs, mask = self.encode(window, ctx)
        probs = self._probabilities(obs, mask)
        if self.training:
            action = int(self.rng.choice(self.window_size, p=probs))
        else:
            action = int(np.argmax(probs))
        job = window[min(action, len(window) - 1)]
        if self.training:
            # Reward observed after the environment applies the action;
            # stored lazily as the utilization at the *next* decision.
            self._episode.append((obs, mask, action, self.reward(ctx)))
        return job

    # -- training ------------------------------------------------------------

    def reset(self) -> None:
        super().reset()

    def start_episode(self) -> None:
        self._episode = []

    def finish_episode(self) -> float:
        """REINFORCE update over the recorded episode; returns the loss."""
        if not self._episode:
            return 0.0
        rewards = np.array([step[3] for step in self._episode])
        returns = np.empty_like(rewards)
        acc = 0.0
        for t in range(len(rewards) - 1, -1, -1):
            acc = rewards[t] + self.gamma * acc
            returns[t] = acc
        adv = returns - returns.mean()
        std = returns.std()
        if std > 1e-8:
            adv = adv / std

        obs = np.vstack([step[0] for step in self._episode])
        masks = np.vstack([step[1] for step in self._episode])
        actions = np.array([step[2] for step in self._episode])

        logits = self.policy.forward(obs, training=True)
        logits = np.where(masks, logits, _NEG_INF)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)

        onehot = np.zeros_like(probs)
        onehot[np.arange(len(actions)), actions] = 1.0
        # d(-Σ adv·log π(a)) / dlogits = adv · (π - onehot), per sample.
        grad_logits = adv[:, None] * (probs - onehot) / len(actions)
        grad_logits = np.where(masks, grad_logits, 0.0)

        self.optimizer.zero_grad()
        self.policy.backward(grad_logits)
        self.optimizer.clip_gradients(5.0)
        self.optimizer.step()

        log_probs = np.log(np.clip(probs[np.arange(len(actions)), actions], 1e-12, 1.0))
        loss = float(-(adv * log_probs).mean())
        self._episode = []
        return loss
