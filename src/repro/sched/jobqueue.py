"""Incremental job-queue bookkeeping for the scheduler hot path.

The §III-C instance loop interrogates the waiting queue relentlessly:
every selection re-derives the window (the first ``window_size``
unstarted jobs), every start removes a job, and every EASY backfill pass
tests the *entire* queue against the pool. With a plain ``list`` those
are O(queue) scans and O(queue) ``remove`` shifts per selection — on
paper-scale traces (10⁴–10⁵ jobs, queue depths in the thousands) the
replay loop turns quadratic and the simulator, not the policy, dominates
wall-clock time.

:class:`JobQueue` keeps the queue in submission order with

* **O(1) amortized removal** — jobs are tombstoned in place via a
  ``job_id → slot`` map; storage is compacted only between scheduling
  passes (on ``append``/``compact``), so slot indices are stable while a
  selection or backfill pass iterates,
* **O(window) window extraction** — a head cursor skips the dead prefix
  permanently instead of re-filtering the whole queue per selection,
* **columnar request/walltime arrays** maintained incrementally next to
  the job list, so a backfill pass (and the Eq. 1 contention terms) can
  evaluate every queued candidate with a handful of vectorized NumPy
  comparisons instead of per-job ``can_fit`` calls.

The structure is duck-compatible with the ``list`` operations the
scheduling machinery uses (iteration, ``len``, ``in``, ``remove``,
``append``, indexing), so :class:`~repro.sched.base.Scheduler` accepts
either; plain lists keep the straightforward reference behaviour and
are what the unit tests drive directly.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.workload.job import Job

__all__ = ["JobQueue"]

#: storage slots allocated up front and added per growth step
_MIN_CAPACITY = 256


class JobQueue:
    """Submission-ordered waiting queue with incremental bookkeeping.

    Parameters
    ----------
    names:
        Resource names (config order) for the columnar request matrix.
        The per-slot row is ``[job.request(n) for n in names]``; the
        matrix and the parallel walltime vector power the vectorized
        backfill pass in :meth:`repro.sched.base.Scheduler._easy_backfill`.
    """

    def __init__(self, names: Sequence[str]) -> None:
        self._names: tuple[str, ...] = tuple(names)
        cap = _MIN_CAPACITY
        self._jobs: list[Job | None] = [None] * cap
        self._req = np.zeros((cap, len(self._names)))
        self._wall = np.zeros(cap)
        self._alive = np.zeros(cap, dtype=bool)
        self._slot: dict[int, int] = {}  # job_id -> storage slot
        self._head = 0  # first slot that may be alive
        self._tail = 0  # one past the last used slot
        self._n_dead = 0  # tombstones in [head, tail)

    # -- list-compatible surface ------------------------------------------

    def __len__(self) -> int:
        return len(self._slot)

    def __bool__(self) -> bool:
        return bool(self._slot)

    def __iter__(self) -> Iterator[Job]:
        for job in self._jobs[self._head : self._tail]:
            if job is not None:
                yield job

    def __contains__(self, job: Job) -> bool:
        return getattr(job, "job_id", None) in self._slot

    def __getitem__(self, index: int) -> Job:
        live = [job for job in self]
        return live[index]

    def append(self, job: Job) -> None:
        """Enqueue ``job``; compacts/grows storage as needed (amortized O(1))."""
        if job.job_id in self._slot:
            raise ValueError(f"job {job.job_id} is already queued")
        self.compact()
        if self._tail == len(self._jobs):
            self._grow()
        slot = self._tail
        self._jobs[slot] = job
        self._req[slot] = [job.request(n) for n in self._names]
        self._wall[slot] = job.walltime
        self._alive[slot] = True
        self._slot[job.job_id] = slot
        self._tail += 1

    def remove(self, job: Job) -> None:
        """Tombstone ``job`` in O(1); storage indices stay stable."""
        slot = self._slot.pop(job.job_id, None)
        if slot is None:
            raise ValueError(f"job {job.job_id} is not queued")
        self._jobs[slot] = None
        self._alive[slot] = False
        self._n_dead += 1

    def clear(self) -> None:
        self.__init__(self._names)

    # -- scheduler fast paths ----------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def window(self, size: int) -> list[Job]:
        """The first ``size`` waiting jobs, in submission order.

        O(size) plus any dead prefix, which the head cursor then skips
        forever — the per-selection full-queue re-filter this replaces
        was the scheduler loop's largest scaling term.
        """
        jobs = self._jobs
        head, tail = self._head, self._tail
        while head < tail and jobs[head] is None:
            head += 1
            self._n_dead -= 1
        self._head = head
        out: list[Job] = []
        for slot in range(head, tail):
            job = jobs[slot]
            if job is not None and not job.started:
                out.append(job)
                if len(out) == size:
                    break
        return out

    def candidate_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Columnar view for one vectorized pass over the queue.

        Returns ``(requests, walltimes, alive, head)`` where the arrays
        cover storage slots ``[head, tail)`` in submission order; dead
        slots are masked out by ``alive``. The arrays are *live* views:
        a :meth:`remove` during the pass flips ``alive`` in place (and
        nothing else moves), which is exactly the bookkeeping an EASY
        pass needs as it starts candidates mid-scan.
        """
        head, tail = self._head, self._tail
        return (
            self._req[head:tail],
            self._wall[head:tail],
            self._alive[head:tail],
            head,
        )

    def slot_of(self, job: Job) -> int:
        """Absolute storage slot of a queued job (KeyError when absent)."""
        return self._slot[job.job_id]

    def job_at_slot(self, slot: int) -> Job:
        """The job stored at absolute storage ``slot`` (must be alive)."""
        job = self._jobs[slot]
        if job is None:
            raise IndexError(f"slot {slot} holds a tombstone")
        return job

    def contention_totals(self, caps: np.ndarray) -> np.ndarray:
        """``Σ_i (req_ij / cap_j) · walltime_i`` over waiting jobs.

        The queued-job half of the Eq. 1 contention terms as one
        matrix-vector product over the columnar arrays.
        """
        reqs, wall, alive, _ = self.candidate_arrays()
        if not alive.any():
            return np.zeros(len(self._names))
        return (reqs[alive] / caps).T @ wall[alive]

    # -- storage management ------------------------------------------------

    def compact(self) -> None:
        """Drop tombstones when they dominate the live span.

        Called from :meth:`append` (i.e. between scheduling passes —
        submissions never interleave with a selection or backfill scan),
        so the slot indices handed out by :meth:`candidate_arrays`
        remain valid for the duration of any single pass.
        """
        waste = self._head + self._n_dead  # recycled prefix + tombstones
        if waste < _MIN_CAPACITY or waste * 2 < self._tail:
            return
        live = [
            slot
            for slot in range(self._head, self._tail)
            if self._jobs[slot] is not None
        ]
        n = len(live)
        self._jobs[:n] = [self._jobs[s] for s in live]
        self._req[:n] = self._req[live]
        self._wall[:n] = self._wall[live]
        self._alive[:n] = True
        for i in range(n, self._tail):
            self._jobs[i] = None
        self._alive[n : self._tail] = False
        self._head = 0
        self._tail = n
        self._n_dead = 0
        for i, job in enumerate(self._jobs[:n]):
            assert job is not None
            self._slot[job.job_id] = i

    def _grow(self) -> None:
        extra = max(_MIN_CAPACITY, len(self._jobs))
        self._jobs.extend([None] * extra)
        self._req = np.concatenate(
            [self._req, np.zeros((extra, len(self._names)))], axis=0
        )
        self._wall = np.concatenate([self._wall, np.zeros(extra)])
        self._alive = np.concatenate([self._alive, np.zeros(extra, dtype=bool)])
