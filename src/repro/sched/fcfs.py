"""The *Heuristic* baseline: FCFS extended to multiple resources.

The paper's heuristic comparator (§IV-D) is an extension of
first-come-first-serve belonging to the list-scheduling family: jobs are
started strictly in arrival order; the first job whose full
multi-resource request cannot be met is reserved, and EASY backfilling
(inherited from :class:`~repro.sched.base.Scheduler`) fills the gaps.
"""

from __future__ import annotations

from repro.sched.base import SchedulingContext, WindowPolicyScheduler
from repro.workload.job import Job

__all__ = ["FCFSScheduler"]


class FCFSScheduler(WindowPolicyScheduler):
    """FCFS list scheduling over all schedulable resources."""

    name = "fcfs"

    def rank(self, window: list[Job], ctx: SchedulingContext) -> list[Job]:
        # The queue (and therefore the window) is maintained in
        # submission order — FCFS is the identity ranking.
        return list(window)
