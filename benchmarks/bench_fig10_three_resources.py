"""Fig. 10: three-resource case study (CPU + burst buffer + power, §V-E).

Regenerates the S6–S10 comparison with the power budget as a third
schedulable resource and prints the five-axis Kiviat tables (including
Avg_SysPower). Benchmarks a three-resource evaluation replay.
"""

from bench_util import bench_workers

from repro.experiments.figures import fig10_three_resources
from repro.experiments.harness import ExperimentConfig, make_method, prepare_base_trace
from repro.sched.ga import NSGA2Config
from repro.sim.simulator import Simulator
from repro.workload.suites import build_case_study_workload


def test_fig10_three_resources(benchmark, bench_config, save_result):
    config = ExperimentConfig(
        nodes=bench_config.nodes,
        bb_units=bench_config.bb_units,
        n_jobs=100,
        seed=bench_config.seed,
        curriculum_sets=(1, 1, 1),
        jobs_per_trainset=40,
        ga_config=NSGA2Config(population=8, generations=3),
    )
    out = fig10_three_resources(
        config,
        methods=("mrsch", "optimization", "scalar_rl", "heuristic"),
        n_workers=bench_workers(),
    )
    save_result("fig10_three_resources", out["text"])

    # Benchmark: one three-resource heuristic replay.
    base = prepare_base_trace(config)
    jobs, system = build_case_study_workload("S8", base, config.system(),
                                             seed=config.seed)
    sched = make_method("heuristic", system, config)
    benchmark(lambda: Simulator(system, sched).run(jobs))

    # Shape: five workloads × four methods, five axes each, power axis
    # present, all normalized into [0, 1].
    assert set(out["charts"]) == {"S6", "S7", "S8", "S9", "S10"}
    for chart in out["charts"].values():
        assert set(chart) == {"mrsch", "optimization", "scalar_rl", "heuristic"}
        for axes in chart.values():
            assert "avg_sys_power" in axes
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in axes.values())
