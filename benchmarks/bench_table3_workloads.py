"""Table III: the S1–S5 workload suite.

Benchmarks workload construction and regenerates the table's defining
statistics — burst-buffer request fraction, size range and the
light→heavy contention ladder.
"""

import numpy as np

from repro.cluster.resources import BURST_BUFFER, NODE
from repro.experiments.report import format_table
from repro.workload.suites import WORKLOAD_SPECS, build_workload
from repro.workload.theta import generate_theta_trace


def test_table3_workload_generation(benchmark, bench_config, save_result):
    system = bench_config.system()
    base = generate_theta_trace(bench_config.trace_config(500), seed=bench_config.seed)

    def build_all():
        return {
            name: build_workload(name, base, system, seed=bench_config.seed)
            for name in WORKLOAD_SPECS
        }

    workloads = benchmark(build_all)

    rows = {}
    for name, jobs in workloads.items():
        bb = np.array([j.request(BURST_BUFFER) for j in jobs])
        nodes = np.array([j.request(NODE) for j in jobs])
        rt = np.array([j.runtime for j in jobs])
        with_bb = bb > 0
        ratio = ((bb * rt).sum() / system.capacity(BURST_BUFFER)) / (
            (nodes * rt).sum() / system.capacity(NODE)
        )
        rows[name] = [
            float(with_bb.mean()),
            float(bb[with_bb].min()) if with_bb.any() else 0.0,
            float(bb[with_bb].max()) if with_bb.any() else 0.0,
            float(nodes.mean()),
            float(ratio),
        ]
    text = format_table(
        "Table III — workloads (miniature scale, BB units of 1 TB-equivalent)",
        ["frac_bb", "bb_min", "bb_max", "nodes_mean", "bb/node demand"],
        rows,
    )
    save_result("table3_workloads", text)

    # Shape assertions: the paper's light→heavy contention ladder.
    ratios = {name: rows[name][4] for name in rows}
    assert ratios["S1"] < ratios["S2"]
    assert ratios["S3"] < ratios["S4"] < ratios["S5"]
