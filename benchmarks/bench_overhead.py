"""§V-F: runtime overhead of MRSch scheduling decisions.

The paper reports <2 s per decision for two resources and <3 s for
three on a laptop-class machine, against a 15–30 s production budget.
This regenerates the same measurement (encode + forward + argmax) and
benchmarks the decision path directly at both resource counts.
"""

import numpy as np
import pytest

from repro.experiments.figures import overhead_study
from repro.experiments.harness import ExperimentConfig, make_method
from repro.workload.suites import scaled_power_budget_units


def test_overhead_report(benchmark, bench_config, save_result):
    out = benchmark.pedantic(
        overhead_study, args=(bench_config,), kwargs={"n_decisions": 100},
        rounds=1, iterations=1,
    )
    save_result("overhead", out["text"])
    # Shape: decisions are far under the paper's 15–30 s budget (our
    # miniature network should be milliseconds).
    for latency in out["data"].values():
        assert latency < 2.0


@pytest.mark.parametrize("n_resources", [2, 3], ids=["2res", "3res"])
def test_decision_latency(benchmark, bench_config, n_resources):
    system = bench_config.system()
    if n_resources == 3:
        system = system.with_power(scaled_power_budget_units(system))
    sched = make_method("mrsch", system, bench_config)
    rng = np.random.default_rng(0)
    state = rng.random(sched.encoder.state_dim)
    meas = rng.random(system.n_resources)
    goal = np.full(system.n_resources, 1.0 / system.n_resources)
    mask = np.ones(bench_config.window_size, dtype=bool)
    benchmark(sched.agent.act, state, meas, goal, mask)
