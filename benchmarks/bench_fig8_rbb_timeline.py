"""Fig. 8: rBB fluctuation over a 12-hour window of the S5 workload.

Regenerates the goal-vector timeline of an MRSch run on S5 and checks
the §V-D observation: rBB stays well above 0.5 (the scalar-RL constant)
and genuinely fluctuates. Benchmarks the Eq. 1 computation.
"""

import numpy as np

from repro.core.goal import goal_vector
from repro.experiments.figures import fig8_rbb_timeline
from repro.experiments.harness import ExperimentConfig, prepare_base_trace
from repro.sched.ga import NSGA2Config
from repro.workload.suites import build_workload


def test_fig8_rbb_timeline(benchmark, bench_config, save_result):
    config = ExperimentConfig(
        nodes=bench_config.nodes,
        bb_units=bench_config.bb_units,
        n_jobs=150,
        seed=bench_config.seed,
        curriculum_sets=(1, 1, 1),
        jobs_per_trainset=40,
        ga_config=NSGA2Config(population=8, generations=3),
    )
    out = fig8_rbb_timeline(config, workload="S5", train=False)
    save_result("fig8_rbb_timeline", out["text"])

    # Benchmark Eq. 1 on a realistic queue + running mix.
    system = config.system()
    base = prepare_base_trace(config)
    jobs = build_workload("S5", base, system, seed=config.seed)
    queued, running = jobs[:20], jobs[20:40]
    for job in running:
        job.start_time = 0.0
    benchmark(goal_vector, queued, running, system, 100.0)

    # Shape (§V-D): under S5 the burst buffer dominates contention, so
    # rBB sits above the scalar-RL constant 0.5 and moves around.
    series = np.array(out["data"]["rBB"])
    assert series.size > 5
    assert series.mean() > 0.5
    assert series.max() - series.min() > 0.02  # it fluctuates
