"""Fig. 5: system-level comparison (node and burst-buffer utilization).

Regenerates the 4-method × S1–S5 grid and benchmarks a single
(scheduler, workload) evaluation run. Shape checks: MRSch's utilization
stays competitive with (or beats) the FCFS heuristic where contention is
fierce — the paper's headline system-level claim.
"""

import numpy as np

from repro.experiments.harness import make_method, prepare_base_trace
from repro.experiments.report import format_table
from repro.sim.simulator import Simulator
from repro.workload.suites import build_workload

METHODS = ["mrsch", "optimization", "scalar_rl", "heuristic"]
WORKLOADS = ["S1", "S2", "S3", "S4", "S5"]


def test_fig5_system_metrics(benchmark, bench_config, comparison_grid, save_result):
    # Benchmark one evaluation replay (the unit of the grid).
    system = bench_config.system()
    base = prepare_base_trace(bench_config)
    jobs = build_workload("S3", base, system, seed=bench_config.seed)
    heuristic = make_method("heuristic", system, bench_config)
    benchmark(lambda: Simulator(system, heuristic).run(jobs))

    blocks = []
    for metric in ("node_util", "bb_util"):
        rows = {
            m: [comparison_grid[w][m].as_dict()[metric] for w in WORKLOADS]
            for m in METHODS
        }
        blocks.append(format_table(f"Fig 5 — {metric}", WORKLOADS, rows))
    text = "\n\n".join(blocks)
    save_result("fig5_system_metrics", text)

    # Shape: averaged over the suite, MRSch utilization is within a few
    # points of the best method (the paper reports it on top).
    for metric in ("node_util", "bb_util"):
        mrsch = np.mean(
            [comparison_grid[w]["mrsch"].as_dict()[metric] for w in WORKLOADS]
        )
        best = max(
            np.mean([comparison_grid[w][m].as_dict()[metric] for w in WORKLOADS])
            for m in METHODS
        )
        assert mrsch >= 0.85 * best, f"MRSch {metric} collapsed: {mrsch} vs {best}"
