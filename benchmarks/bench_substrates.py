"""Throughput benchmarks of the substrates underneath every experiment:
the event queue, the resource pool, the state encoder and the DFP
network. These bound the simulator's jobs/second and the agent's
decisions/second at any system scale.
"""

import numpy as np
import pytest

from repro.cluster.resources import ResourcePool, SystemConfig
from repro.core.dfp import DFPAgent, DFPConfig
from repro.core.encoding import StateEncoder
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.simulator import Simulator
from repro.sched.fcfs import FCFSScheduler
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace
from tests.conftest import make_job


def test_event_queue_throughput(benchmark):
    rng = np.random.default_rng(0)
    times = rng.uniform(0, 1e6, size=2000)
    job = make_job()

    def churn():
        q = EventQueue()
        for t in times:
            q.push(Event(float(t), EventKind.SUBMIT, job))
        while q:
            q.pop()

    benchmark(churn)


def test_pool_allocate_release(benchmark):
    system = SystemConfig.mini_theta(nodes=512, bb_units=256)
    pool = ResourcePool(system)
    jobs = [make_job(job_id=i, nodes=8, bb=2, runtime=100.0) for i in range(32)]

    def cycle():
        for job in jobs:
            pool.allocate(job, now=0.0)
        for job in jobs:
            pool.release(job)
            job.reset()

    benchmark(cycle)


def test_state_encoding_full_theta_scale(benchmark):
    """Encoding at the paper's real dimensions (11,404-element state)."""
    system = SystemConfig.theta()
    encoder = StateEncoder(system, window_size=10)
    pool = ResourcePool(system)
    pool.allocate(make_job(job_id=1, nodes=2000, bb=500, runtime=3600.0), now=0.0)
    window = [make_job(job_id=i + 2, nodes=128, bb=10) for i in range(10)]
    out = benchmark(encoder.encode, window, pool, 100.0)
    assert out.shape == (encoder.state_dim,)


@pytest.mark.parametrize("batch", [1, 32], ids=["act", "train_batch"])
def test_dfp_forward_throughput(benchmark, batch):
    cfg = DFPConfig(state_dim=424, n_measurements=2, n_actions=10)
    agent = DFPAgent(cfg, rng=0)
    rng = np.random.default_rng(1)
    s = rng.random((batch, 424))
    m = rng.random((batch, 2))
    g = rng.random((batch, 2))
    benchmark(agent.network.forward, s, m, g)


def test_simulator_jobs_per_second(benchmark):
    system = SystemConfig.mini_theta(nodes=128, bb_units=64)
    jobs = generate_theta_trace(
        ThetaTraceConfig(total_nodes=128, n_jobs=300), seed=5
    )
    sched = FCFSScheduler(window_size=10)
    benchmark(lambda: Simulator(system, sched, record_timeline=False).run(jobs))
