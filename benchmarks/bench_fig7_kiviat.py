"""Fig. 7: Kiviat (radar) charts of overall scheduling performance.

Normalizes the Fig 5/6 grid onto [0, 1] axes per workload and reports
each method's radar polygon area (larger = better overall). Benchmarks
the normalization itself.
"""

from repro.experiments.figures import _kiviat_area
from repro.experiments.report import format_table
from repro.sim.metrics import kiviat_normalize

WORKLOADS = ["S1", "S2", "S3", "S4", "S5"]


def test_fig7_kiviat(benchmark, comparison_grid, save_result):
    charts = benchmark(
        lambda: {w: kiviat_normalize(comparison_grid[w]) for w in WORKLOADS}
    )

    blocks = []
    areas = {}
    for w, chart in charts.items():
        axis_names = list(next(iter(chart.values())).keys())
        rows = {m: [axes[a] for a in axis_names] for m, axes in chart.items()}
        blocks.append(format_table(f"Fig 7 — {w}", axis_names, rows))
        areas[w] = {m: _kiviat_area(list(axes.values())) for m, axes in chart.items()}
    area_rows = {
        m: [areas[w][m] for w in WORKLOADS] for m in next(iter(areas.values()))
    }
    blocks.append(format_table("Fig 7 — radar polygon areas", WORKLOADS, area_rows))
    save_result("fig7_kiviat", "\n\n".join(blocks))

    # Shape: every normalized axis lies in [0, 1] and each workload has
    # a method scoring 1.0 on each axis.
    for chart in charts.values():
        for axes in chart.values():
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in axes.values())
        for axis in next(iter(chart.values())):
            assert max(axes[axis] for axes in chart.values()) >= 1.0 - 1e-9
