"""Hot-path benchmark driver — the measured face of ``repro.perf``.

A thin forwarding wrapper over ``repro bench`` so the suite has one
implementation and two entry points::

    python benchmarks/bench_hotpath.py                    # full scale
    python benchmarks/bench_hotpath.py --scale smoke --check
    repro bench --scale full --label pr4 --append

The suite times a ≥20k-job saturated FCFS replay, one MRSch training
episode, and pool-accounting / DFP-scoring micro-benchmarks; entries
land in ``BENCH_hotpath.json`` (see the README "Performance" section
for how to read the trajectory and what the regression guard enforces).

Historical measurement: the portable file is
``src/repro/perf/hotpath.py`` — *its* benchmarks only touch long-stable
APIs, so copy that single module next to an older checkout and run it
with the old checkout's ``src`` on ``PYTHONPATH`` to regenerate a
baseline entry for a past commit (that is how the seed-commit point of
the committed trajectory was produced). This wrapper itself needs the
current checkout: it goes through ``repro.api.cli``/``repro.perf``.
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    from repro.api.cli import main as cli_main

    return cli_main(["bench", *(sys.argv[1:] if argv is None else argv)])


if __name__ == "__main__":
    raise SystemExit(main())
