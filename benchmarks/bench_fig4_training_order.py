"""Fig. 4: training-quality and convergence vs curriculum ordering.

Trains a fresh MRSch agent under each of the six (sampled, real,
synthetic) orderings and reports the MSE loss trajectories and final
losses. Benchmarks one replay-training batch (the inner loop of every
curve point).
"""

from repro.experiments.figures import fig4_training_order
from repro.experiments.harness import ExperimentConfig, make_method
from repro.sched.ga import NSGA2Config


def test_fig4_training_order(benchmark, bench_config, save_result):
    config = ExperimentConfig(
        nodes=bench_config.nodes,
        bb_units=bench_config.bb_units,
        n_jobs=100,
        window_size=bench_config.window_size,
        seed=bench_config.seed,
        curriculum_sets=(2, 2, 2),
        jobs_per_trainset=50,
        ga_config=NSGA2Config(population=8, generations=3),
    )
    out = fig4_training_order(config)
    save_result("fig4_training_order", out["text"])

    # Benchmark a single replay batch on the trained agent's buffer.
    system = config.system()
    sched = make_method("mrsch", system, config)
    from repro.experiments.harness import train_method

    train_method(sched, system, config)
    assert len(sched.agent.replay) > 0
    benchmark(sched.agent.train_batch)

    # Shape: six orderings, equal episode counts, finite losses.
    assert len(out["data"]) == 6
    lengths = {len(v) for v in out["data"].values()}
    assert len(lengths) == 1
    for losses in out["data"].values():
        assert all(l >= 0 for l in losses)
