"""Fig. 6: user-level comparison (average wait time and slowdown).

Reuses the session comparison grid; benchmarks the metric computation
path. Shape check: MRSch's user-level metrics beat the FCFS heuristic on
the fiercely contended workloads (S4/S5), where the paper reports its
largest gains (up to 48% wait-time reduction).
"""

import numpy as np

from repro.experiments.report import format_table
from repro.sim.metrics import compute_metrics

METHODS = ["mrsch", "optimization", "scalar_rl", "heuristic"]
WORKLOADS = ["S1", "S2", "S3", "S4", "S5"]


def test_fig6_user_metrics(benchmark, bench_config, comparison_grid, save_result):
    blocks = []
    for metric in ("avg_wait_h", "avg_slowdown"):
        rows = {
            m: [comparison_grid[w][m].as_dict()[metric] for w in WORKLOADS]
            for m in METHODS
        }
        blocks.append(format_table(f"Fig 6 — {metric}", WORKLOADS, rows))
    text = "\n\n".join(blocks)
    save_result("fig6_user_metrics", text)

    # Benchmark the metrics pipeline itself on a synthetic job list.
    from repro.workload.theta import generate_theta_trace

    system = bench_config.system()
    jobs = generate_theta_trace(bench_config.trace_config(500), seed=1)
    for i, job in enumerate(jobs):
        job.start_time = job.submit_time + 100.0 * (i % 7)
        job.end_time = job.start_time + job.runtime
    benchmark(compute_metrics, jobs, system)

    # Shape: on the heavy-contention workloads MRSch's wait/slowdown do
    # not degrade past the FCFS heuristic (paper: large improvements).
    heavy = ["S4", "S5"]
    mrsch_wait = np.mean([comparison_grid[w]["mrsch"].avg_wait for w in heavy])
    fcfs_wait = np.mean([comparison_grid[w]["heuristic"].avg_wait for w in heavy])
    assert mrsch_wait <= 1.25 * fcfs_wait
