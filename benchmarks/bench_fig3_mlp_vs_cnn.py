"""Fig. 3: MLP vs CNN state module (§V-A ablation).

Trains two MRSch agents that differ only in the state module and
evaluates both on the full S1–S5 suite, printing the four metric tables.
Benchmarks a single forward pass of each state module (the architectural
cost difference).
"""

import numpy as np

from bench_util import bench_workers

from repro.experiments.figures import fig3_mlp_vs_cnn
from repro.experiments.harness import ExperimentConfig, make_method
from repro.sched.ga import NSGA2Config


def test_fig3_mlp_vs_cnn(benchmark, bench_config, save_result):
    config = ExperimentConfig(
        nodes=bench_config.nodes,
        bb_units=bench_config.bb_units,
        n_jobs=100,
        window_size=bench_config.window_size,
        seed=bench_config.seed,
        curriculum_sets=(1, 1, 1),
        jobs_per_trainset=50,
        ga_config=NSGA2Config(population=8, generations=3),
    )
    out = fig3_mlp_vs_cnn(config, n_workers=min(2, bench_workers()))
    save_result("fig3_mlp_vs_cnn", out["text"])

    # Benchmark: one agent decision with the MLP state module.
    system = config.system()
    sched = make_method("mrsch", system, config, state_module="mlp")
    rng = np.random.default_rng(0)
    state = rng.random(sched.encoder.state_dim)
    meas = rng.random(system.n_resources)
    goal = np.full(system.n_resources, 0.5)
    mask = np.ones(config.window_size, dtype=bool)
    benchmark(sched.agent.act, state, meas, goal, mask)

    # Shape: both variants produce complete results on all workloads and
    # metrics stay in sane ranges.
    for workload, variants in out["data"].items():
        assert set(variants) == {"MLP", "CNN"}
        for report in variants.values():
            assert 0.0 <= report.node_util <= 1.0
            assert report.n_jobs == config.n_jobs
