"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure — this quantifies the load-bearing pieces of the
reproduction on the heavy-contention S4 workload:

* **EASY backfilling** (§III-C): scheduling with vs without it,
* **dynamic goal vector** (§III-B, Eq. 1): vs a frozen uniform goal —
  the fixed-priority strawman of Fig. 1,
* **feasibility prior** (laptop-scale calibration): guided vs pure DFP.
"""

from repro.experiments.harness import (
    ExperimentConfig,
    make_method,
    prepare_base_trace,
    train_method,
)
from repro.experiments.report import format_table
from repro.sched.ga import NSGA2Config
from repro.sim.simulator import Simulator
from repro.workload.suites import build_workload

WORKLOAD = "S4"


def _config() -> ExperimentConfig:
    return ExperimentConfig(
        n_jobs=150,
        seed=2022,
        curriculum_sets=(2, 2, 2),
        jobs_per_trainset=60,
        ga_config=NSGA2Config(population=8, generations=3),
    )


def _evaluate(sched, system, jobs):
    m = Simulator(system, sched).run(jobs).metrics
    return [m.node_util, m.bb_util, m.avg_wait_hours, m.avg_slowdown]


def test_ablation_backfill(benchmark, save_result):
    """EASY backfilling is the largest single contributor to FCFS quality."""
    config = _config()
    system = config.system()
    base = prepare_base_trace(config)
    jobs = build_workload(WORKLOAD, base, system, seed=config.seed)
    rows = {}
    for label, backfill in (("with EASY", True), ("without EASY", False)):
        sched = make_method("heuristic", system, config, backfill=backfill)
        rows[label] = _evaluate(sched, system, jobs)
    sched = make_method("heuristic", system, config)
    benchmark(lambda: Simulator(system, sched).run(jobs))
    text = format_table(
        f"Ablation — EASY backfilling (FCFS on {WORKLOAD})",
        ["node_util", "bb_util", "avg_wait_h", "avg_slowdown"],
        rows,
    )
    save_result("ablation_backfill", text)
    # Backfilling must strictly improve utilization and wait time.
    assert rows["with EASY"][0] >= rows["without EASY"][0]
    assert rows["with EASY"][2] <= rows["without EASY"][2]


def test_ablation_dynamic_goal(benchmark, save_result):
    """Eq. 1 dynamic prioritizing vs a frozen uniform goal (Fig. 1's trap)."""
    config = _config()
    system = config.system()
    base = prepare_base_trace(config)
    rows = {}
    for label, dynamic in (("dynamic goal (Eq. 1)", True), ("fixed 0.5/0.5 goal", False)):
        sched = make_method("mrsch", system, config, dynamic_goal=dynamic)
        train_method(sched, system, config)
        jobs = build_workload("S5", base, system, seed=config.seed)
        rows[label] = _evaluate(sched, system, jobs)
    text = format_table(
        "Ablation — dynamic vs fixed goal vector (MRSch on S5)",
        ["node_util", "bb_util", "avg_wait_h", "avg_slowdown"],
        rows,
    )
    save_result("ablation_dynamic_goal", text)
    # The prior uses the goal to weigh demands; on the BB-dominated S5
    # the dynamic goal must not be worse than the frozen one.
    assert rows["dynamic goal (Eq. 1)"][3] <= rows["fixed 0.5/0.5 goal"][3] * 1.05
    sched = make_method("mrsch", system, config)
    jobs = build_workload("S5", base, system, seed=config.seed)
    benchmark.pedantic(
        lambda: Simulator(system, sched).run(jobs), rounds=1, iterations=1
    )


def test_ablation_feasibility_prior(benchmark, save_result):
    """Guided inference vs pure DFP at laptop training budgets."""
    config = _config()
    system = config.system()
    base = prepare_base_trace(config)
    jobs = build_workload(WORKLOAD, base, system, seed=config.seed)
    rows = {}
    for label, pw in (("guided (prior_weight=2)", 2.0), ("pure DFP (prior_weight=0)", 0.0)):
        sched = make_method("mrsch", system, config, prior_weight=pw)
        train_method(sched, system, config)
        rows[label] = _evaluate(sched, system, jobs)
    text = format_table(
        f"Ablation — feasibility prior (MRSch on {WORKLOAD})",
        ["node_util", "bb_util", "avg_wait_h", "avg_slowdown"],
        rows,
    )
    save_result("ablation_feasibility_prior", text)
    sched = make_method("mrsch", system, config)
    benchmark.pedantic(
        lambda: Simulator(system, sched).run(jobs), rounds=1, iterations=1
    )
    # The calibration must pay for itself at this training budget.
    assert rows["guided (prior_weight=2)"][0] >= rows["pure DFP (prior_weight=0)"][0] * 0.95
