"""Shared benchmark helpers importable by name from bench modules.

Lives outside conftest.py because pytest registers conftest modules
under the bare name ``conftest`` — importing helpers from there is
load-order dependent when tests/ and benchmarks/ are collected together.
"""

from __future__ import annotations

import os

__all__ = ["bench_workers"]


def bench_workers() -> int:
    """Worker processes for grid benchmarks.

    ``REPRO_BENCH_WORKERS`` overrides; the default uses the machine's
    cores (capped at 8 — the grids are at most a handful of cells wide).
    """
    env = os.environ.get("REPRO_BENCH_WORKERS")
    if env is not None:
        return max(1, int(env))
    return min(8, os.cpu_count() or 1)
