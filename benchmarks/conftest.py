"""Shared benchmark fixtures.

Figure benchmarks are sized to finish in minutes on a laptop while still
exercising the full pipeline (training included). The (method ×
workload) comparison grid behind Figs 5, 6 and 7 is computed once per
session and shared. Rendered tables are written to
``benchmarks/results/`` so the regenerated paper rows persist after the
run (pytest-benchmark captures timing, not stdout).
"""

from __future__ import annotations

from pathlib import Path

import pytest
from bench_util import bench_workers

from repro.api import compare, paper_methods, paper_workloads
from repro.experiments.harness import ExperimentConfig
from repro.sched.ga import NSGA2Config

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The standard benchmark scale (miniature Theta, DESIGN.md §5)."""
    return ExperimentConfig(
        nodes=128,
        bb_units=64,
        n_jobs=150,
        window_size=10,
        seed=2022,
        curriculum_sets=(2, 2, 2),
        jobs_per_trainset=60,
        ga_config=NSGA2Config(population=12, generations=6),
    )


@pytest.fixture(scope="session")
def comparison_grid(bench_config):
    """The 4-method × S1–S5 grid shared by the Fig 5/6/7 benchmarks.

    Runs on the parallel experiment engine — method cells fan out over
    ``bench_workers()`` processes (identical results at any width).
    """
    return compare(
        workloads=list(paper_workloads()),
        methods=list(paper_methods()),
        config=bench_config,
        n_workers=bench_workers(),
    )


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered figure table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
