"""Runner benchmark: serial vs parallel grid execution + the fast path.

Two demonstrations:

1. **Engine speedup** — the 4-method × 3-seed comparison grid replayed
   serially and through a 4-worker process pool. Parallel and serial
   runs must produce *identical* metric values (the engine's core
   guarantee, asserted here and in
   ``tests/integration/test_runner_determinism.py``); wall-clock speedup
   is reported, and asserted ≥ 2× when the machine actually has ≥ 4
   usable cores (a single-core container can demonstrate determinism
   but not parallelism).
2. **Simulator fast path** — per-replay latency of one evaluation run,
   exercising the incremental pool accounting and the folded DFP
   scoring path.
"""

from __future__ import annotations

import os
import time

from bench_util import bench_workers

from repro.exp import ExperimentRunner, grid_tasks
from repro.experiments.harness import ExperimentConfig, make_method, prepare_base_trace
from repro.experiments.report import format_table
from repro.sched.ga import NSGA2Config
from repro.sim.simulator import Simulator
from repro.workload.suites import build_workload

METHODS = ["mrsch", "optimization", "scalar_rl", "heuristic"]
N_SEEDS = 3
PARALLEL_WORKERS = 4


def _grid_config() -> ExperimentConfig:
    """Evaluation-only sizing: big enough that a cell takes real work."""
    return ExperimentConfig(
        nodes=128,
        bb_units=64,
        n_jobs=120,
        window_size=10,
        seed=2022,
        ga_config=NSGA2Config(population=10, generations=4),
    )


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_runner_parallel_speedup(save_result):
    config = _grid_config()
    tasks = grid_tasks(METHODS, ["S3"], config, n_seeds=N_SEEDS, train=False)
    assert len(tasks) == len(METHODS) * N_SEEDS

    t0 = time.perf_counter()
    serial = ExperimentRunner(n_workers=1).run(tasks)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = ExperimentRunner(n_workers=PARALLEL_WORKERS).run(tasks)
    t_parallel = time.perf_counter() - t0

    # The engine's core guarantee: worker count never changes a metric.
    for s, p in zip(serial, parallel):
        assert s.key == p.key
        assert s.metrics["S3"].full_dict() == p.metrics["S3"].full_dict(), (
            f"parallel run diverged for {s.method}@{s.seed}"
        )

    speedup = t_serial / t_parallel
    cores = _usable_cores()
    rows = {
        "serial (1 worker)": [t_serial, 1.0],
        f"parallel ({PARALLEL_WORKERS} workers)": [t_parallel, speedup],
    }
    text = format_table(
        f"Runner — {len(tasks)}-cell grid wall clock ({cores} usable cores)",
        ["seconds", "speedup"],
        rows,
    )
    save_result("bench_runner_speedup", text)
    if cores >= PARALLEL_WORKERS:
        assert speedup >= 2.0, (
            f"expected >=2x speedup on {cores} cores, got {speedup:.2f}x"
        )


def test_single_replay_fast_path(benchmark, save_result):
    config = _grid_config()
    system = config.system()
    base = prepare_base_trace(config)
    jobs = build_workload("S3", base, system, seed=config.seed)
    sched = make_method("mrsch", system, config)
    result = benchmark(lambda: Simulator(system, sched).run(jobs))
    assert result.metrics.n_jobs == config.n_jobs
    save_result(
        "bench_runner_replay",
        format_table(
            "Single mrsch replay (fast path)",
            ["ms"],
            {"per replay": [benchmark.stats.stats.mean * 1000.0]},
        ),
    )


def test_runner_default_workers_configured():
    """The shared grid fixture fans out when cores are available."""
    assert bench_workers() >= 1
