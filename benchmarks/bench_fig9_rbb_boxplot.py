"""Fig. 9: distribution of rBB across the S1–S5 workloads.

Regenerates the box statistics of the burst-buffer goal weight per
workload and checks the paper's two observations: (1) rBB varies —
unlike the scalar-RL constant 0.5 — and (2) S5 has the highest
distribution (quartiles and mean). Benchmarks a full MRSch evaluation
run including goal logging.
"""

from repro.experiments.figures import fig9_rbb_distribution
from repro.experiments.harness import ExperimentConfig, make_method, prepare_base_trace
from repro.sched.ga import NSGA2Config
from repro.sim.simulator import Simulator
from repro.workload.suites import build_workload


def test_fig9_rbb_distribution(benchmark, bench_config, save_result):
    config = ExperimentConfig(
        nodes=bench_config.nodes,
        bb_units=bench_config.bb_units,
        n_jobs=120,
        seed=bench_config.seed,
        curriculum_sets=(1, 1, 1),
        jobs_per_trainset=40,
        ga_config=NSGA2Config(population=8, generations=3),
    )
    out = fig9_rbb_distribution(config, train=False)
    save_result("fig9_rbb_boxplot", out["text"])

    # Benchmark: one full MRSch evaluation replay (goal logging on).
    system = config.system()
    base = prepare_base_trace(config)
    jobs = build_workload("S1", base, system, seed=config.seed)
    sched = make_method("mrsch", system, config)
    benchmark(lambda: Simulator(system, sched).run(jobs))

    stats = out["data"]
    # Shape: S5's central tendency tops the suite (paper: min, q1, mean,
    # q3 and max all largest for S5).
    for other in ("S1", "S2", "S3", "S4"):
        assert stats["S5"]["median"] >= stats[other]["median"]
        assert stats["S5"]["q3"] >= stats[other]["q3"]
    # And rBB really varies within each workload.
    for s in stats.values():
        assert s["max"] > s["min"]
