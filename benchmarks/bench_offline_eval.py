"""Offline evaluation benchmark: batched trace replay vs re-simulation.

The point of `repro.eval`: once a simulation has been recorded as a
decision trace, scoring another policy on the *same* decision points is
one batched forward pass (`DFPAgent.action_scores_batch` for DFP
policies, a vectorised feature expression for heuristics) instead of a
full event-driven replay. This benchmark records one mrsch trace, then
measures

1. **re-simulation** — the legacy way to ask "what would this policy
   have done": run the whole simulator again, and
2. **offline replay** — score every recorded decision through the
   batched DFP path plus three feature heuristics, including the full
   agreement/regret/bootstrap report.

The replay path must be ≥ 10× faster than a single re-simulation (it is
typically far more, and the gap widens with every extra policy, since
re-simulation pays the event loop per policy while replay shares the
recorded decision points).
"""

from __future__ import annotations

import time

from repro.eval.evaluator import evaluate_traces
from repro.eval.policies import DFPReplayPolicy, fcfs_policy, prior_policy, shortest_job_policy
from repro.eval.recorder import DecisionTraceRecorder
from repro.experiments.harness import ExperimentConfig, make_method, prepare_base_trace
from repro.experiments.report import format_table
from repro.sim.simulator import Simulator
from repro.workload.suites import build_workload

MIN_SPEEDUP = 10.0


def _setup():
    config = ExperimentConfig(
        nodes=128, bb_units=64, n_jobs=150, window_size=10, seed=2022
    )
    system = config.system()
    base = prepare_base_trace(config)
    jobs = build_workload("S3", base, system, seed=config.seed)
    sched = make_method("mrsch", system, config)
    return config, system, jobs, sched


def test_offline_replay_speedup(save_result):
    config, system, jobs, sched = _setup()

    recorder = DecisionTraceRecorder()
    recorder.start(method="mrsch", workload="S3", seed=config.seed, task_key="bench")
    sched.decision_recorder = recorder
    t0 = time.perf_counter()
    Simulator(system, sched).run(jobs)
    t_record = time.perf_counter() - t0
    trace = recorder.finish()
    sched.decision_recorder = None

    # 1. Re-simulation: what one more policy evaluation used to cost.
    t0 = time.perf_counter()
    Simulator(system, sched).run(jobs)
    t_resim = time.perf_counter() - t0

    # 2. Offline replay: four policies on the shared decision points,
    #    metrics and paired bootstrap included.
    policies = {
        "dfp": DFPReplayPolicy.from_scheduler(sched),
        "fcfs": fcfs_policy,
        "shortest_job": shortest_job_policy,
        "prior": prior_policy,
    }
    t0 = time.perf_counter()
    report = evaluate_traces([trace], policies, n_bootstrap=200)
    t_replay_all = time.perf_counter() - t0

    # The per-policy replay cost (the number to compare with one
    # re-simulation): one batched DFP scoring pass over the trace.
    dfp = policies["dfp"]
    t0 = time.perf_counter()
    dfp(trace)
    t_replay_one = time.perf_counter() - t0

    # Sanity: the replay is faithful, not just fast.
    assert report.agreement["dfp"] == 1.0, "self-replay must match logged actions"
    assert report.n_decisions == trace.n_decisions > 0

    speedup_one = t_resim / t_replay_one
    speedup_all = (4 * t_resim) / t_replay_all
    rows = {
        "record once (sim + capture)": [t_record * 1e3, float("nan")],
        "re-simulate (per policy)": [t_resim * 1e3, 1.0],
        "offline replay, 1 policy": [t_replay_one * 1e3, speedup_one],
        "offline replay, 4 policies + stats": [t_replay_all * 1e3, speedup_all],
    }
    save_result(
        "bench_offline_eval",
        format_table(
            f"Offline eval — {trace.n_decisions} decisions, S3 × mrsch "
            f"({config.n_jobs} jobs)",
            ["ms", "speedup vs resim"],
            rows,
        ),
    )
    assert speedup_one >= MIN_SPEEDUP, (
        f"offline replay should be >= {MIN_SPEEDUP:.0f}x faster than "
        f"re-simulation, got {speedup_one:.1f}x"
    )
