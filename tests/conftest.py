"""Shared fixtures: small deterministic systems, traces and workloads.

Also applies the suite's marker policy: everything under
``tests/integration/`` is auto-marked ``integration``, and tests marked
``slow`` (full-grid / training-heavy) are deselected by default via the
``addopts`` in ``pyproject.toml`` — run them with ``-m slow`` or
``-m ""``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.resources import BURST_BUFFER, NODE, ResourceSpec, SystemConfig
from repro.workload.job import Job
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace


def pytest_collection_modifyitems(config, items):
    for item in items:
        if "tests/integration/" in item.nodeid.replace("\\", "/"):
            item.add_marker(pytest.mark.integration)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_system() -> SystemConfig:
    """A 2-resource system small enough for exhaustive checks."""
    return SystemConfig(
        resources=(
            ResourceSpec(NODE, 16, "node"),
            ResourceSpec(BURST_BUFFER, 8, "TB"),
        )
    )


@pytest.fixture
def mini_system() -> SystemConfig:
    return SystemConfig.mini_theta(nodes=32, bb_units=16)


def make_job(
    job_id: int = 1,
    submit: float = 0.0,
    runtime: float = 100.0,
    walltime: float | None = None,
    nodes: int = 1,
    bb: int = 0,
    **extra: int,
) -> Job:
    """Concise job constructor for tests."""
    requests = {NODE: nodes, BURST_BUFFER: bb, **extra}
    return Job(
        job_id=job_id,
        submit_time=submit,
        runtime=runtime,
        walltime=walltime if walltime is not None else runtime,
        requests=requests,
    )


@pytest.fixture
def tiny_trace(tiny_system) -> list[Job]:
    """Ten deterministic jobs with staggered arrivals."""
    jobs = []
    for i in range(10):
        jobs.append(
            make_job(
                job_id=i + 1,
                submit=i * 50.0,
                runtime=200.0 + 30 * (i % 3),
                walltime=400.0,
                nodes=1 + (i % 4) * 2,
                bb=(i % 3),
            )
        )
    return jobs


@pytest.fixture
def theta_trace() -> list[Job]:
    cfg = ThetaTraceConfig(total_nodes=32, n_jobs=120, mean_interarrival=300.0)
    return generate_theta_trace(cfg, seed=7)
