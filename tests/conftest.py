"""Shared fixtures: small deterministic systems, traces and workloads.

Also applies the suite's marker policy: everything under
``tests/integration/`` is auto-marked ``integration``, and tests marked
``slow`` (full-grid / training-heavy) are deselected by default via the
``addopts`` in ``pyproject.toml`` — run them with ``-m slow`` or
``-m ""``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.resources import BURST_BUFFER, NODE, ResourceSpec, SystemConfig
from repro.workload.job import Job
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace


def pytest_collection_modifyitems(config, items):
    for item in items:
        if "tests/integration/" in item.nodeid.replace("\\", "/"):
            item.add_marker(pytest.mark.integration)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_system() -> SystemConfig:
    """A 2-resource system small enough for exhaustive checks."""
    return SystemConfig(
        resources=(
            ResourceSpec(NODE, 16, "node"),
            ResourceSpec(BURST_BUFFER, 8, "TB"),
        )
    )


@pytest.fixture
def mini_system() -> SystemConfig:
    return SystemConfig.mini_theta(nodes=32, bb_units=16)


def make_job(
    job_id: int = 1,
    submit: float = 0.0,
    runtime: float = 100.0,
    walltime: float | None = None,
    nodes: int = 1,
    bb: int = 0,
    **extra: int,
) -> Job:
    """Concise job constructor for tests."""
    requests = {NODE: nodes, BURST_BUFFER: bb, **extra}
    return Job(
        job_id=job_id,
        submit_time=submit,
        runtime=runtime,
        walltime=walltime if walltime is not None else runtime,
        requests=requests,
    )


@pytest.fixture
def tiny_trace(tiny_system) -> list[Job]:
    """Ten deterministic jobs with staggered arrivals."""
    jobs = []
    for i in range(10):
        jobs.append(
            make_job(
                job_id=i + 1,
                submit=i * 50.0,
                runtime=200.0 + 30 * (i % 3),
                walltime=400.0,
                nodes=1 + (i % 4) * 2,
                bb=(i % 3),
            )
        )
    return jobs


@pytest.fixture
def theta_trace() -> list[Job]:
    cfg = ThetaTraceConfig(total_nodes=32, n_jobs=120, mean_interarrival=300.0)
    return generate_theta_trace(cfg, seed=7)


@pytest.fixture
def make_decision_trace():
    """Factory for small synthetic :class:`repro.eval.trace.DecisionTrace`s.

    Deterministic in ``seed``; every decision has all window slots valid
    and the logged action set to the slot a plain FCFS policy would pick
    (slot 0) unless ``actions`` is given.
    """
    from repro.eval.trace import EXTRA_FEATURES, DecisionTrace

    def _make(
        n: int = 6,
        window: int = 4,
        resources: tuple[str, ...] = ("node", "burst_buffer"),
        seed: int = 0,
        actions=None,
        **meta_overrides,
    ) -> "DecisionTrace":
        rng = np.random.default_rng(seed)
        r = len(resources)
        state_dim = (r + 2) * window + 8
        goals = rng.uniform(0.1, 1.0, size=(n, r))
        goals /= goals.sum(axis=1, keepdims=True)
        feats = np.zeros((n, window, r + len(EXTRA_FEATURES)))
        feats[:, :, :r] = rng.uniform(0.05, 0.9, size=(n, window, r))
        feats[:, :, r] = rng.uniform(100.0, 5000.0, size=(n, window))  # walltime
        feats[:, :, r + 1] = rng.uniform(0.0, 900.0, size=(n, window))  # queued
        feats[:, :, r + 2] = 1.0  # everything fits
        meta = {
            "task_key": "testtask",
            "workload": "S1",
            "method": "heuristic",
            "seed": seed,
            "resources": list(resources),
            "capacities": [16.0] * r,
            "feature_names": [*(f"req_frac:{x}" for x in resources), *EXTRA_FEATURES],
            "window_size": window,
            "state_dim": state_dim,
            "n_measurements": r,
            "slot_dim": r + 2,
            "prior_weight": 0.0,
            "dfp_tiebreak": 0.0,
            **meta_overrides,
        }
        return DecisionTrace(
            states=rng.normal(size=(n, state_dim)),
            measurements=rng.uniform(size=(n, r)),
            goals=goals,
            masks=np.ones((n, window), dtype=bool),
            priors=np.zeros((n, window)),
            scores=np.full((n, window), np.nan),
            actions=(
                np.zeros(n, dtype=np.int64)
                if actions is None
                else np.asarray(actions, dtype=np.int64)
            ),
            times=np.arange(n, dtype=float) * 60.0,
            job_ids=np.arange(n * window, dtype=np.int64).reshape(n, window),
            job_features=feats,
            meta=meta,
        )

    return _make
