"""Zero metric drift under faults: queue dispatch == serial, always.

The acceptance contract for the distributed layer (`repro.dist`) is that
coordination never touches results: an N-worker queue-dispatched grid —
even with workers SIGKILLed mid-run, heartbeats dropped, or every local
worker lost — produces ``TaskResult`` metrics bit-identical to a serial
``ExperimentRunner`` run. Re-issued cells are idempotent by construction
(config-hash keys + per-cell ``SeedSequence`` seeds), which these tests
pin with exact ``==`` float comparisons.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.dist import FaultPlan, QueueWorker, WorkQueue, dispatch_tasks
from repro.exp import ExperimentRunner, grid_tasks
from repro.experiments.harness import ExperimentConfig

METHODS = ["heuristic", "scalar_rl"]


@pytest.fixture(scope="module")
def grid_config() -> ExperimentConfig:
    return ExperimentConfig(
        nodes=32, bb_units=16, n_jobs=15, window_size=5, seed=3
    )


@pytest.fixture(scope="module")
def serial_exact(grid_config):
    tasks = grid_tasks(METHODS, ["S1"], grid_config, n_seeds=2)
    results = ExperimentRunner(n_workers=1).run(tasks)
    return _exact(results)


def _tasks(grid_config):
    return grid_tasks(METHODS, ["S1"], grid_config, n_seeds=2)


def _exact(results):
    return [(r.key, r.seed, {w: m.full_dict() for w, m in r.metrics.items()})
            for r in results]


class TestQueueDispatchIdentity:
    def test_two_workers_bit_identical_to_serial(
        self, grid_config, serial_exact, tmp_path
    ):
        tasks = _tasks(grid_config)
        results = dispatch_tasks(
            tmp_path / "q", tasks, n_workers=2, lease_ttl=10.0
        )
        ordered = [results[t.key()] for t in tasks]
        assert _exact(ordered) == serial_exact
        # Provenance: every published cell names its executing worker.
        assert all(r.worker_id for r in ordered)
        assert all(r.hostname for r in ordered)

    def test_runner_queue_mode_matches_pool_journal(
        self, grid_config, serial_exact, tmp_path
    ):
        """dispatch='queue' feeds the same cache/checkpoint layers."""
        tasks = _tasks(grid_config)
        runner = ExperimentRunner(
            n_workers=2,
            dispatch="queue",
            queue_dir=tmp_path / "q",
            lease_ttl=10.0,
            cache_dir=tmp_path / "cache",
            checkpoint_path=tmp_path / "ckpt.jsonl",
        )
        live = runner.run(tasks)
        assert _exact(live) == serial_exact
        assert all(r.source == "run" for r in live)
        # Checkpoint and cache recall both work afterwards, unchanged.
        from_ckpt = ExperimentRunner(
            n_workers=1, checkpoint_path=tmp_path / "ckpt.jsonl"
        ).run(tasks)
        assert all(r.source == "checkpoint" for r in from_ckpt)
        assert _exact(from_ckpt) == serial_exact

    def test_redispatch_resumes_half_finished_queue(
        self, grid_config, serial_exact, tmp_path
    ):
        tasks = _tasks(grid_config)
        queue = WorkQueue(tmp_path / "q", lease_ttl=10.0)
        queue.write_meta(batch_episodes=1)
        queue.enqueue(tasks)
        QueueWorker(queue, worker_id="early", max_cells=2).run()
        assert queue.status().done == 2
        results = dispatch_tasks(
            tmp_path / "q", tasks, n_workers=1, lease_ttl=10.0
        )
        assert _exact([results[t.key()] for t in tasks]) == serial_exact


class TestCrashRecovery:
    def test_sigkilled_worker_cells_reissue_bit_identically(
        self, grid_config, serial_exact, tmp_path
    ):
        """One worker SIGKILLs itself between execute and publish; its
        lease expires, the cell re-issues, and nothing drifts."""
        tasks = _tasks(grid_config)
        results = dispatch_tasks(
            tmp_path / "q",
            tasks,
            n_workers=2,
            lease_ttl=1.5,
            worker_faults=[FaultPlan(kill_before_publish=1), None],
        )
        assert _exact([results[t.key()] for t in tasks]) == serial_exact
        # The dead worker published nothing for the killed cell — the
        # survivor (or coordinator) did.
        queue = WorkQueue(tmp_path / "q", create=False)
        assert len(queue.merged_results()) == len(tasks)

    def test_all_workers_dead_coordinator_drains_inline(
        self, grid_config, serial_exact, tmp_path
    ):
        """Liveness: every local worker dies on its first claim, and the
        grid still terminates with bit-identical results."""
        tasks = _tasks(grid_config)
        results = dispatch_tasks(
            tmp_path / "q",
            tasks,
            n_workers=2,
            lease_ttl=1.0,
            worker_faults=[
                FaultPlan(kill_after_claims=1),
                FaultPlan(kill_after_claims=1),
            ],
        )
        assert _exact([results[t.key()] for t in tasks]) == serial_exact
        # The coordinator's inline worker executed the remainder.
        queue = WorkQueue(tmp_path / "q", create=False)
        workers = {w["worker_id"] for w in queue.workers()}
        assert any(w.startswith("coord-") for w in workers)

    def test_heartbeat_loss_makes_a_straggler_not_a_drift(
        self, grid_config, serial_exact, tmp_path
    ):
        """A worker that stops heartbeating loses its lease; the cell
        re-issues and the duplicate publish merges away by key."""
        tasks = _tasks(grid_config)
        results = dispatch_tasks(
            tmp_path / "q",
            tasks,
            n_workers=2,
            lease_ttl=1.0,
            worker_faults=[
                FaultPlan(drop_heartbeats_after=1, delay_publish_s=2.5),
                None,
            ],
        )
        assert _exact([results[t.key()] for t in tasks]) == serial_exact


class TestElasticJoin:
    def test_late_worker_joins_a_running_grid(
        self, grid_config, serial_exact, tmp_path
    ):
        """An external `repro work`-style worker started mid-grid claims
        cells alongside the coordinator's own workers."""
        tasks = _tasks(grid_config)
        queue_dir = tmp_path / "q"
        queue = WorkQueue(queue_dir, lease_ttl=10.0)
        queue.write_meta(batch_episodes=1)
        queue.enqueue(tasks)

        context = multiprocessing.get_context("fork")
        joiner = context.Process(
            target=_external_worker, args=(str(queue_dir),), daemon=False
        )
        joiner.start()
        try:
            results = dispatch_tasks(
                queue_dir, tasks, n_workers=1, lease_ttl=10.0
            )
        finally:
            joiner.join(timeout=30.0)
            if joiner.is_alive():
                joiner.terminate()
        assert _exact([results[t.key()] for t in tasks]) == serial_exact

    def test_worker_leaves_without_losing_work(self, grid_config, tmp_path):
        """max_cells models a polite leave: finish the cell, exit; the
        remaining cells stay claimable."""
        tasks = _tasks(grid_config)
        queue = WorkQueue(tmp_path / "q", lease_ttl=10.0)
        queue.write_meta(batch_episodes=1)
        queue.enqueue(tasks)
        QueueWorker(queue, worker_id="leaver", max_cells=1).run()
        status = queue.status()
        assert status.done == 1
        assert status.leased_live == 0  # no lease left behind
        assert status.unclaimed == len(tasks) - 1


def _external_worker(queue_dir: str) -> None:
    # Late join: wait a beat so the coordinator's worker is already
    # claiming, then drain whatever is left.
    time.sleep(0.5)
    QueueWorker(
        WorkQueue(queue_dir, create=False), worker_id="elastic-joiner"
    ).run()
