"""Telemetry is "how", never "what": enabling it changes no result.

The contract every instrumented layer (scheduler loop, simulator,
runner, queue workers) must honor — an enabled session may time, count
and log, but it consumes no RNG and touches no simulation state, so
metrics and decision streams are bit-identical with telemetry on or
off. These tests run the same grid both ways and compare exactly,
then check the telemetry artifacts themselves are complete enough for
``repro trace export``.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.exp import ExperimentRunner, grid_tasks
from repro.experiments.harness import ExperimentConfig
from repro.obs.events import read_events
from repro.obs.spans import export_chrome_trace, load_spans
from repro.sched.fcfs import FCFSScheduler
from repro.sim.simulator import Simulator

METHODS = ["heuristic", "optimization", "scalar_rl"]


@pytest.fixture(autouse=True)
def telemetry_teardown():
    """Never leak an enabled session into the rest of the suite."""
    yield
    if obs.enabled():
        obs.disable()


@pytest.fixture(scope="module")
def grid_config() -> ExperimentConfig:
    return ExperimentConfig(nodes=32, bb_units=16, n_jobs=25, window_size=5, seed=41)


def _exact(results):
    return [(r.key, r.seed, {w: m.full_dict() for w, m in r.metrics.items()})
            for r in results]


class TestBitIdentity:
    def test_grid_identical_with_telemetry_enabled(self, grid_config, tmp_path):
        tasks = grid_tasks(METHODS, ["S1", "S3"], grid_config, n_seeds=2)
        plain = ExperimentRunner(n_workers=1).run(tasks)
        obs.enable(tmp_path / "telemetry", sample_decisions=True)
        try:
            instrumented = ExperimentRunner(n_workers=1).run(tasks)
        finally:
            obs.disable()
        assert _exact(instrumented) == _exact(plain)

    def test_episode_decision_stream_identical(self, mini_system, theta_trace):
        def starts():
            sim = Simulator(mini_system, FCFSScheduler(), record_timeline=False)
            result = sim.run(theta_trace)
            return [(j.job_id, j.start_time) for j in result.jobs]

        plain = starts()
        obs.enable(sample_decisions=True, decision_sample_every=1)  # time every one
        try:
            instrumented = starts()
        finally:
            obs.disable()
        assert instrumented == plain

    def test_queue_dispatch_identical_with_telemetry(self, grid_config, tmp_path):
        tasks = grid_tasks(["heuristic"], ["S1"], grid_config, n_seeds=2)
        plain = ExperimentRunner(n_workers=1).run(tasks)
        obs.enable(tmp_path / "telemetry")
        try:
            queued = ExperimentRunner(
                n_workers=2,
                dispatch="queue",
                queue_dir=tmp_path / "queue",
                lease_ttl=20.0,
            ).run(tasks)
        finally:
            obs.disable()
        assert _exact(queued) == _exact(plain)
        # The coordinator rolled the workers' snapshots up beside its own.
        aggregate = json.loads((tmp_path / "telemetry" / "metrics-queue.json").read_text())
        assert aggregate["counters"]["queue.cells_executed"] == 2
        assert aggregate["merged_from"] >= 1


class TestArtifacts:
    def test_run_writes_exportable_telemetry(self, grid_config, tmp_path):
        telemetry = tmp_path / "telemetry"
        tasks = grid_tasks(["heuristic", "optimization"], ["S1"], grid_config,
                           n_seeds=1)
        session = obs.enable(telemetry, sample_decisions=True)
        try:
            ExperimentRunner(n_workers=1).run(tasks)
            sampled = session.metrics.counter("sched.decisions_sampled").value
        finally:
            obs.disable()

        spans = load_spans(telemetry)
        names = {s["name"] for s in spans}
        assert {"run", "cell", "episode"} <= names
        events = read_events(telemetry)
        kinds = {e["event"] for e in events}
        assert {"run_start", "cell_done", "run_done"} <= kinds
        done = [e for e in events if e["event"] == "cell_done"]
        assert len(done) == 2 and all("key" in e for e in done)

        metrics_files = list(telemetry.glob("metrics-*.json"))
        assert metrics_files
        merged = obs.merge_snapshots(
            json.loads(p.read_text()) for p in metrics_files
        )
        assert merged["counters"]["cells.executed"] == 2
        assert merged["counters"]["sched.decisions_sampled"] == sampled

        out = export_chrome_trace(telemetry)
        doc = json.loads(out.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "i" in phases
        assert any(e["name"] == "cell" for e in doc["traceEvents"])
