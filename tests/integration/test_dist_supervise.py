"""Integration tests for worker supervision (repro.dist.supervise):
crash-respawn convergence, the crash-loop circuit breaker, strike
accounting, and the elastic worker's run-complete exit."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.dist import (
    FaultPlan,
    QueueWorker,
    WorkQueue,
    WorkerSupervisor,
    dispatch_tasks,
    ensure_enqueued,
)
from repro.exp import ExperimentRunner, grid_tasks
from repro.experiments.harness import ExperimentConfig

METHODS = ["heuristic", "scalar_rl"]


@pytest.fixture(scope="module")
def grid_config() -> ExperimentConfig:
    return ExperimentConfig(
        nodes=32, bb_units=16, n_jobs=15, window_size=5, seed=3
    )


@pytest.fixture(scope="module")
def serial_exact(grid_config):
    tasks = grid_tasks(METHODS, ["S1"], grid_config, n_seeds=2)
    results = ExperimentRunner(n_workers=1).run(tasks)
    return _exact(results)


def _tasks(grid_config):
    return grid_tasks(METHODS, ["S1"], grid_config, n_seeds=2)


def _exact(results):
    return [(r.key, r.seed, {w: m.full_dict() for w, m in r.metrics.items()})
            for r in results]


class TestWorkerSupervisor:
    def test_crash_respawn_converges_bit_identically(
        self, grid_config, serial_exact, tmp_path
    ):
        """Incarnation 1 SIGKILLs itself holding a lease; the respawn
        (fresh worker id) drains the queue and the merge is exact."""
        tasks = _tasks(grid_config)
        queue = WorkQueue(tmp_path / "q", lease_ttl=10.0)
        queue.write_meta(batch_episodes=1)
        queue.enqueue(tasks)
        supervisor = WorkerSupervisor(
            queue,
            n_workers=1,
            backoff_base_s=0.05,
            worker_poll_interval=0.02,
            spawn_faults=[[FaultPlan(kill_after_claims=1), None]],
        )
        report = supervisor.run()
        assert report.exit_reason == "drained"
        assert report.crashes == 1
        assert report.spawned == 2  # the respawn happened
        # The crash struck the held cell: one failure attempt recorded,
        # lease force-released for immediate re-issue.
        assert report.strikes == 1
        assert sum(queue.failure_count(k) for k in queue.task_keys()) == 1
        merged = queue.merged_results()
        assert _exact([merged[t.key()] for t in tasks]) == serial_exact
        assert queue.status().pending == 0

    def test_crash_loop_opens_circuit_breaker(self, grid_config, tmp_path):
        """A worker that dies instantly every incarnation must open the
        breaker after max_crashes, not burn the grid's attempt budget."""
        tasks = _tasks(grid_config)
        queue = WorkQueue(tmp_path / "q", lease_ttl=10.0)
        queue.write_meta(batch_episodes=1)
        queue.enqueue(tasks)
        crash_every_time = [FaultPlan(kill_after_claims=1)] * 5
        supervisor = WorkerSupervisor(
            queue,
            n_workers=1,
            backoff_base_s=0.02,
            backoff_max_s=0.1,
            max_crashes=2,
            worker_poll_interval=0.02,
            spawn_faults=[crash_every_time],
        )
        report = supervisor.run()
        assert report.exit_reason == "circuit_open"
        assert report.circuit_open == [0]
        assert report.crashes == 2  # stopped at the breaker, not at 5
        assert report.spawned == 2
        # Each crash fed the poison-pill accounting.
        assert report.strikes == 2
        assert queue.status().pending == len(tasks)  # work left for others

    def test_empty_queue_drains_immediately(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        supervisor = WorkerSupervisor(queue, n_workers=2)
        report = supervisor.run()
        assert report.exit_reason == "drained"
        assert report.spawned == 0  # never spawned into a drained queue

    def test_dispatch_with_supervision_is_bit_identical(
        self, grid_config, serial_exact, tmp_path
    ):
        """The coordinator path: dispatch_tasks(supervise=True) respawns
        a SIGKILLed worker instead of leaning on the inline fallback,
        and the merged grid is exact."""
        tasks = _tasks(grid_config)
        results = dispatch_tasks(
            tmp_path / "q",
            tasks,
            n_workers=2,
            lease_ttl=1.5,
            supervise=True,
            worker_faults=[FaultPlan(kill_after_claims=1), None],
        )
        assert _exact([results[t.key()] for t in tasks]) == serial_exact
        queue = WorkQueue(tmp_path / "q", create=False)
        assert queue.status().pending == 0
        # The run manifest completed (satellite: elastic workers key
        # their exit off this).
        manifest = queue.read_manifest()
        assert manifest is not None and manifest.complete


class TestElasticWorkerExit:
    def test_wait_worker_exits_on_complete_manifest(
        self, grid_config, tmp_path
    ):
        """--wait workers exit with a distinct status once the run
        manifest says complete, instead of polling forever."""
        tasks = _tasks(grid_config)
        queue = WorkQueue(tmp_path / "q", lease_ttl=10.0)
        queue.write_meta(batch_episodes=1)
        ensure_enqueued(queue, tasks)
        drain = QueueWorker(queue, worker_id="drain", poll_interval=0.01)
        assert drain.run().exit_reason == "drained"
        manifest = queue.read_manifest()
        queue.write_manifest(replace(manifest, state="complete"))
        elastic = QueueWorker(
            queue, worker_id="elastic", poll_interval=0.01,
            wait_for_work=True,
        )
        report = elastic.run()
        assert report.exit_reason == "run_complete"
        assert report.executed == []

    def test_wait_worker_drains_before_honoring_complete(
        self, grid_config, serial_exact, tmp_path
    ):
        """A complete manifest never truncates real work: cells still
        pending are executed before the exit check can fire."""
        tasks = _tasks(grid_config)
        queue = WorkQueue(tmp_path / "q", lease_ttl=10.0)
        queue.write_meta(batch_episodes=1)
        manifest = ensure_enqueued(queue, tasks)
        # Adversarial: manifest flipped complete while cells are pending.
        queue.write_manifest(replace(manifest, state="complete"))
        elastic = QueueWorker(
            queue, worker_id="eager", poll_interval=0.01,
            wait_for_work=True,
        )
        report = elastic.run()
        assert report.exit_reason == "run_complete"
        assert len(report.executed) == len(tasks)
        merged = queue.merged_results()
        assert _exact([merged[t.key()] for t in tasks]) == serial_exact
