"""Determinism regression: the parallel engine never changes a metric.

The engine's core guarantee — serial and parallel execution of the same
grid produce bit-identical :class:`MetricReport` values — is what lets
every later scaling PR swap execution strategies without a result audit.
These tests lock it down with exact (``==``, not approximate) float
comparisons, across worker counts, task orderings, and the cache/
checkpoint recall paths.
"""

from __future__ import annotations

import pytest

from repro.exp import ExperimentRunner, grid_tasks, pivot_results
from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.sched.ga import NSGA2Config

METHODS = ["heuristic", "optimization", "scalar_rl"]


@pytest.fixture(scope="module")
def grid_config() -> ExperimentConfig:
    return ExperimentConfig(
        nodes=32,
        bb_units=16,
        n_jobs=30,
        window_size=5,
        seed=97,
        curriculum_sets=(1, 1, 1),
        jobs_per_trainset=15,
        ga_config=NSGA2Config(population=6, generations=2),
    )


def _exact(results):
    """Fully-resolved float values for exact comparison."""
    return [(r.key, r.seed, {w: m.full_dict() for w, m in r.metrics.items()})
            for r in results]


class TestSerialParallelIdentity:
    def test_grid_identical_across_worker_counts(self, grid_config):
        tasks = grid_tasks(METHODS, ["S1", "S4"], grid_config, n_seeds=2)
        serial = ExperimentRunner(n_workers=1).run(tasks)
        for n_workers in (2, 4):
            parallel = ExperimentRunner(n_workers=n_workers).run(tasks)
            assert _exact(parallel) == _exact(serial)

    def test_task_order_is_irrelevant(self, grid_config):
        tasks = grid_tasks(METHODS, ["S1"], grid_config, n_seeds=2)
        forward = ExperimentRunner(n_workers=2).run(tasks)
        backward = ExperimentRunner(n_workers=2).run(list(reversed(tasks)))
        assert _exact(backward) == _exact(list(reversed(forward)))

    def test_run_comparison_identical_serial_vs_parallel(self, grid_config):
        serial = run_comparison(["S1", "S3"], METHODS, grid_config, train=False)
        parallel = run_comparison(
            ["S1", "S3"], METHODS, grid_config, train=False, n_workers=3
        )
        assert {
            w: {m: r.full_dict() for m, r in per.items()} for w, per in serial.items()
        } == {
            w: {m: r.full_dict() for m, r in per.items()} for w, per in parallel.items()
        }

    @pytest.mark.slow
    def test_trained_comparison_identical_serial_vs_parallel(self, grid_config):
        """Full-grid variant including curriculum training (slow tier)."""
        serial = run_comparison(["S2"], ["mrsch", "scalar_rl"], grid_config, train=True)
        parallel = run_comparison(
            ["S2"], ["mrsch", "scalar_rl"], grid_config, train=True, n_workers=2
        )
        for method in ("mrsch", "scalar_rl"):
            assert (
                serial["S2"][method].full_dict() == parallel["S2"][method].full_dict()
            )


class TestRecallPathsIdentity:
    def test_cache_and_checkpoint_return_identical_metrics(self, grid_config, tmp_path):
        tasks = grid_tasks(METHODS, ["S1"], grid_config, n_seeds=1)
        live = ExperimentRunner(
            n_workers=1,
            cache_dir=tmp_path / "cache",
            checkpoint_path=tmp_path / "ckpt.jsonl",
        ).run(tasks)
        assert all(r.source == "run" for r in live)

        from_ckpt = ExperimentRunner(
            n_workers=1, checkpoint_path=tmp_path / "ckpt.jsonl"
        ).run(tasks)
        assert all(r.source == "checkpoint" for r in from_ckpt)

        from_cache = ExperimentRunner(n_workers=2, cache_dir=tmp_path / "cache").run(
            tasks
        )
        assert all(r.source == "cache" for r in from_cache)

        assert _exact(live) == _exact(from_ckpt) == _exact(from_cache)

    def test_resume_after_interruption(self, grid_config, tmp_path):
        """A truncated checkpoint journal resumes to identical results."""
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = grid_tasks(METHODS, ["S1"], grid_config, n_seeds=1)
        full = ExperimentRunner(n_workers=1, checkpoint_path=ckpt).run(tasks)

        lines = ckpt.read_text().strip().split("\n")
        assert len(lines) == len(tasks)
        # Simulate dying mid-grid, the final line torn mid-write.
        ckpt.write_text("\n".join(lines[:1]) + '\n{"key": "torn')
        resumed = ExperimentRunner(n_workers=1, checkpoint_path=ckpt).run(tasks)
        assert [r.source for r in resumed] == ["checkpoint", "run", "run"]
        assert _exact(resumed) == _exact(full)
        # The resume repaired the torn tail: the journal is fully valid
        # again and a third run restores every cell.
        third = ExperimentRunner(n_workers=1, checkpoint_path=ckpt).run(tasks)
        assert [r.source for r in third] == ["checkpoint"] * len(tasks)

    def test_cache_hits_are_journaled_and_checkpoints_backfill_cache(
        self, grid_config, tmp_path
    ):
        """The two recall layers stay symmetric after mixed-source runs."""
        tasks = grid_tasks(METHODS, ["S1"], grid_config, n_seeds=1)
        ExperimentRunner(n_workers=1, cache_dir=tmp_path / "cache").run(tasks)

        # Cache-hit cells must still be journaled…
        mixed = ExperimentRunner(
            n_workers=1,
            cache_dir=tmp_path / "cache",
            checkpoint_path=tmp_path / "ckpt.jsonl",
        ).run(tasks)
        assert all(r.source == "cache" for r in mixed)
        journal_only = ExperimentRunner(
            n_workers=1, checkpoint_path=tmp_path / "ckpt.jsonl"
        ).run(tasks)
        assert all(r.source == "checkpoint" for r in journal_only)

        # …and checkpoint-restored cells must backfill a fresh cache.
        ExperimentRunner(
            n_workers=1,
            cache_dir=tmp_path / "cache2",
            checkpoint_path=tmp_path / "ckpt.jsonl",
        ).run(tasks)
        cache_only = ExperimentRunner(n_workers=1, cache_dir=tmp_path / "cache2").run(
            tasks
        )
        assert all(r.source == "cache" for r in cache_only)
        assert _exact(cache_only) == _exact(mixed)


class TestLabelRecall:
    def test_recalled_results_are_restamped_with_the_requesting_label(
        self, grid_config, tmp_path
    ):
        from dataclasses import replace

        tasks = grid_tasks(["heuristic"], ["S1"], grid_config)
        runner = ExperimentRunner(n_workers=1, cache_dir=tmp_path / "cache")
        first = runner.run(tasks)[0]
        assert first.display_name == "heuristic"

        relabelled = [replace(tasks[0], label="baseline")]
        second = runner.run(relabelled)[0]
        assert second.source == "cache"  # label change did not bust the key
        assert second.display_name == "baseline"
        assert second.metrics["S1"].full_dict() == first.metrics["S1"].full_dict()


class TestScenarioCompilation:
    """The declarative layer (PR 2) preserves the engine's guarantees:
    a scenario-compiled grid reproduces harness metrics bit-identically,
    and plugin schedulers run with zero edits to core modules."""

    def test_scenario_grid_reproduces_harness_metrics_bit_identically(
        self, grid_config
    ):
        """Compared against grid_tasks + the engine *directly* — not the
        run_comparison shim, which now shares the scenario code path —
        so a compile regression cannot cancel out of both sides."""
        from repro.api import Scenario, run_scenario

        engine_results = ExperimentRunner(n_workers=1).run(
            grid_tasks(METHODS, ["S1", "S3"], grid_config)
        )
        engine_reports = pivot_results(engine_results)
        scenario = Scenario(
            methods=tuple(METHODS), workloads=("S1", "S3"), train=False
        )
        result = run_scenario(scenario, config=grid_config, n_workers=2)
        assert {
            w: {m: r.full_dict() for m, r in per.items()}
            for w, per in result.reports.items()
        } == {
            w: {m: engine_reports[w][m].full_dict() for m in METHODS}
            for w in ("S1", "S3")
        }
        # Same cells → same config hashes → the result cache keys match.
        assert [t.key() for t in result.tasks] == [r.key for r in engine_results]

    def test_scenario_file_round_trip_is_bit_identical(self, grid_config, tmp_path):
        """Loading the same scenario from disk twice (and from a dict
        with reordered keys) produces identical metrics and cache keys."""
        import json

        from repro.api import Scenario, run_scenario

        data = {
            "name": "round-trip",
            "methods": list(METHODS),
            "workloads": ["S1"],
            "system": {"name": "mini_theta", "nodes": 32, "bb_units": 16},
            "seed": 97,
            "train": False,
            "config": {
                "n_jobs": 30,
                "window_size": 5,
                "curriculum_sets": [1, 1, 1],
                "jobs_per_trainset": 15,
                "ga": {"population": 6, "generations": 2},
            },
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data))
        from_file = run_scenario(str(path))
        from_dict = run_scenario(dict(reversed(list(data.items()))))
        assert _exact(from_file.results) == _exact(from_dict.results)
        assert (
            Scenario.from_file(path).config_hash()
            == Scenario.from_dict(data).config_hash()
        )

    def test_plugin_scheduler_runs_through_run_scenario(self, grid_config):
        """Registering a toy scheduler via decorator requires zero edits
        to core modules: it is immediately addressable from a scenario."""
        from repro.api import SCHEDULERS, register_scheduler, run_scenario
        from repro.sched.base import WindowPolicyScheduler

        instantiated = []

        @register_scheduler("toy_lifo", description="newest-job-first toy policy")
        class ToyLIFOScheduler(WindowPolicyScheduler):
            name = "toy_lifo"

            def __init__(self, window_size=10, backfill=True):
                super().__init__(window_size=window_size, backfill=backfill)
                instantiated.append(self)

            def rank(self, window, ctx):
                return list(reversed(window))

        try:
            result = run_scenario(
                {"methods": ["toy_lifo", "heuristic"], "workloads": ["S1"],
                 "train": False},
                config=grid_config,
            )
            assert len(instantiated) == 1  # the toy policy really executed
            toy = result.reports["S1"]["toy_lifo"].full_dict()
            fcfs = result.reports["S1"]["heuristic"].full_dict()
            assert toy["n_jobs"] == fcfs["n_jobs"] == grid_config.n_jobs
        finally:
            SCHEDULERS.unregister("toy_lifo")


class TestSeedSpawning:
    def test_grid_seeds_are_independent_and_stable(self, grid_config):
        tasks_a = grid_tasks(METHODS, ["S1"], grid_config, n_seeds=3)
        tasks_b = grid_tasks(METHODS, ["S1"], grid_config, n_seeds=3)
        assert [t.seed for t in tasks_a] == [t.seed for t in tasks_b]
        assert len({t.seed for t in tasks_a}) == 3

    def test_different_seeds_give_different_metrics(self, grid_config):
        results = ExperimentRunner(n_workers=1).run(
            grid_tasks(["heuristic"], ["S1"], grid_config, n_seeds=2)
        )
        a, b = (r.metrics["S1"] for r in results)
        assert a.full_dict() != b.full_dict()

    def test_pivot_separates_seeds(self, grid_config):
        results = ExperimentRunner(n_workers=1).run(
            grid_tasks(["heuristic"], ["S1"], grid_config, n_seeds=2)
        )
        pivoted = pivot_results(results)
        assert len(pivoted["S1"]) == 2
        assert all("@" in label for label in pivoted["S1"])
