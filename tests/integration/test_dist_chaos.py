"""The chaos soak: a seeded storm of storage faults + real SIGKILLs.

PR 7's fault harness pinned the *process-level* protocol (crashes,
heartbeat loss) to zero metric drift; this soak extends the contract to
the *storage* layer. A reproducible storm — scripted ``EIO``/``ESTALE``
retry flakes, torn journal appends, an ``ENOSPC`` brown-out, plus a
worker SIGKILLed mid-grid — must end with:

* every cell published (``pending == 0``), metrics **bit-identical** to
  a serial run (exact ``==`` on floats);
* every injected corruption **accounted for** in ``quarantine/`` with
  provenance — never silently dropped by the merge;
* a clean (fault-free) run quarantining exactly nothing.

The storm is generated from a fixed seed so the failure schedule is
randomized in shape but identical on every run.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import socket

import pytest

from repro.dist import (
    COORDINATOR_KEY,
    FaultInjector,
    FaultPlan,
    QueueWorker,
    WorkQueue,
    audit_queue,
    dispatch_tasks,
)
from repro.exp import ExperimentRunner, grid_tasks
from repro.experiments.harness import ExperimentConfig

METHODS = ["heuristic", "scalar_rl"]
STORM_SEED = 0xC0FFEE


@pytest.fixture(scope="module")
def grid_config() -> ExperimentConfig:
    return ExperimentConfig(
        nodes=32, bb_units=16, n_jobs=15, window_size=5, seed=3
    )


@pytest.fixture(scope="module")
def serial_exact(grid_config):
    tasks = grid_tasks(METHODS, ["S1"], grid_config, n_seeds=2)
    results = ExperimentRunner(n_workers=1).run(tasks)
    return _exact(results)


def _tasks(grid_config):
    return grid_tasks(METHODS, ["S1"], grid_config, n_seeds=2)


def _exact(results):
    return [(r.key, r.seed, {w: m.full_dict() for w, m in r.metrics.items()})
            for r in results]


def storm_plan(rng: random.Random, *, torn_appends: int = 1) -> FaultPlan:
    """A reproducible storm of transient storage faults.

    Shapes vary with the seed (which op, which nth, which errno) but a
    given seed always yields the same plan — re-running the soak replays
    the identical failure schedule. Every entry is *recoverable*: the
    transient errnos retry through, and each torn append strands exactly
    one checksummable fragment for the quarantine ledger.
    """
    entries = []
    for _ in range(torn_appends):
        entries.append({
            "op": "append", "path": "results/*",
            "errno": rng.choice(["EIO", "ESTALE"]),
            "nth": 1, "count": 1, "torn": True,
        })
    for _ in range(rng.randint(2, 4)):
        entries.append({
            "op": rng.choice(["read", "write", "stat"]),
            "errno": rng.choice(["EIO", "ESTALE", "EAGAIN"]),
            "nth": rng.randint(1, 6),
            "count": rng.randint(1, 2),
        })
    return FaultPlan(io_faults=entries)


class TestChaosSoak:
    def test_storm_with_sigkill_is_bit_identical_and_accounted(
        self, grid_config, serial_exact, tmp_path
    ):
        """The headline soak: IO-fault storm on one worker, a real
        SIGKILL on the other, and the grid still converges exactly."""
        rng = random.Random(STORM_SEED)
        tasks = _tasks(grid_config)
        results = dispatch_tasks(
            tmp_path / "q",
            tasks,
            n_workers=2,
            lease_ttl=1.5,
            worker_faults=[
                # Worker 0: publishes one cell, then SIGKILLs itself
                # right before its second publish (lease left behind,
                # executed work lost, cell re-issues elsewhere).
                FaultPlan(kill_before_publish=2),
                # Worker 1: rides out the storage storm — torn first
                # append plus seeded transient flakes, all recoverable.
                storm_plan(rng),
            ],
        )
        # Eventual completion, bit-identical to the serial run.
        assert _exact([results[t.key()] for t in tasks]) == serial_exact
        queue = WorkQueue(tmp_path / "q", create=False)
        status = queue.status()
        assert status.pending == 0
        # Accounting: the torn append stranded a fragment; the merge
        # quarantined it (with provenance) instead of dropping it.
        records = queue.quarantined()
        assert len(records) >= 1
        assert all(
            record["origin"].startswith("journal-")
            and record["line_no"] >= 1
            and record["detected_by"]
            for record in records
        )
        assert status.quarantined == len(records)

    def test_storm_is_reproducible(self):
        """Same seed, same storm — the soak replays its exact schedule."""
        assert storm_plan(random.Random(STORM_SEED)) == storm_plan(
            random.Random(STORM_SEED)
        )
        assert storm_plan(random.Random(STORM_SEED)) != storm_plan(
            random.Random(STORM_SEED + 1)
        )

    def test_enospc_brownout_spools_and_recovers_exactly(
        self, grid_config, serial_exact, tmp_path
    ):
        """A count-bounded ENOSPC outage: the worker degrades (spools
        locally, keeps going), the volume 'recovers', the spool flushes,
        and the merged grid is still bit-identical."""
        tasks = _tasks(grid_config)
        queue = WorkQueue(tmp_path / "q", lease_ttl=10.0)
        queue.write_meta(batch_episodes=1)
        queue.enqueue(tasks)
        worker = QueueWorker(
            queue,
            worker_id="brownout",
            poll_interval=0.01,
            faults=FaultInjector(FaultPlan(io_faults=[
                {"op": "append", "path": "results/*", "errno": "ENOSPC",
                 "count": 2},
            ])),
            spool_dir=tmp_path / "spool",
        )
        worker.store._sleep = lambda _s: None  # instant backoff
        report = worker.run()
        assert report.spooled  # the outage really was hit
        merged = queue.merged_results()
        assert _exact(
            [merged[t.key()] for t in tasks]
        ) == serial_exact  # nothing lost, nothing drifted
        assert queue.status().pending == 0
        assert not (tmp_path / "spool" / "results.jsonl").exists()

    def test_clean_run_quarantines_nothing(
        self, grid_config, serial_exact, tmp_path
    ):
        """Zero false positives: a fault-free dispatch must not move a
        single record aside."""
        tasks = _tasks(grid_config)
        results = dispatch_tasks(
            tmp_path / "q", tasks, n_workers=2, lease_ttl=10.0
        )
        assert _exact([results[t.key()] for t in tasks]) == serial_exact
        queue = WorkQueue(tmp_path / "q", create=False)
        assert queue.quarantine_count() == 0
        assert queue.status().pending == 0


def _dispatch_in_child(queue_dir, config, plan_json):
    """Fork target: run a coordinator scripted to SIGKILL itself."""
    tasks = grid_tasks(METHODS, ["S1"], config, n_seeds=2)
    dispatch_tasks(
        queue_dir,
        tasks,
        n_workers=2,
        lease_ttl=1.5,
        coordinator_faults=FaultPlan.from_json(plan_json),
    )


class TestCoordinatorCrash:
    """SIGKILL the *coordinator* anywhere in the run lifecycle, then
    re-invoke the dispatch on the same queue dir: the resumed run must
    merge bit-identically to an uninterrupted serial run, and the queue
    must audit clean afterwards."""

    @pytest.mark.parametrize(
        "point,nth",
        [
            ("staged", 1),    # mid-enqueue: manifest staged, nothing published
            ("sealed", 1),    # mid-enqueue: sealed but batch never promoted
            ("dispatch", 1),  # mid-dispatch: workers live, poll loop dies
            ("merge", 1),     # post-dispatch: all cells done, merge never ran
        ],
    )
    def test_kill_and_resume_is_bit_identical(
        self, grid_config, serial_exact, tmp_path, point, nth
    ):
        tasks = _tasks(grid_config)
        plan = FaultPlan(kill_coordinator_at=point, kill_coordinator_nth=nth)
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(
            target=_dispatch_in_child,
            args=(str(tmp_path / "q"), grid_config, plan.to_json()),
        )
        proc.start()
        proc.join(timeout=120)
        assert proc.exitcode == -signal.SIGKILL  # the kill really landed
        queue = WorkQueue(tmp_path / "q", create=False)
        before = queue.read_manifest()
        assert before is not None  # every point is past the first write
        # Re-invoke on the same dir: the new coordinator detects the
        # dead leader (local-pid fast path), takes the run over, and
        # resumes from whatever the manifest pins.
        results = dispatch_tasks(
            tmp_path / "q",
            tasks,
            n_workers=2,
            lease_ttl=1.5,
            coordinator_faults=FaultPlan(),
        )
        assert _exact([results[t.key()] for t in tasks]) == serial_exact
        after = queue.read_manifest()
        assert after.run_id == before.run_id  # resumed, not restarted
        assert after.generation == before.generation
        assert after.complete
        status = queue.status()
        assert status.pending == 0
        assert status.quarantined == 0  # a clean kill corrupts nothing
        # The queue audits clean once repairable debris is swept.
        assert audit_queue(tmp_path / "q", repair=True).ok

    def test_attach_to_live_coordinator_returns_merge(
        self, grid_config, serial_exact, tmp_path
    ):
        """A second `repro run --queue` against a run whose leader lease
        is live (and local) must attach — poll, never dispatch — and
        hand back the leader's merge once the manifest completes."""
        tasks = _tasks(grid_config)
        first = dispatch_tasks(
            tmp_path / "q", tasks, n_workers=2, lease_ttl=10.0
        )
        assert _exact([first[t.key()] for t in tasks]) == serial_exact
        queue = WorkQueue(tmp_path / "q", create=False, lease_ttl=10.0)
        # Impersonate a live local coordinator (our own pid is alive).
        host = socket.gethostname().split(".")[0]
        owner = f"coord-{host}-{os.getpid()}"
        assert queue.leases.try_claim(COORDINATOR_KEY, owner)
        results = dispatch_tasks(
            tmp_path / "q",
            tasks,
            n_workers=2,
            lease_ttl=10.0,
            coordinator_faults=FaultPlan(),
        )
        assert _exact([results[t.key()] for t in tasks]) == serial_exact
        # Attach mode never stole the leader lease.
        lease = queue.leases.read(COORDINATOR_KEY)
        assert lease is not None and lease.owner == owner
