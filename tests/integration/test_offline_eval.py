"""End-to-end tests for the decision-trace + offline-evaluation subsystem.

Covers the acceptance contract of the subsystem:

* recording is passive — a recorded replay yields bit-identical metrics;
* **self-replay fidelity** — replaying a trace through the DFP policy
  that produced it reproduces the logged action choices exactly, with
  scores matching within the documented ~1e-15 re-association tolerance
  of the batched-vs-folded scoring paths;
* scenario plumbing — the ``evaluation`` block records traces through
  the runner (cache/checkpoint participation included) and attaches the
  offline comparison to the result;
* the ``repro eval`` CLI compares ≥ 2 policies on a shared trace set.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.cli import main
from repro.api.facade import run_scenario
from repro.eval.evaluator import evaluate_traces, policy_choices
from repro.eval.policies import DFPReplayPolicy
from repro.eval.recorder import DecisionTraceRecorder
from repro.eval.trace import TraceStore
from repro.experiments.harness import ExperimentConfig, make_method, prepare_base_trace
from repro.sim.simulator import Simulator
from repro.workload.suites import build_workload


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(nodes=32, bb_units=16, n_jobs=40, window_size=5, seed=11)


@pytest.fixture(scope="module")
def recorded_mrsch(tiny_config):
    """One untrained-mrsch replay with its trace and scheduler."""
    system = tiny_config.system()
    base = prepare_base_trace(tiny_config)
    jobs = build_workload("S3", base, system, seed=tiny_config.seed)
    sched = make_method("mrsch", system, tiny_config)
    recorder = DecisionTraceRecorder()
    recorder.start(method="mrsch", workload="S3", seed=11, task_key="fidelity")
    sched.decision_recorder = recorder
    result = Simulator(system, sched).run(jobs)
    return result, recorder.finish(), sched, (system, jobs)


class TestRecorder:
    def test_recording_is_passive(self, tiny_config, recorded_mrsch):
        """Attached recorder must not change a single metric value."""
        result, _, _, (system, jobs) = recorded_mrsch
        bare = Simulator(
            system, make_method("mrsch", system, tiny_config)
        ).run(jobs)
        assert bare.metrics.full_dict() == result.metrics.full_dict()

    def test_trace_contents(self, recorded_mrsch, tiny_config):
        _, trace, _, _ = recorded_mrsch
        assert trace.n_decisions > 0
        assert trace.window_size == tiny_config.window_size
        assert trace.meta["method"] == "mrsch"
        assert trace.meta["prior_weight"] == 2.0
        # Every decision's chosen slot is valid and carries a real job.
        rows = np.arange(trace.n_decisions)
        assert trace.masks[rows, trace.actions].all()
        assert (trace.job_ids[rows, trace.actions] >= 0).all()
        # Guided greedy decisions logged their live combined scores.
        assert np.isfinite(trace.scores[rows, trace.actions]).all()

    def test_exploration_steps_still_record_the_prior(self, tiny_config):
        """ε-greedy decisions skip the guided computation, but the trace
        must carry the prior that governs the policy's greedy rule —
        replay would otherwise score those rows with a zero prior."""
        system = tiny_config.system()
        base = prepare_base_trace(tiny_config)
        jobs = build_workload("S3", base, system, seed=tiny_config.seed)
        sched = make_method("mrsch", system, tiny_config)
        sched.training = True
        sched.agent.epsilon = 1.0  # force exploration on (almost) every step
        sched.start_episode()
        recorder = DecisionTraceRecorder()
        recorder.start(method="mrsch", workload="S3", seed=11, task_key="explore")
        sched.decision_recorder = recorder
        Simulator(system, sched).run(jobs)
        trace = recorder.finish()
        # Every decision row carries a non-trivial prior over its valid
        # slots (1.5 − demand for fitting jobs never rounds to zero),
        # and exploration steps expose no scores.
        rows = np.arange(trace.n_decisions)
        assert (trace.priors[rows, trace.actions] != 0.0).any()
        assert not (trace.priors[trace.masks] == 0.0).all()

    def test_generic_scheduler_records_canonical_features(self, tiny_config):
        system = tiny_config.system()
        base = prepare_base_trace(tiny_config)
        jobs = build_workload("S1", base, system, seed=tiny_config.seed)
        sched = make_method("heuristic", system, tiny_config)
        recorder = DecisionTraceRecorder()
        recorder.start(method="heuristic", workload="S1", seed=11, task_key="h")
        sched.decision_recorder = recorder
        Simulator(system, sched).run(jobs)
        trace = recorder.finish()
        assert trace.n_decisions > 0
        # Goals are Eq.-1 simplex points, priors zero, scores absent.
        np.testing.assert_allclose(trace.goals.sum(axis=1), 1.0)
        assert (trace.priors == 0).all()
        assert np.isnan(trace.scores).all()
        # FCFS never skips the head of the window.
        assert (trace.actions == 0).all()


class TestSelfReplayFidelity:
    def test_dfp_replay_reproduces_logged_choices_exactly(self, recorded_mrsch):
        _, trace, sched, _ = recorded_mrsch
        policy = DFPReplayPolicy.from_scheduler(sched)
        scores = policy(trace)
        np.testing.assert_array_equal(
            policy_choices(trace, scores), trace.actions
        )

    def test_dfp_replay_scores_within_reassociation_tolerance(self, recorded_mrsch):
        """Batched forward vs live folded scoring: ~1e-15 relative."""
        _, trace, sched, _ = recorded_mrsch
        scores = DFPReplayPolicy.from_scheduler(sched)(trace)
        logged = trace.scores
        finite = np.isfinite(logged) & trace.masks
        assert finite.any()
        np.testing.assert_allclose(
            scores[finite], logged[finite], rtol=0.0, atol=1e-9
        )

    def test_pure_dfp_path_also_replays(self, tiny_config):
        """prior_weight=0 (the paper's pure policy) round-trips too."""
        system = tiny_config.system()
        base = prepare_base_trace(tiny_config)
        jobs = build_workload("S2", base, system, seed=tiny_config.seed)
        sched = make_method("mrsch", system, tiny_config, prior_weight=0.0)
        recorder = DecisionTraceRecorder()
        recorder.start(method="mrsch", workload="S2", seed=11, task_key="pure")
        sched.decision_recorder = recorder
        Simulator(system, sched).run(jobs)
        trace = recorder.finish()
        assert trace.meta["prior_weight"] == 0.0
        policy = DFPReplayPolicy.from_scheduler(sched)
        np.testing.assert_array_equal(
            policy_choices(trace, policy(trace)), trace.actions
        )

    def test_checkpointed_agent_replays_identically(
        self, recorded_mrsch, tmp_path
    ):
        _, trace, sched, _ = recorded_mrsch
        path = str(tmp_path / "agent.npz")
        sched.save(path)
        policy = DFPReplayPolicy.from_checkpoint(path, trace)
        np.testing.assert_array_equal(
            policy_choices(trace, policy(trace)), trace.actions
        )

    def test_evaluator_scores_logged_policy_perfect(self, recorded_mrsch):
        """`repro eval`-style comparison on a real trace: the recorded
        policy (via its agent) and the logged one-hot agree 100%."""
        from repro.eval.policies import fcfs_policy, logged_policy

        _, trace, sched, _ = recorded_mrsch
        report = evaluate_traces(
            [trace],
            {
                "dfp": DFPReplayPolicy.from_scheduler(sched),
                "logged": logged_policy,
                "fcfs": fcfs_policy,
            },
            n_bootstrap=50,
        )
        assert report.agreement["dfp"] == 1.0
        assert report.agreement["logged"] == 1.0


class TestScenarioPlumbing:
    SCENARIO = {
        "name": "eval-wired",
        "methods": ["heuristic", "mrsch"],
        "workloads": ["S1"],
        "system": {"name": "mini_theta", "nodes": 32, "bb_units": 16},
        "seed": 3,
        "train": False,
        "config": {"n_jobs": 25, "window_size": 5},
        "evaluation": {"policies": ["fcfs", "shortest_job"], "bootstrap": 100},
    }

    def test_run_scenario_records_and_evaluates(self, tmp_path):
        result = run_scenario(self.SCENARIO, trace_dir=tmp_path / "traces")
        store = TraceStore(tmp_path / "traces")
        assert len(store) == 2  # one trace per (method, workload) cell
        task_keys = {t.key() for t in result.tasks}
        for r in result.results:
            assert r.trace_keys and all(store.has(k) for k in r.trace_keys)
            assert all(k.split("_")[0] in task_keys for k in r.trace_keys)
        assert result.evaluation is not None
        assert set(result.evaluation.agreement) == {"fcfs", "shortest_job"}
        assert result.evaluation.n_traces == 2
        assert "Agreement with logged actions" in result.summary()
        payload = result.to_json_dict()
        assert payload["trace_keys"] and "evaluation" in payload

    def test_traces_participate_in_result_cache(self, tmp_path):
        """A cached cell whose traces were deleted must re-execute."""
        kwargs = dict(
            trace_dir=tmp_path / "traces",
            cache_dir=tmp_path / "cache",
            checkpoint_path=None,
        )
        first = run_scenario(self.SCENARIO, **kwargs)
        assert all(r.source == "run" for r in first.results)

        second = run_scenario(self.SCENARIO, **kwargs)
        assert all(r.source == "cache" for r in second.results)
        assert second.reports == first.reports or all(
            second.report("S1", m).full_dict() == first.report("S1", m).full_dict()
            for m in ("heuristic", "mrsch")
        )

        # Deleting one trace invalidates exactly that cell's recall.
        store = TraceStore(tmp_path / "traces")
        victim = first.results[0].trace_keys[0]
        (store.trace_dir / f"{victim}.npz").unlink()
        third = run_scenario(self.SCENARIO, **kwargs)
        sources = {r.key: r.source for r in third.results}
        assert sources[first.results[0].key] == "run"
        assert sources[first.results[1].key] == "cache"
        assert store.has(victim)  # re-recorded

    def test_compact_flip_invalidates_cached_traces(self, tmp_path):
        """Changing trace fidelity must re-execute recalled cells so the
        store actually changes width (not silently keep old files)."""
        kwargs = dict(trace_dir=tmp_path / "traces", cache_dir=tmp_path / "cache",
                      checkpoint_path=None)
        first = run_scenario(self.SCENARIO, **kwargs)
        assert all(r.source == "run" for r in first.results)
        store = TraceStore(tmp_path / "traces")
        key = first.results[0].trace_keys[0]
        assert store.stored_compact(key) is False

        compact_scenario = dict(self.SCENARIO)
        compact_scenario["evaluation"] = {
            **self.SCENARIO["evaluation"], "compact_traces": True,
        }
        second = run_scenario(compact_scenario, **kwargs)
        assert all(r.source == "run" for r in second.results)  # re-executed
        assert store.stored_compact(key) is True  # narrowed on disk
        with np.load(store.trace_dir / f"{key}.npz", allow_pickle=False) as data:
            assert data["states"].dtype == np.float32
        # Same fidelity again -> normal cache recall.
        third = run_scenario(compact_scenario, **kwargs)
        assert all(r.source == "cache" for r in third.results)

    def test_capture_requires_trace_dir(self):
        scenario = dict(self.SCENARIO)
        with pytest.raises(ValueError, match="trace store location"):
            run_scenario(scenario)

    def test_explicit_runner_without_trace_store_fails_fast(self, tmp_path):
        from repro.exp import ExperimentRunner

        with pytest.raises(ValueError, match="explicit runner has no trace store"):
            run_scenario(self.SCENARIO, runner=ExperimentRunner())

        result = run_scenario(
            self.SCENARIO,
            runner=ExperimentRunner(trace_dir=tmp_path / "traces"),
        )
        assert result.evaluation is not None
        assert len(TraceStore(tmp_path / "traces")) == 2

    def test_untraced_scenarios_unaffected(self, tmp_path):
        scenario = {k: v for k, v in self.SCENARIO.items() if k != "evaluation"}
        result = run_scenario(scenario)
        assert result.evaluation is None
        assert result.trace_dir is None
        assert all(r.trace_keys == () for r in result.results)

    def test_trace_dir_without_evaluation_block_is_an_error(self, tmp_path):
        """Asking for traces on a scenario that records none must not
        silently succeed with an empty store."""
        scenario = {k: v for k, v in self.SCENARIO.items() if k != "evaluation"}
        with pytest.raises(ValueError, match="no 'evaluation' block"):
            run_scenario(scenario, trace_dir=tmp_path / "traces")

    def test_dfp_checkpoint_rejects_mixed_dimension_stores(self, tmp_path):
        from repro.api.facade import evaluate_traces as facade_eval

        trace_dir = tmp_path / "traces"
        run_scenario(self.SCENARIO, trace_dir=trace_dir)
        wide = dict(self.SCENARIO)
        wide["config"] = {"n_jobs": 25, "window_size": 6}
        run_scenario(wide, trace_dir=trace_dir)
        system = TraceStore(trace_dir)
        assert len(system) == 4

        cfg = ExperimentConfig(nodes=32, bb_units=16, n_jobs=25,
                               window_size=5, seed=3)
        sched = make_method("mrsch", cfg.system(), cfg)
        ckpt = str(tmp_path / "agent.npz")
        sched.save(ckpt)
        with pytest.raises(ValueError, match="mixes"):
            facade_eval(trace_dir, ["fcfs"], dfp_checkpoint=ckpt)
        # Restricting to a homogeneous subset works.
        keys = [k for k in system.keys()
                if system.get(*k.rsplit("_", 1)).window_size == 5]
        report = facade_eval(trace_dir, ["fcfs"], keys=keys, dfp_checkpoint=ckpt)
        assert "dfp" in report.agreement


class TestCli:
    def _record(self, tmp_path) -> str:
        scenario_path = tmp_path / "scenario.json"
        scenario_path.write_text(json.dumps(TestScenarioPlumbing.SCENARIO))
        trace_dir = tmp_path / "traces"
        assert main(
            ["run", str(scenario_path), "--trace-dir", str(trace_dir)]
        ) == 0
        return str(trace_dir)

    def test_eval_compares_policies_on_shared_traces(self, tmp_path, capsys):
        trace_dir = self._record(tmp_path)
        capsys.readouterr()
        code = main(
            ["eval", "--trace-dir", trace_dir,
             "--policies", "fcfs", "shortest_job", "prior",
             "--bootstrap", "50", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["agreement"]) == {"fcfs", "shortest_job", "prior"}
        assert payload["n_traces"] == 2
        assert payload["bootstrap"]["n_bootstrap"] == 50

    def test_eval_text_output(self, tmp_path, capsys):
        trace_dir = self._record(tmp_path)
        capsys.readouterr()
        assert main(["eval", "--trace-dir", trace_dir]) == 0
        out = capsys.readouterr().out
        assert "Agreement with logged actions" in out
        assert "Wins" in out

    def test_eval_list_policies_needs_no_store(self, capsys):
        assert main(["eval", "--list-policies"]) == 0
        out = capsys.readouterr().out
        assert "fcfs" in out and "shortest_job" in out

    def test_eval_without_trace_dir_is_an_error(self, capsys):
        assert main(["eval", "--policies", "fcfs", "prior"]) == 1
        assert "--trace-dir" in capsys.readouterr().err

    def test_eval_empty_store_is_an_error(self, tmp_path, capsys):
        assert main(["eval", "--trace-dir", str(tmp_path / "empty")]) == 1
        assert "no decision traces" in capsys.readouterr().err

    def test_eval_requires_two_policies(self, tmp_path, capsys):
        trace_dir = self._record(tmp_path)
        assert main(["eval", "--trace-dir", trace_dir, "--policies", "fcfs"]) == 1
        assert "at least two" in capsys.readouterr().err


class TestCompactSelfReplay:
    """Float32 trace compaction must preserve replay fidelity."""

    def test_compact_store_exact_action_self_replay(self, tmp_path, recorded_mrsch):
        _, trace, sched, _ = recorded_mrsch
        store = TraceStore(tmp_path / "compact", compact=True)
        key = store.put(trace)
        back = store.get(trace.meta["task_key"], trace.meta["workload"])
        assert back is not None and store.has(key)
        policy = DFPReplayPolicy.from_scheduler(sched)
        scores = policy(back)
        np.testing.assert_array_equal(
            policy_choices(back, scores), trace.actions
        )
        # Logged combined scores survive the narrowing within float32
        # precision of their magnitude.
        finite = np.isfinite(trace.scores) & trace.masks
        np.testing.assert_allclose(
            back.scores[finite], trace.scores[finite], rtol=1e-5, atol=1e-5
        )
