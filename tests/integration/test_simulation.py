"""Cross-module integration: every scheduler drives the simulator to
completion while respecting physical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import BURST_BUFFER, NODE, ResourceSpec, SystemConfig
from repro.sched.ga import NSGA2Config
from repro.sched.registry import make_scheduler
from repro.sim.simulator import Simulator
from repro.workload.suites import build_workload
from repro.workload.theta import ThetaTraceConfig, generate_theta_trace
from tests.conftest import make_job

METHODS = ["heuristic", "optimization", "scalar_rl", "mrsch"]


def capacity_never_exceeded(jobs, system):
    """Sweep the start/end timeline accumulating per-resource usage."""
    events = []
    for job in jobs:
        events.append((job.start_time, 1, job))
        events.append((job.end_time, -1, job))
    events.sort(key=lambda e: (e[0], e[1]))
    usage = {name: 0 for name in system.names}
    for _, sign, job in events:
        for name in system.names:
            usage[name] += sign * job.request(name)
            assert usage[name] <= system.capacity(name), (
                f"{name} over capacity at t={_}"
            )
            assert usage[name] >= 0


@pytest.fixture(scope="module")
def small_workload():
    system = SystemConfig.mini_theta(nodes=32, bb_units=16)
    base = generate_theta_trace(
        ThetaTraceConfig(total_nodes=32, n_jobs=60, mean_interarrival=400.0), seed=3
    )
    jobs = build_workload("S3", base, system, seed=3)
    return system, jobs


@pytest.mark.parametrize("method", METHODS)
class TestAllMethods:
    def _make(self, method, system):
        kwargs = {}
        if method == "optimization":
            kwargs["config"] = NSGA2Config(population=6, generations=2)
        return make_scheduler(method, system, window_size=5, seed=1, **kwargs)

    def test_all_jobs_complete(self, method, small_workload):
        system, jobs = small_workload
        result = Simulator(system, self._make(method, system)).run(jobs)
        assert result.metrics.n_jobs == len(jobs)
        assert all(j.finished for j in result.jobs)

    def test_capacity_invariant(self, method, small_workload):
        system, jobs = small_workload
        result = Simulator(system, self._make(method, system)).run(jobs)
        capacity_never_exceeded(result.jobs, system)

    def test_causality(self, method, small_workload):
        """start ≥ submit, end = start + runtime for every job."""
        system, jobs = small_workload
        result = Simulator(system, self._make(method, system)).run(jobs)
        for job in result.jobs:
            assert job.start_time >= job.submit_time - 1e-9
            assert job.end_time == pytest.approx(job.start_time + job.runtime)

    def test_input_jobs_untouched(self, method, small_workload):
        system, jobs = small_workload
        Simulator(system, self._make(method, system)).run(jobs)
        assert all(j.start_time is None for j in jobs)

    def test_rerun_is_deterministic(self, method, small_workload):
        system, jobs = small_workload
        sched = self._make(method, system)
        r1 = Simulator(system, sched).run(jobs)
        r2 = Simulator(system, sched).run(jobs)
        s1 = sorted((j.job_id, j.start_time) for j in r1.jobs)
        s2 = sorted((j.job_id, j.start_time) for j in r2.jobs)
        assert s1 == s2


class TestSimulatorEdgeCases:
    def test_empty_trace(self, tiny_system):
        sched = make_scheduler("heuristic", tiny_system)
        result = Simulator(tiny_system, sched).run([])
        assert result.metrics.n_jobs == 0
        assert result.makespan == 0.0

    def test_single_job(self, tiny_system):
        sched = make_scheduler("heuristic", tiny_system)
        job = make_job(job_id=1, submit=10.0, runtime=100.0, nodes=4)
        result = Simulator(tiny_system, sched).run([job])
        done = result.jobs[0]
        assert done.start_time == 10.0
        assert done.end_time == 110.0

    def test_oversized_job_rejected(self, tiny_system):
        sched = make_scheduler("heuristic", tiny_system)
        with pytest.raises(ValueError, match="capacity"):
            Simulator(tiny_system, sched).run([make_job(nodes=999)])

    def test_simultaneous_submissions(self, tiny_system):
        sched = make_scheduler("heuristic", tiny_system)
        jobs = [make_job(job_id=i, submit=0.0, runtime=50.0, nodes=4) for i in (1, 2, 3, 4)]
        result = Simulator(tiny_system, sched).run(jobs)
        assert all(j.start_time == 0.0 for j in result.jobs)

    def test_release_visible_to_same_instant_submit(self, tiny_system):
        """A job ending at t frees resources for a job submitted at t."""
        sched = make_scheduler("heuristic", tiny_system)
        first = make_job(job_id=1, submit=0.0, runtime=100.0, nodes=16)
        second = make_job(job_id=2, submit=100.0, runtime=50.0, nodes=16)
        result = Simulator(tiny_system, sched).run([first, second])
        by_id = {j.job_id: j for j in result.jobs}
        assert by_id[2].start_time == 100.0

    def test_instances_triggered_by_events(self, tiny_system, tiny_trace):
        sched = make_scheduler("heuristic", tiny_system)
        result = Simulator(tiny_system, sched).run(tiny_trace)
        # At most one instance per event time; at least one per job.
        assert result.n_scheduling_instances >= len(tiny_trace)

    def test_utilization_recorded(self, tiny_system, tiny_trace):
        sched = make_scheduler("heuristic", tiny_system)
        result = Simulator(tiny_system, sched).run(tiny_trace)
        times, values = result.recorder.utilization_series
        assert times.size == result.n_scheduling_instances
        assert values.shape[1] == tiny_system.n_resources
        assert np.all(values >= 0) and np.all(values <= 1)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(1, 8),      # nodes
            st.integers(0, 4),      # bb
            st.integers(30, 2000),  # runtime
            st.integers(1, 5),      # walltime factor (x runtime, /1)
            st.integers(0, 500),    # gap
        ),
        min_size=1,
        max_size=30,
    )
)
def test_fcfs_invariants_property(jobs_data):
    """Random workloads: completion, capacity and causality always hold."""
    system = SystemConfig(
        resources=(ResourceSpec(NODE, 8), ResourceSpec(BURST_BUFFER, 4))
    )
    t = 0.0
    jobs = []
    for i, (nodes, bb, runtime, wfac, gap) in enumerate(jobs_data):
        t += gap
        jobs.append(
            make_job(job_id=i + 1, submit=t, runtime=float(runtime),
                     walltime=float(runtime * wfac), nodes=nodes, bb=bb)
        )
    sched = make_scheduler("heuristic", system, window_size=4)
    result = Simulator(system, sched, record_timeline=False).run(jobs)
    assert all(j.finished for j in result.jobs)
    capacity_never_exceeded(result.jobs, system)
    for job in result.jobs:
        assert job.start_time >= job.submit_time
