"""Spawn-started pool workers must resolve plugin registrations.

``@register_*`` decorators run at import time, so a ``fork`` worker
inherits them for free — but a ``spawn`` worker starts a fresh
interpreter that has never imported the plugin module, and a grid task
naming a plugin method would die with an unknown-scheduler error. The
runner therefore ships :func:`repro.api.registry.registration_modules`
through the pool initializer. These tests register a plugin from a
temp-dir module and run a smoke grid under both start methods.
"""

from __future__ import annotations

import importlib
import sys
import textwrap

import pytest

from repro.api.registry import (
    SCHEDULERS,
    import_plugin_modules,
    registration_modules,
)
from repro.exp import ExperimentRunner, grid_tasks
from repro.experiments.harness import ExperimentConfig

PLUGIN_MODULE = "spawn_probe_plugin"
PLUGIN_SOURCE = textwrap.dedent(
    '''
    """Test plugin: registers an FCFS alias from outside the library."""

    from repro.api import register_scheduler
    from repro.sched.fcfs import FCFSScheduler


    @register_scheduler("spawn_probe", description="FCFS alias (spawn test)")
    class SpawnProbeScheduler(FCFSScheduler):
        pass
    '''
)


@pytest.fixture()
def plugin(tmp_path, monkeypatch):
    (tmp_path / f"{PLUGIN_MODULE}.py").write_text(PLUGIN_SOURCE)
    monkeypatch.syspath_prepend(str(tmp_path))
    importlib.import_module(PLUGIN_MODULE)
    yield "spawn_probe"
    SCHEDULERS.unregister("spawn_probe")
    sys.modules.pop(PLUGIN_MODULE, None)


@pytest.fixture()
def smoke_config() -> ExperimentConfig:
    return ExperimentConfig(
        nodes=32, bb_units=16, n_jobs=15, window_size=4, seed=41
    )


class TestRegistrationShipping:
    def test_plugin_module_is_listed(self, plugin):
        assert PLUGIN_MODULE in registration_modules()

    def test_builtin_and_main_registrations_are_not_listed(self):
        modules = registration_modules()
        assert all(not m.startswith("repro.") for m in modules)
        assert "__main__" not in modules

    def test_initializer_reimport_is_idempotent(self, plugin):
        """Under fork the initializer runs in a process that already
        imported the plugin — the cached import must not re-register."""
        import_plugin_modules((PLUGIN_MODULE,))
        assert "spawn_probe" in SCHEDULERS


class TestSpawnGridSmoke:
    @pytest.mark.parametrize("start_method", ["spawn", "fork"])
    def test_plugin_grid_runs_under_pool(
        self, plugin, smoke_config, start_method
    ):
        """The regression: a spawn worker resolving a plugin-registered
        method. Metrics must equal the serial run bit-for-bit."""
        tasks = grid_tasks([plugin], ["S1"], smoke_config, n_seeds=2)
        serial = ExperimentRunner(n_workers=1).run(tasks)
        pooled = ExperimentRunner(
            n_workers=2, mp_start_method=start_method
        ).run(tasks)
        assert [
            (r.key, {w: m.full_dict() for w, m in r.metrics.items()})
            for r in pooled
        ] == [
            (r.key, {w: m.full_dict() for w, m in r.metrics.items()})
            for r in serial
        ]
