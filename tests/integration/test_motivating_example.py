"""The Fig. 1 motivating example.

Four jobs with complementary two-resource demands, all submitted at
time 0, one-hour runtimes. The fixed-priority ordering (J2, J3) first
needs three hours; the contention-aware ordering (J1, J3) then (J2, J4)
finishes in two — the gap MRSch's dynamic goal vector is built to close.
"""

import pytest

from repro.cluster.resources import NODE, ResourceSpec, SystemConfig
from repro.sched.fcfs import FCFSScheduler
from repro.sim.simulator import Simulator
from repro.workload.job import Job

HOUR = 3600.0

# Demands as percentage of each resource's capacity (units of 10).
FIG1_DEMANDS = {
    "J1": (6, 3),
    "J2": (5, 5),
    "J3": (4, 5),
    "J4": (5, 4),
}


def fig1_system() -> SystemConfig:
    return SystemConfig(
        resources=(ResourceSpec("A", 10), ResourceSpec("B", 10))
    )


def fig1_jobs(order: list[str]) -> list[Job]:
    """All jobs at t=0; queue order fixed by submit-time microseconds."""
    jobs = []
    for i, name in enumerate(order):
        a, b = FIG1_DEMANDS[name]
        jobs.append(
            Job(
                job_id=i + 1,
                submit_time=i * 1e-3,  # fix FCFS order
                runtime=HOUR,
                walltime=HOUR,
                requests={"A": a, "B": b},
            )
        )
    return jobs


def makespan(order: list[str]) -> float:
    system = fig1_system()
    sched = FCFSScheduler(window_size=4, backfill=True)
    result = Simulator(system, sched).run(fig1_jobs(order))
    return result.makespan


def test_fixed_weight_order_needs_three_hours():
    """(J2, J3) first — the equal-weight utilization choice — strands J1
    and J4 into separate hours."""
    assert makespan(["J2", "J3", "J1", "J4"]) == pytest.approx(3 * HOUR, rel=1e-6)


def test_ideal_order_needs_two_hours():
    """(J1, J3), (J2, J4) packs both resources perfectly."""
    assert makespan(["J1", "J3", "J2", "J4"]) == pytest.approx(2 * HOUR, rel=1e-6)


def test_fixed_weight_prefers_the_bad_pair():
    """The static equal-weight objective indeed scores (J2, J3) at least
    as high as (J1, J3) at t=0 — the trap in Fig. 1."""

    def mean_util(pair):
        used_a = sum(FIG1_DEMANDS[j][0] for j in pair)
        used_b = sum(FIG1_DEMANDS[j][1] for j in pair)
        return 0.5 * used_a / 10 + 0.5 * used_b / 10

    assert mean_util(("J2", "J3")) >= mean_util(("J1", "J3"))


def test_goal_vector_detects_resource_b_pressure():
    """Eq. 1 on the Fig. 1 queue weights resource B higher — total B
    demand (17) exceeds A (20 vs 17 … A is higher here), so verify the
    exact Eq. 1 value instead of a direction guess."""
    from repro.core.goal import goal_vector

    jobs = fig1_jobs(["J1", "J2", "J3", "J4"])
    g = goal_vector(jobs, [], fig1_system(), now=0.0)
    total_a = sum(d[0] for d in FIG1_DEMANDS.values()) / 10
    total_b = sum(d[1] for d in FIG1_DEMANDS.values()) / 10
    assert g[0] == pytest.approx(total_a / (total_a + total_b))
    assert g[1] == pytest.approx(total_b / (total_a + total_b))
