"""Structure tests for the experiment harness and figure entry points.

Uses deliberately tiny configurations — these verify wiring, result
structure and invariants, not scheduling quality (the benchmarks do
that at realistic scale).
"""

import numpy as np
import pytest

from repro.experiments.figures import (
    fig7_kiviat,
    fig8_rbb_timeline,
    fig9_rbb_distribution,
    overhead_study,
)
from repro.experiments.harness import (
    ExperimentConfig,
    make_method,
    prepare_base_trace,
    run_comparison,
    run_single,
    train_method,
)
from repro.experiments.report import format_boxstats, format_series, format_table
from repro.sched.ga import NSGA2Config


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        nodes=32,
        bb_units=16,
        n_jobs=40,
        window_size=5,
        seed=3,
        curriculum_sets=(1, 1, 1),
        jobs_per_trainset=20,
        ga_config=NSGA2Config(population=6, generations=2),
    )


class TestHarness:
    def test_prepare_base_trace_size(self, tiny_config):
        assert len(prepare_base_trace(tiny_config)) == 40
        assert len(prepare_base_trace(tiny_config, n_jobs=7)) == 7

    def test_train_method_noop_for_heuristic(self, tiny_config):
        system = tiny_config.system()
        sched = make_method("heuristic", system, tiny_config)
        assert train_method(sched, system, tiny_config) is None

    def test_train_method_trains_mrsch(self, tiny_config):
        system = tiny_config.system()
        sched = make_method("mrsch", system, tiny_config)
        result = train_method(sched, system, tiny_config)
        assert result is not None
        assert result.episodes == 3
        assert result.phases == ["sampled", "real", "synthetic"]

    def test_run_comparison_structure(self, tiny_config):
        reports = run_comparison(
            ["S1", "S5"], ["heuristic", "scalar_rl"], tiny_config
        )
        assert set(reports) == {"S1", "S5"}
        for per_method in reports.values():
            assert set(per_method) == {"heuristic", "scalar_rl"}
            for report in per_method.values():
                assert report.n_jobs == tiny_config.n_jobs

    def test_run_comparison_case_study_adds_power(self, tiny_config):
        reports = run_comparison(
            ["S6"], ["heuristic"], tiny_config, case_study=True
        )
        assert reports["S6"]["heuristic"].avg_power_units > 0

    def test_run_single_returns_scheduler(self, tiny_config):
        result, sched = run_single("S2", "heuristic", tiny_config, train=False)
        assert result.metrics.n_jobs == tiny_config.n_jobs
        assert sched.name == "fcfs"


class TestFigures:
    def test_fig8_structure(self, tiny_config):
        out = fig8_rbb_timeline(tiny_config, train=False)
        assert "rBB" in out["data"]
        assert len(out["data"]["rBB"]) > 0
        assert 0.0 <= out["stats"]["mean"] <= 1.0
        assert "Fig 8" in out["text"]

    def test_fig9_structure(self, tiny_config):
        out = fig9_rbb_distribution(tiny_config, workloads=("S1", "S5"), train=False)
        assert set(out["data"]) == {"S1", "S5"}
        for stats in out["data"].values():
            assert stats["min"] <= stats["median"] <= stats["max"]

    def test_fig7_from_precomputed_reports(self, tiny_config):
        reports = run_comparison(["S1"], ["heuristic", "scalar_rl"], tiny_config,
                                 train=False)
        out = fig7_kiviat(reports=reports)
        chart = out["data"]["S1"]
        for axes in chart.values():
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in axes.values())
        assert out["areas"]["S1"].keys() == chart.keys()

    def test_overhead_structure(self, tiny_config):
        out = overhead_study(tiny_config, n_decisions=5)
        assert set(out["data"]) == {"2 resources", "3 resources"}
        assert all(v > 0 for v in out["data"].values())


class TestReport:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "b"], {"row": [1.0, 2.5]})
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.000" in text and "2.500" in text

    def test_format_series_subsamples(self):
        text = format_series("S", {"x": list(range(100))}, max_points=5)
        assert "… 100 points" in text

    def test_format_boxstats(self):
        stats = {"S1": {"min": 0.0, "q1": 0.2, "median": 0.5, "q3": 0.7, "max": 1.0}}
        text = format_boxstats("B", stats)
        assert "median" in text and "S1" in text
