"""Built-in offline policies and the eval-policy registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.evaluator import policy_choices
from repro.eval.policies import (
    build_policies,
    describe_eval_policies,
    get_eval_policy,
    list_eval_policies,
    register_eval_policy,
)


class TestRegistry:
    def test_builtins_registered(self):
        names = list_eval_policies()
        for expected in (
            "fcfs",
            "shortest_job",
            "longest_queued",
            "smallest_demand",
            "largest_demand",
            "prior",
            "logged",
        ):
            assert expected in names

    def test_lookup_is_case_insensitive(self):
        assert get_eval_policy("FCFS").name == "fcfs"

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="available:"):
            get_eval_policy("slurm")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_eval_policy("FcFs")(lambda trace: None)

    def test_register_and_build(self, make_decision_trace):
        @register_eval_policy("test_widest", description="most nodes first")
        def widest(trace):
            return trace.feature("req_frac:node")

        try:
            policies = build_policies(["fcfs", "test_widest"])
            assert set(policies) == {"fcfs", "test_widest"}
            trace = make_decision_trace()
            assert policies["test_widest"](trace).shape == trace.masks.shape
        finally:
            from repro.eval import policies as mod

            mod._POLICIES.pop("test_widest", None)

    def test_describe_has_one_line_per_policy(self):
        described = describe_eval_policies()
        assert set(described) == set(list_eval_policies())
        assert all("\n" not in d for d in described.values())

    def test_build_policies_accepts_mapping_verbatim(self):
        scorer = lambda trace: None  # noqa: E731
        assert build_policies({"mine": scorer}) == {"mine": scorer}


class TestBuiltinScorers:
    def test_fcfs_prefers_slot_zero(self, make_decision_trace):
        trace = make_decision_trace()
        scores = get_eval_policy("fcfs").scorer(trace)
        assert (policy_choices(trace, scores) == 0).all()

    def test_fcfs_respects_mask(self, make_decision_trace):
        trace = make_decision_trace(n=3)
        trace.masks[:, 0] = False
        scores = get_eval_policy("fcfs").scorer(trace)
        assert (policy_choices(trace, scores) == 1).all()

    def test_shortest_job_picks_minimum_walltime(self, make_decision_trace):
        trace = make_decision_trace(seed=5)
        choices = policy_choices(
            trace, get_eval_policy("shortest_job").scorer(trace)
        )
        np.testing.assert_array_equal(
            choices, trace.feature("walltime").argmin(axis=1)
        )

    def test_longest_queued_picks_maximum_wait(self, make_decision_trace):
        trace = make_decision_trace(seed=6)
        choices = policy_choices(
            trace, get_eval_policy("longest_queued").scorer(trace)
        )
        np.testing.assert_array_equal(
            choices, trace.feature("queued").argmax(axis=1)
        )

    def test_demand_policies_are_goal_weighted_opposites(self, make_decision_trace):
        trace = make_decision_trace(seed=7)
        small = get_eval_policy("smallest_demand").scorer(trace)
        large = get_eval_policy("largest_demand").scorer(trace)
        np.testing.assert_allclose(small, -large)
        # Demand must respond to the goal vector, not just raw requests.
        reweighted = make_decision_trace(seed=7)
        reweighted.goals[:] = np.array([1.0, 0.0])
        node_only = get_eval_policy("smallest_demand").scorer(reweighted)
        np.testing.assert_allclose(
            node_only, -reweighted.feature("req_frac:node")
        )

    def test_prior_matches_mrsch_formula(self, make_decision_trace):
        """Fitting jobs score 1.5 − demand; non-fitting −1.5 − 0.1·slot."""
        trace = make_decision_trace(n=2, window=3, seed=8)
        trace.job_features[0, 1, trace.feature_index("fits")] = 0.0
        scores = get_eval_policy("prior").scorer(trace)
        r = len(trace.meta["resources"])
        demand = (trace.job_features[:, :, :r] * trace.goals[:, None, :]).sum(-1)
        assert scores[0, 1] == pytest.approx(-1.5 - 0.1 * 1)
        assert scores[0, 0] == pytest.approx(1.5 - demand[0, 0])
        assert scores[1, 2] == pytest.approx(1.5 - demand[1, 2])

    def test_logged_reproduces_recorded_actions(self, make_decision_trace):
        trace = make_decision_trace(n=5, window=4, actions=[0, 3, 1, 2, 0])
        choices = policy_choices(trace, get_eval_policy("logged").scorer(trace))
        np.testing.assert_array_equal(choices, trace.actions)
