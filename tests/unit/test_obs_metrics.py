"""Unit tests for repro.obs.metrics — counters, gauges, histograms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    StreamingHistogram,
    merge_snapshots,
)


class TestStreamingHistogram:
    def test_exact_aggregates(self):
        hist = StreamingHistogram()
        values = [0.5, 1.5, 2.5, 100.0]
        for v in values:
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == pytest.approx(sum(values))
        assert hist.mean == pytest.approx(sum(values) / 4)
        assert hist.min == 0.5 and hist.max == 100.0

    def test_quantile_relative_error_bound(self):
        """Bucket-midpoint quantiles stay within sqrt(growth) of exact.

        The documented guarantee: with growth g, any positive quantile
        estimate is a geometric bucket midpoint, hence within a factor
        sqrt(g) (~4% at g=1.08) of the true order statistic.
        """
        rng = np.random.default_rng(7)
        samples = np.sort(rng.lognormal(mean=0.0, sigma=2.0, size=5_000))
        hist = StreamingHistogram()
        for v in samples:
            hist.observe(float(v))
        bound = math.sqrt(hist.growth)
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            exact = float(samples[math.floor(q * (len(samples) - 1))])
            estimate = hist.quantile(q)
            assert exact / bound <= estimate <= exact * bound, (q, exact, estimate)

    def test_quantile_endpoints_are_exact(self):
        hist = StreamingHistogram()
        for v in (0.013, 4.2, 17.0, 250.0):
            hist.observe(v)
        assert hist.quantile(0.0) == 0.013
        assert hist.quantile(1.0) == 250.0

    def test_nonpositive_values_underflow_bucket(self):
        hist = StreamingHistogram()
        for v in (-1.0, 0.0, 1.0, 2.0):
            hist.observe(v)
        assert hist.zeros == 2 and hist.count == 4
        assert hist.quantile(0.0) == -1.0  # underflow sorts below positives
        assert hist.quantile(1.0) == 2.0

    def test_empty_and_invalid(self):
        hist = StreamingHistogram()
        assert math.isnan(hist.quantile(0.5))
        assert math.isnan(hist.mean)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            StreamingHistogram(growth=1.0)

    def test_merge_matches_single_stream(self):
        rng = np.random.default_rng(11)
        a_vals = rng.exponential(3.0, size=400)
        b_vals = rng.exponential(0.2, size=300)
        one = StreamingHistogram()
        for v in np.concatenate([a_vals, b_vals]):
            one.observe(float(v))
        a, b = StreamingHistogram(), StreamingHistogram()
        for v in a_vals:
            a.observe(float(v))
        for v in b_vals:
            b.observe(float(v))
        a.merge(b)
        assert a.count == one.count
        assert a.total == pytest.approx(one.total)
        assert a.buckets == one.buckets
        for q in (0.1, 0.5, 0.9):
            assert a.quantile(q) == one.quantile(q)

    def test_merge_rejects_mismatched_growth(self):
        with pytest.raises(ValueError):
            StreamingHistogram(growth=1.08).merge(StreamingHistogram(growth=1.5))

    def test_json_round_trip(self):
        hist = StreamingHistogram()
        for v in (-3.0, 0.4, 12.0, 12.1, 900.0):
            hist.observe(v)
        back = StreamingHistogram.from_json_dict(hist.to_json_dict())
        assert back.count == hist.count
        assert back.zeros == hist.zeros
        assert back.buckets == hist.buckets
        assert back.min == hist.min and back.max == hist.max
        for q in (0.0, 0.5, 1.0):
            assert back.quantile(q) == hist.quantile(q)


class TestRegistryAndMerge:
    def test_created_on_first_touch_and_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("cells").inc(3)
        reg.gauge("pending").set(7.0)
        reg.histogram("wall_s").observe(1.25)
        assert len(reg) == 3
        assert reg.counter("cells") is reg.counter("cells")
        snap = reg.snapshot(worker_id="w0")
        assert snap["schema"] == METRICS_SCHEMA_VERSION
        assert snap["counters"] == {"cells": 3}
        assert snap["gauges"] == {"pending": 7.0}
        assert snap["histograms"]["wall_s"]["count"] == 1
        assert snap["worker_id"] == "w0"

    def test_merge_snapshots_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("cells").inc(2)
        b.counter("cells").inc(5)
        a.gauge("pending").set(10.0)
        b.gauge("pending").set(4.0)
        for v in (1.0, 2.0):
            a.histogram("wall_s").observe(v)
        b.histogram("wall_s").observe(3.0)
        snap_a = a.snapshot()
        snap_b = b.snapshot()
        snap_a["t"], snap_b["t"] = 100.0, 200.0  # b is newer
        merged = merge_snapshots([snap_a, snap_b])
        assert merged["merged_from"] == 2
        assert merged["counters"]["cells"] == 7  # counters add
        assert merged["gauges"]["pending"] == 4.0  # latest wins
        assert merged["histograms"]["wall_s"]["count"] == 3  # streams add

    def test_merge_skips_unknown_schema(self):
        good = MetricsRegistry()
        good.counter("cells").inc(1)
        bad = {"schema": 99, "counters": {"cells": 100}}
        merged = merge_snapshots([good.snapshot(), bad])
        assert merged["merged_from"] == 1
        assert merged["counters"]["cells"] == 1
