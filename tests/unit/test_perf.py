"""Tests for the repro.perf benchmark + trajectory subsystem.

Benchmarks run here at trivial sizes — these tests pin the machinery
(result shapes, trajectory round-trip, the regression guard's
normalised comparison), not machine performance.
"""

from __future__ import annotations

import json

import pytest

from repro.perf.hotpath import (
    BENCHES,
    BenchResult,
    bench_dfp_scoring,
    bench_fcfs_replay,
    bench_mrsch_theta_decision,
    bench_pool_accounting,
    list_benches,
    run_suite,
)
from repro.perf.trajectory import (
    append_entry,
    check_regression,
    format_entry,
    latest_entry,
    load_trajectory,
    make_entry,
)


def tiny_results() -> dict[str, BenchResult]:
    return {
        "fcfs_replay": BenchResult("fcfs_replay", wall_s=2.0, n_units=100),
        "dfp_scoring": BenchResult("dfp_scoring", wall_s=0.5, n_units=50),
    }


class TestBenchmarks:
    def test_fcfs_replay_tiny(self):
        result = bench_fcfs_replay(n_jobs=60, mean_interarrival=300.0)
        assert result.name == "fcfs_replay"
        assert result.wall_s > 0 and result.n_units == 60
        assert result.meta["instances"] > 0
        assert result.per_unit_ms == pytest.approx(
            1e3 * result.wall_s / 60
        )

    def test_pool_accounting_tiny(self):
        result = bench_pool_accounting(n_rounds=10, nodes=32, bb_units=16)
        assert result.n_units > 0 and result.wall_s > 0

    def test_dfp_scoring_tiny_and_float32(self):
        base = bench_dfp_scoring(n_calls=5, nodes=32, bb_units=16)
        fast = bench_dfp_scoring(n_calls=5, nodes=32, bb_units=16, dtype="float32")
        assert base.meta["dtype"] == "float64"
        assert base.meta["requested_dtype"] == "float64"
        # The applied dtype is read back from the configured network —
        # not echoed from the request (satellite fix: a float32 request
        # on a checkout without the mode must not claim float32).
        assert fast.meta["dtype"] == "float32"
        assert fast.meta["requested_dtype"] == "float32"
        assert fast.name == "dfp_scoring_float32"

    def test_mrsch_theta_decision_tiny(self):
        result = bench_mrsch_theta_decision(n_decisions=40, nodes=48, bb_units=24)
        assert result.name == "mrsch_theta_decision"
        assert result.n_units == 40 and result.wall_s > 0
        assert result.meta["encoder"] == "incremental"
        assert result.meta["bit_identical"] is True
        assert result.meta["reference_wall_s"] > 0
        assert result.meta["speedup_vs_fresh"] == pytest.approx(
            result.meta["reference_wall_s"] / result.wall_s
        )

    def test_run_suite_rejects_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown bench scale"):
            run_suite(scale="galactic")

    def test_run_suite_only_selection(self):
        results = run_suite(scale="smoke", only=["pool_accounting"])
        assert set(results) == {"pool_accounting"}
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_suite(scale="smoke", only=["pool_accounting", "nope"])

    def test_registry_and_listing_cover_every_bench(self):
        listed = {entry["name"] for entry in list_benches()}
        assert listed == set(BENCHES)
        assert "mrsch_theta_decision" in listed
        theta = next(
            entry for entry in list_benches()
            if entry["name"] == "mrsch_theta_decision"
        )
        assert theta["sizes"]["full"]["nodes"] == 4392
        assert theta["sizes"]["full"]["bb_units"] == 1290
        assert theta["sizes"]["smoke"]["nodes"] < 4392  # CI stays fast


class TestTrajectory:
    def test_entry_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_hotpath.json"
        entry = make_entry("first", tiny_results(), calibration_s=0.1,
                           scale="smoke", commit="abc1234")
        doc = append_entry(entry, path)
        assert len(doc["trajectory"]) == 1
        loaded = load_trajectory(path)
        assert loaded["trajectory"][0]["label"] == "first"
        assert loaded["trajectory"][0]["results"]["fcfs_replay"][
            "normalized"
        ] == pytest.approx(20.0)
        # Appends accumulate.
        append_entry(make_entry("second", tiny_results(), 0.1, scale="smoke"), path)
        assert len(load_trajectory(path)["trajectory"]) == 2

    def test_load_missing_file_gives_empty_skeleton(self, tmp_path):
        doc = load_trajectory(tmp_path / "nope.json")
        assert doc["trajectory"] == []

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "trajectory": []}))
        with pytest.raises(ValueError, match="schema"):
            load_trajectory(path)

    def test_calibration_must_be_positive(self):
        with pytest.raises(ValueError):
            make_entry("x", tiny_results(), calibration_s=0.0)

    def test_latest_entry_filters_scale_and_label(self, tmp_path):
        path = tmp_path / "t.json"
        append_entry(make_entry("a", tiny_results(), 0.1, scale="full"), path)
        append_entry(make_entry("b", tiny_results(), 0.1, scale="smoke"), path)
        doc = load_trajectory(path)
        assert latest_entry(doc)["label"] == "b"
        assert latest_entry(doc, scale="full")["label"] == "a"
        assert latest_entry(doc, scale="smoke", before_label="b") is None

    def test_regression_guard_uses_normalised_values(self):
        # Same wall time on a machine measured 2x slower → not a
        # regression; the normalised ratio is what counts.
        base = make_entry("base", tiny_results(), calibration_s=0.1)
        same_speed = make_entry("now", tiny_results(), calibration_s=0.1)
        assert check_regression(same_speed, base, threshold=1.5) == []
        slower_machine = make_entry("ci", tiny_results(), calibration_s=0.2)
        assert check_regression(slower_machine, base, threshold=1.5) == []

    def test_regression_guard_trips_on_real_slowdown(self):
        base = make_entry("base", tiny_results(), calibration_s=0.1)
        slow = make_entry(
            "slow",
            {
                "fcfs_replay": BenchResult("fcfs_replay", wall_s=4.0, n_units=100),
                "dfp_scoring": BenchResult("dfp_scoring", wall_s=0.5, n_units=50),
            },
            calibration_s=0.1,
        )
        failures = check_regression(slow, base, threshold=1.5)
        assert len(failures) == 1 and "fcfs_replay" in failures[0]
        # Benchmarks missing from the baseline are skipped, not errors.
        partial_base = make_entry(
            "partial",
            {"dfp_scoring": BenchResult("dfp_scoring", wall_s=0.5, n_units=50)},
            calibration_s=0.1,
        )
        assert check_regression(slow, partial_base) == []

    def test_format_entry_is_readable(self):
        text = format_entry(make_entry("x", tiny_results(), 0.1, commit="abc"))
        assert "fcfs_replay" in text and "normalized" in text

    def test_format_entry_shows_decision_speedup(self):
        results = {
            "mrsch_theta_decision": BenchResult(
                "mrsch_theta_decision",
                wall_s=0.1,
                n_units=100,
                meta={"speedup_vs_fresh": 2.87},
            )
        }
        text = format_entry(make_entry("x", results, 0.1))
        assert "2.9x vs fresh encode" in text
