"""Tests for trace splitting and curriculum construction (§III-D)."""

import numpy as np
import pytest

from repro.workload.sampling import (
    build_curriculum,
    mean_interarrival,
    poisson_resample,
    real_jobsets,
    split_trace,
    synthetic_jobsets,
)
from repro.workload.theta import ThetaTraceConfig
from tests.conftest import make_job


@pytest.fixture
def trace():
    return [make_job(job_id=i + 1, submit=i * 100.0) for i in range(100)]


class TestSplit:
    def test_fractions(self, trace):
        train, val, test = split_trace(trace, 0.7, 0.1)
        assert len(train) == 70
        assert len(val) == 10
        assert len(test) == 20

    def test_chronological(self, trace):
        train, val, test = split_trace(trace)
        assert max(j.job_id for j in train) < min(j.job_id for j in val)
        assert max(j.job_id for j in val) < min(j.job_id for j in test)

    def test_rebased_to_zero(self, trace):
        _, val, test = split_trace(trace)
        assert min(j.submit_time for j in val) == 0.0
        assert min(j.submit_time for j in test) == 0.0

    def test_invalid_fractions(self, trace):
        with pytest.raises(ValueError):
            split_trace(trace, 0.8, 0.3)
        with pytest.raises(ValueError):
            split_trace(trace, -0.1, 0.1)

    def test_copies_returned(self, trace):
        train, _, _ = split_trace(trace)
        train[0].submit_time = 12345.0
        assert trace[0].submit_time == 0.0


class TestResample:
    def test_count_and_ids(self, trace):
        out = poisson_resample(trace, 37, seed=1)
        assert len(out) == 37
        assert [j.job_id for j in out] == list(range(1, 38))

    def test_arrivals_increasing(self, trace):
        out = poisson_resample(trace, 50, seed=2)
        submits = [j.submit_time for j in out]
        assert submits == sorted(submits)

    def test_mean_interarrival_matches_trace(self, trace):
        out = poisson_resample(trace, 4000, seed=3)
        gaps = np.diff([j.submit_time for j in out])
        assert gaps.mean() == pytest.approx(mean_interarrival(trace), rel=0.1)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            poisson_resample([], 10)

    def test_mean_interarrival_degenerate(self):
        assert mean_interarrival([make_job()]) == 600.0


class TestJobsets:
    def test_real_jobsets_partition(self, trace):
        sets = real_jobsets(trace, 4)
        assert len(sets) == 4
        assert sum(len(s) for s in sets) == len(trace)
        for s in sets:
            assert min(j.submit_time for j in s) == 0.0

    def test_real_jobsets_validation(self, trace):
        with pytest.raises(ValueError):
            real_jobsets(trace, 0)

    def test_synthetic_jobsets_independent(self):
        cfg = ThetaTraceConfig(total_nodes=32, n_jobs=10)
        sets = synthetic_jobsets(cfg, 3, 10, seed=4)
        assert len(sets) == 3
        assert all(len(s) == 10 for s in sets)
        # Independent streams: different runtimes across sets.
        assert sets[0][0].runtime != sets[1][0].runtime

    def test_curriculum_structure(self, trace):
        cfg = ThetaTraceConfig(total_nodes=32, n_jobs=10)
        cur = build_curriculum(
            trace, cfg, n_sampled=2, n_real=2, n_synthetic=3, jobs_per_set=15, seed=5
        )
        assert set(cur) == {"sampled", "real", "synthetic"}
        assert len(cur["sampled"]) == 2
        assert len(cur["real"]) == 2
        assert len(cur["synthetic"]) == 3
        assert all(len(s) == 15 for s in cur["sampled"])
        assert all(len(s) == 15 for s in cur["synthetic"])

    def test_curriculum_deterministic(self, trace):
        cfg = ThetaTraceConfig(total_nodes=32, n_jobs=10)
        a = build_curriculum(trace, cfg, n_sampled=1, n_real=1, n_synthetic=1, seed=6)
        b = build_curriculum(trace, cfg, n_sampled=1, n_real=1, n_synthetic=1, seed=6)
        assert [j.runtime for j in a["synthetic"][0]] == [
            j.runtime for j in b["synthetic"][0]
        ]
