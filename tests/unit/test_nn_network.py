"""Tests for Sequential and parameter serialisation."""

import numpy as np
import pytest

from repro.nn.layers import Dense, LeakyReLU, Tanh
from repro.nn.network import Sequential
from repro.nn.serialize import load_params, save_params


def build_net(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        [Dense(4, 8, rng=rng), LeakyReLU(0.1), Dense(8, 2, rng=rng), Tanh()]
    )


class TestSequential:
    def test_forward_matches_manual_chain(self, rng):
        net = build_net()
        x = rng.normal(size=(3, 4))
        manual = x
        for layer in net.layers:
            manual = layer.forward(manual)
        np.testing.assert_array_equal(net.forward(x), manual)

    def test_add_returns_self(self):
        net = Sequential()
        assert net.add(LeakyReLU()) is net
        assert len(net) == 1

    def test_parameter_count(self):
        net = build_net()
        assert net.parameter_count() == (4 * 8 + 8) + (8 * 2 + 2)

    def test_state_dict_roundtrip(self, rng):
        a, b = build_net(1), build_net(2)
        x = rng.normal(size=(2, 4))
        assert not np.allclose(a.forward(x), b.forward(x))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_state_dict_returns_copies(self):
        net = build_net()
        state = net.state_dict()
        state["0.W"][...] = 999.0
        assert not np.any(net.layers[0].params["W"] == 999.0)

    def test_load_missing_key_raises(self):
        net = build_net()
        state = net.state_dict()
        del state["0.W"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_shape_mismatch_raises(self):
        net = build_net()
        state = net.state_dict()
        state["0.W"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestSerialize:
    def test_npz_roundtrip(self, tmp_path, rng):
        net = build_net(3)
        path = tmp_path / "params.npz"
        save_params(path, net.state_dict())
        restored = load_params(path)
        fresh = build_net(4)
        fresh.load_state_dict(restored)
        x = rng.normal(size=(2, 4))
        np.testing.assert_allclose(net.forward(x), fresh.forward(x))

    def test_keys_with_dots_preserved(self, tmp_path):
        state = {"a.b.c": np.arange(3.0), "x": np.eye(2)}
        path = tmp_path / "p.npz"
        save_params(path, state)
        out = load_params(path)
        assert set(out) == {"a.b.c", "x"}
        np.testing.assert_array_equal(out["a.b.c"], state["a.b.c"])
