"""Tests for the event queue (with hypothesis ordering property)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import Event, EventKind, EventQueue
from tests.conftest import make_job


def ev(time: float, kind: EventKind = EventKind.SUBMIT) -> Event:
    return Event(time, kind, make_job())


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ev(-1.0)


class TestQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        for t in (5.0, 1.0, 3.0):
            q.push(ev(t))
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_end_before_submit_at_same_time(self):
        q = EventQueue()
        q.push(ev(10.0, EventKind.SUBMIT))
        q.push(ev(10.0, EventKind.END))
        assert q.pop().kind is EventKind.END
        assert q.pop().kind is EventKind.SUBMIT

    def test_insertion_order_breaks_ties(self):
        q = EventQueue()
        a, b = make_job(job_id=1), make_job(job_id=2)
        q.push(Event(5.0, EventKind.SUBMIT, a))
        q.push(Event(5.0, EventKind.SUBMIT, b))
        assert q.pop().job.job_id == 1
        assert q.pop().job.job_id == 2

    def test_pop_simultaneous(self):
        q = EventQueue()
        q.push(ev(1.0))
        q.push(ev(1.0, EventKind.END))
        q.push(ev(2.0))
        batch = q.pop_simultaneous()
        assert len(batch) == 2
        assert batch[0].kind is EventKind.END
        assert len(q) == 1

    def test_empty_operations_raise(self):
        q = EventQueue()
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.peek()
        with pytest.raises(IndexError):
            q.pop_simultaneous()

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(ev(1.0))
        assert q.peek().time == 1.0
        assert len(q) == 1
        assert q.peek_time() == 1.0

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(ev(1.0))
        assert q


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=50))
def test_pop_order_property(times):
    q = EventQueue()
    for t in times:
        q.push(ev(t))
    popped = [q.pop().time for _ in range(len(times))]
    assert popped == sorted(times)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0.0, 100.0), st.sampled_from(list(EventKind))),
        min_size=1,
        max_size=40,
    )
)
def test_simultaneous_batches_cover_everything(items):
    q = EventQueue()
    for t, kind in items:
        q.push(ev(t, kind))
    total = 0
    last_time = -1.0
    while q:
        batch = q.pop_simultaneous()
        assert len({e.time for e in batch}) == 1
        assert batch[0].time > last_time
        last_time = batch[0].time
        # Within a batch, ENDs precede SUBMITs.
        kinds = [e.kind for e in batch]
        assert kinds == sorted(kinds)
        total += len(batch)
    assert total == len(items)
