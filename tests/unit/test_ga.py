"""Tests for the NSGA-II optimization baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import NODE, ResourcePool, ResourceSpec, SystemConfig
from repro.sched.ga import (
    GAScheduler,
    NSGA2Config,
    _crowding_distance,
    _non_dominated_sort,
    _order_crossover,
    _swap_mutation,
)
from tests.conftest import make_job
from tests.unit.test_base_sched import make_ctx


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NSGA2Config(population=1)
        with pytest.raises(ValueError):
            NSGA2Config(generations=0)
        with pytest.raises(ValueError):
            NSGA2Config(p_crossover=1.5)
        with pytest.raises(ValueError):
            NSGA2Config(p_mutation=-0.1)


class TestParetoMachinery:
    def test_non_dominated_sort_simple(self):
        objs = np.array([[0.0, 0.0], [1.0, 1.0], [0.0, 1.0], [2.0, 2.0]])
        fronts = _non_dominated_sort(objs)
        assert set(fronts[0].tolist()) == {0}
        assert set(fronts[1].tolist()) == {2}
        assert set(fronts[2].tolist()) == {1}
        assert set(fronts[3].tolist()) == {3}

    def test_incomparable_share_front(self):
        objs = np.array([[0.0, 1.0], [1.0, 0.0]])
        fronts = _non_dominated_sort(objs)
        assert len(fronts) == 1
        assert set(fronts[0].tolist()) == {0, 1}

    def test_fronts_partition_population(self):
        rng = np.random.default_rng(0)
        objs = rng.random((20, 3))
        fronts = _non_dominated_sort(objs)
        flat = sorted(i for f in fronts for i in f.tolist())
        assert flat == list(range(20))

    def test_duplicates_in_first_front(self):
        objs = np.array([[1.0, 1.0], [1.0, 1.0]])
        fronts = _non_dominated_sort(objs)
        assert len(fronts[0]) == 2

    def test_crowding_extremes_infinite(self):
        objs = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        dist = _crowding_distance(objs)
        assert np.isinf(dist[0]) and np.isinf(dist[3])
        assert np.isfinite(dist[1]) and np.isfinite(dist[2])

    def test_crowding_small_fronts(self):
        assert np.all(np.isinf(_crowding_distance(np.array([[1.0, 2.0]]))))


class TestOperators:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(2, 12), st.integers(0, 10**6))
    def test_order_crossover_is_permutation(self, n, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.permutation(n), rng.permutation(n)
        child = _order_crossover(a, b, rng)
        assert sorted(child.tolist()) == list(range(n))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 12), st.integers(0, 10**6))
    def test_swap_mutation_is_permutation(self, n, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(n)
        _swap_mutation(perm, rng)
        assert sorted(perm.tolist()) == list(range(n))


@pytest.fixture
def system():
    return SystemConfig(resources=(ResourceSpec(NODE, 10),))


def njob(job_id, nodes, runtime=100.0):
    job = make_job(job_id=job_id, nodes=nodes, runtime=runtime, walltime=runtime)
    job.requests.pop("burst_buffer")
    return job


class TestGAScheduler:
    def test_rank_returns_window_permutation(self, system):
        pool = ResourcePool(system)
        window = [njob(i, nodes=2) for i in range(1, 6)]
        sched = GAScheduler(window_size=5, seed=1,
                            config=NSGA2Config(population=8, generations=3))
        ctx = make_ctx(system, pool, list(window))
        ordering = sched.rank(window, ctx)
        assert sorted(j.job_id for j in ordering) == [1, 2, 3, 4, 5]

    def test_single_job_window_shortcut(self, system):
        pool = ResourcePool(system)
        window = [njob(1, nodes=2)]
        sched = GAScheduler(seed=1)
        ctx = make_ctx(system, pool, list(window))
        assert sched.rank(window, ctx) == window

    def test_evaluate_prefers_packing(self):
        """Multi-resource packing (the Fig. 1 scenario): the ordering
        that pairs complementary jobs yields higher estimated
        utilization than the one that strands capacity."""
        system = SystemConfig(
            resources=(ResourceSpec(NODE, 10), ResourceSpec("burst_buffer", 10))
        )
        pool = ResourcePool(system)
        demands = [(6, 3), (5, 5), (4, 5), (5, 4)]  # J1..J4 of Fig. 1
        window = [
            make_job(job_id=i + 1, nodes=a, bb=b, runtime=1000.0, walltime=1000.0)
            for i, (a, b) in enumerate(demands)
        ]
        sched = GAScheduler(window_size=5, seed=1)
        ctx = make_ctx(system, pool, list(window))
        # (J1,J3),(J2,J4) packs both resources → 2-step makespan.
        good = sched._evaluate(np.array([0, 2, 1, 3]), window, ctx)
        # (J2,J3) first strands J1 and pushes J4 to a third step.
        bad = sched._evaluate(np.array([1, 2, 0, 3]), window, ctx)
        assert good.sum() < bad.sum()  # objectives are negated utilization

    def test_deterministic_under_seed(self, system):
        def run(seed):
            pool = ResourcePool(system)
            window = [njob(i, nodes=3 + (i % 4)) for i in range(1, 9)]
            sched = GAScheduler(window_size=8, seed=seed,
                                config=NSGA2Config(population=8, generations=4))
            ctx = make_ctx(system, pool, list(window))
            return [j.job_id for j in sched.rank(window, ctx)]

        assert run(42) == run(42)

    def test_full_schedule_pass(self, system):
        pool = ResourcePool(system)
        queue = [njob(i, nodes=3) for i in range(1, 7)]
        sched = GAScheduler(window_size=4, seed=3,
                            config=NSGA2Config(population=6, generations=2))
        ctx = make_ctx(system, pool, queue)
        sched.schedule(ctx)
        # 10 nodes / 3 per job → 3 started, 4th reserved.
        assert len(ctx.started) == 3
        assert sched.reserved_job is not None
