"""Tests for MRSchScheduler."""

import numpy as np
import pytest

from repro.cluster.resources import ResourcePool
from repro.core.dfp import DFPConfig
from repro.core.mrsch import MRSchScheduler
from repro.sim.simulator import Simulator
from tests.conftest import make_job
from tests.unit.test_base_sched import make_ctx


def small_mrsch(system, window_size=4, seed=0, **kwargs):
    job_dim = 2 * system.n_resources + 2  # augmented §III-A layout
    encoder_dim = job_dim * window_size + 2 * sum(
        system.capacity(n) for n in system.names
    )
    cfg = DFPConfig(
        state_dim=encoder_dim,
        n_measurements=system.n_resources,
        n_actions=window_size,
        slot_dim=job_dim,
        offsets=(1, 2),
        temporal_weights=(0.5, 1.0),
        state_hidden=(16, 8),
        state_out=8,
        module_hidden=8,
        module_out=8,
        stream_hidden=8,
        batch_size=8,
        train_batches_per_episode=4,
    )
    return MRSchScheduler(system, window_size=window_size, dfp_config=cfg,
                          seed=seed, **kwargs)


class TestConstruction:
    def test_mismatched_config_rejected(self, tiny_system):
        cfg = DFPConfig(state_dim=99, n_measurements=2, n_actions=4, slot_dim=6)
        with pytest.raises(ValueError, match="state_dim"):
            MRSchScheduler(tiny_system, window_size=4, dfp_config=cfg)

    def test_mismatched_actions_rejected(self, tiny_system):
        dim = 6 * 4 + 2 * 24  # the encoder's state_dim for W=4
        cfg = DFPConfig(state_dim=dim, n_measurements=2, n_actions=7, slot_dim=6)
        with pytest.raises(ValueError, match="n_actions"):
            MRSchScheduler(tiny_system, window_size=4, dfp_config=cfg)

    def test_unknown_state_module(self, tiny_system):
        with pytest.raises(ValueError, match="state_module"):
            MRSchScheduler(tiny_system, state_module="transformer")

    def test_cnn_variant_builds(self, tiny_system):
        sched = MRSchScheduler(tiny_system, window_size=4, state_module="cnn", seed=1)
        assert sched.state_module == "cnn"


class TestScheduling:
    def test_select_returns_window_job(self, tiny_system):
        sched = small_mrsch(tiny_system)
        pool = ResourcePool(tiny_system)
        window = [make_job(job_id=i, nodes=1) for i in (1, 2, 3)]
        ctx = make_ctx(tiny_system, pool, list(window))
        sched.begin_instance(ctx)
        assert sched.select(window, ctx) in window

    def test_goal_logged_per_instance(self, tiny_system):
        sched = small_mrsch(tiny_system)
        pool = ResourcePool(tiny_system)
        queue = [make_job(job_id=1, nodes=2, bb=1)]
        sched.schedule(make_ctx(tiny_system, pool, queue, now=5.0))
        times, goals = sched.goal_series()
        assert times.tolist() == [5.0]
        assert goals.shape == (1, 2)
        assert goals.sum() == pytest.approx(1.0)

    def test_reset_clears_goal_log(self, tiny_system):
        sched = small_mrsch(tiny_system)
        sched.goal_log = [(0.0, np.array([0.5, 0.5]))]
        sched.reset()
        assert sched.goal_log == []

    def test_empty_goal_series(self, tiny_system):
        sched = small_mrsch(tiny_system)
        times, goals = sched.goal_series()
        assert times.size == 0
        assert goals.shape == (0, 2)

    def test_full_simulation(self, tiny_system, tiny_trace):
        sched = small_mrsch(tiny_system)
        result = Simulator(tiny_system, sched).run(tiny_trace)
        assert result.metrics.n_jobs == len(tiny_trace)
        assert all(j.finished for j in result.jobs)


class TestEpisodes:
    def test_no_experience_outside_training(self, tiny_system, tiny_trace):
        sched = small_mrsch(tiny_system)
        Simulator(tiny_system, sched).run(tiny_trace)
        assert sched._steps == []
        assert len(sched.agent.replay) == 0

    def test_training_collects_and_learns(self, tiny_system, tiny_trace):
        sched = small_mrsch(tiny_system)
        sched.training = True
        sched.start_episode()
        Simulator(tiny_system, sched).run(tiny_trace)
        assert len(sched._steps) > 0
        loss = sched.finish_episode()
        assert np.isfinite(loss)
        assert len(sched.agent.replay) > 0
        assert sched._steps == []

    def test_finish_without_steps(self, tiny_system):
        sched = small_mrsch(tiny_system)
        assert sched.finish_episode() == 0.0

    def test_epsilon_decays_during_training(self, tiny_system, tiny_trace):
        sched = small_mrsch(tiny_system)
        eps0 = sched.agent.epsilon
        sched.training = True
        sched.start_episode()
        Simulator(tiny_system, sched).run(tiny_trace)
        assert sched.agent.epsilon < eps0


class TestPersistence:
    def test_save_load_roundtrip(self, tiny_system, tiny_trace, tmp_path):
        a = small_mrsch(tiny_system, seed=1)
        path = tmp_path / "agent.npz"
        a.save(path)
        b = small_mrsch(tiny_system, seed=2)
        b.load(path)
        ra = Simulator(tiny_system, a).run(tiny_trace)
        rb = Simulator(tiny_system, b).run(tiny_trace)
        assert [j.start_time for j in ra.jobs] == [j.start_time for j in rb.jobs]
