"""Unit tests for repro.nn.layers: shapes, values, error handling."""

import numpy as np
import pytest

from repro.nn.layers import (
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    MaxPool1D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(5, 3, rng=rng)
        out = layer.forward(rng.random((7, 5)))
        assert out.shape == (7, 3)

    def test_linear_map(self, rng):
        layer = Dense(4, 2, rng=rng)
        layer.params["W"][...] = np.arange(8).reshape(4, 2)
        layer.params["b"][...] = [1.0, -1.0]
        x = np.ones((1, 4))
        out = layer.forward(x)
        np.testing.assert_allclose(out, [[0 + 2 + 4 + 6 + 1, 1 + 3 + 5 + 7 - 1]])

    def test_rejects_wrong_input_width(self, rng):
        layer = Dense(5, 3, rng=rng)
        with pytest.raises(ValueError, match="expected input"):
            layer.forward(np.zeros((2, 4)))

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, -1)

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Dense(2, 2, rng=rng).backward(np.zeros((1, 2)))

    def test_gradient_accumulates_until_zeroed(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.random((4, 3))
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        g1 = layer.grads["W"].copy()
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        np.testing.assert_allclose(layer.grads["W"], 2 * g1)
        layer.zero_grad()
        assert np.all(layer.grads["W"] == 0)

    def test_deterministic_init(self):
        a = Dense(6, 4, rng=np.random.default_rng(3))
        b = Dense(6, 4, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a.params["W"], b.params["W"])


class TestActivations:
    def test_relu_values(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_leaky_relu_values(self):
        out = LeakyReLU(alpha=0.1).forward(np.array([[-2.0, 3.0]]))
        np.testing.assert_allclose(out, [[-0.2, 3.0]])

    def test_leaky_relu_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LeakyReLU(alpha=-0.5)

    def test_tanh_bounds(self, rng):
        out = Tanh().forward(rng.normal(0, 10, size=(5, 5)))
        assert np.all(np.abs(out) <= 1.0)

    def test_sigmoid_extreme_inputs_are_finite(self):
        out = Sigmoid().forward(np.array([[-1e4, 1e4]]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)

    def test_softmax_rows_sum_to_one(self, rng):
        out = Softmax().forward(rng.normal(size=(6, 9)) * 50)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(6), atol=1e-12)
        assert np.all(out >= 0)

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(2, 4))
        a = Softmax().forward(x)
        b = Softmax().forward(x + 123.0)
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestConv1D:
    def test_output_length(self, rng):
        conv = Conv1D(1, 4, kernel_size=3, stride=2, rng=rng)
        assert conv.output_length(11) == 5
        out = conv.forward(rng.random((2, 11, 1)))
        assert out.shape == (2, 5, 4)

    def test_known_convolution(self, rng):
        conv = Conv1D(1, 1, kernel_size=2, stride=1, rng=rng)
        conv.params["W"][...] = np.array([[[1.0]], [[2.0]]])
        conv.params["b"][...] = 0.0
        x = np.array([[[1.0], [2.0], [3.0]]])
        out = conv.forward(x)
        np.testing.assert_allclose(out[0, :, 0], [1 + 4, 2 + 6])

    def test_too_short_input_raises(self, rng):
        conv = Conv1D(1, 1, kernel_size=5, rng=rng)
        with pytest.raises(ValueError, match="shorter than kernel"):
            conv.forward(np.zeros((1, 3, 1)))

    def test_wrong_channels_raises(self, rng):
        conv = Conv1D(2, 1, kernel_size=2, rng=rng)
        with pytest.raises(ValueError, match="expected input"):
            conv.forward(np.zeros((1, 5, 3)))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            Conv1D(1, 1, kernel_size=0)
        with pytest.raises(ValueError):
            Conv1D(1, 1, kernel_size=2, stride=0)


class TestMaxPool1D:
    def test_pooling_values(self):
        pool = MaxPool1D(2)
        x = np.array([[[1.0], [5.0], [2.0], [2.0]]])
        out = pool.forward(x)
        np.testing.assert_allclose(out[0, :, 0], [5.0, 2.0])

    def test_indivisible_length_raises(self):
        with pytest.raises(ValueError, match="not divisible"):
            MaxPool1D(3).forward(np.zeros((1, 4, 1)))

    def test_backward_routes_to_max(self):
        pool = MaxPool1D(2)
        x = np.array([[[1.0], [5.0], [7.0], [2.0]]])
        pool.forward(x)
        grad = pool.backward(np.array([[[1.0], [1.0]]]))
        np.testing.assert_allclose(grad[0, :, 0], [0.0, 1.0, 1.0, 0.0])

    def test_tie_shares_gradient(self):
        pool = MaxPool1D(2)
        x = np.array([[[3.0], [3.0]]])
        pool.forward(x)
        grad = pool.backward(np.array([[[1.0]]]))
        np.testing.assert_allclose(grad[0, :, 0], [0.5, 0.5])


class TestFlattenDropout:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.random((3, 4, 5))
        out = layer.forward(x)
        assert out.shape == (3, 20)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_dropout_inference_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = rng.random((4, 6))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_training_zeroes_some(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((10, 100))
        out = layer.forward(x, training=True)
        zeros = (out == 0).mean()
        assert 0.3 < zeros < 0.7
        # Inverted dropout preserves expectation.
        assert abs(out.mean() - 1.0) < 0.1

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)
