"""DecisionTrace persistence and the on-disk TraceStore."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.eval.trace import DecisionTrace, TraceStore, trace_key


class TestDecisionTrace:
    def test_shape_accessors(self, make_decision_trace):
        trace = make_decision_trace(n=5, window=3)
        assert trace.n_decisions == 5
        assert trace.window_size == 3
        assert trace.key == "testtask_S1"

    def test_mismatched_lengths_rejected(self, make_decision_trace):
        trace = make_decision_trace(n=4)
        with pytest.raises(ValueError, match="disagree on decision count"):
            DecisionTrace(
                states=trace.states[:3],
                measurements=trace.measurements,
                goals=trace.goals,
                masks=trace.masks,
                priors=trace.priors,
                scores=trace.scores,
                actions=trace.actions,
                times=trace.times,
                job_ids=trace.job_ids,
                job_features=trace.job_features,
                meta=trace.meta,
            )

    def test_out_of_range_actions_rejected(self, make_decision_trace):
        with pytest.raises(ValueError, match="out of window range"):
            make_decision_trace(n=3, window=2, actions=[0, 1, 2])

    def test_feature_lookup(self, make_decision_trace):
        trace = make_decision_trace()
        assert trace.feature("walltime").shape == trace.masks.shape
        assert trace.feature_index("req_frac:node") == 0
        with pytest.raises(KeyError, match="no job feature"):
            trace.feature("nope")

    def test_npz_roundtrip_is_lossless(self, tmp_path, make_decision_trace):
        trace = make_decision_trace(n=7, window=5, seed=42)
        path = tmp_path / "t.npz"
        trace.save(path)
        back = DecisionTrace.load(path)
        for name in DecisionTrace._ARRAYS:
            np.testing.assert_array_equal(
                getattr(back, name), getattr(trace, name), err_msg=name
            )
        assert back.meta == trace.meta

    def test_save_leaves_no_temp_files(self, tmp_path, make_decision_trace):
        make_decision_trace().save(tmp_path / "t.npz")
        assert list(tmp_path.glob("*.tmp")) == []


class TestTraceStore:
    def test_put_get_roundtrip(self, tmp_path, make_decision_trace):
        store = TraceStore(tmp_path)
        trace = make_decision_trace()
        key = store.put(trace)
        assert key == trace_key("testtask", "S1")
        assert key in store
        loaded = store.get("testtask", "S1")
        np.testing.assert_array_equal(loaded.actions, trace.actions)

    def test_get_missing_returns_none(self, tmp_path):
        assert TraceStore(tmp_path).get("nope", "S1") is None

    def test_put_requires_identity_metadata(self, tmp_path, make_decision_trace):
        trace = make_decision_trace(task_key="")
        with pytest.raises(ValueError, match="task_key"):
            TraceStore(tmp_path).put(trace)

    def test_index_jsonl_appends_one_line_per_put(
        self, tmp_path, make_decision_trace
    ):
        store = TraceStore(tmp_path)
        store.put(make_decision_trace(task_key="a"))
        store.put(make_decision_trace(task_key="b", n=3))
        lines = [
            json.loads(line)
            for line in store.index_path.read_text().splitlines()
        ]
        assert [e["task_key"] for e in lines] == ["a", "b"]
        assert lines[1]["n_decisions"] == 3
        assert all(store.has(e["key"]) for e in lines)

    def test_load_all_and_keys(self, tmp_path, make_decision_trace):
        store = TraceStore(tmp_path)
        store.put(make_decision_trace(task_key="a"))
        store.put(make_decision_trace(task_key="b"))
        assert store.keys() == ("a_S1", "b_S1")
        assert len(store.load_all()) == 2
        assert len(store) == 2

    def test_load_all_missing_key_raises(self, tmp_path, make_decision_trace):
        store = TraceStore(tmp_path)
        store.put(make_decision_trace())
        with pytest.raises(FileNotFoundError, match="missing"):
            store.load_all(["testtask_S1", "ghost_S9"])


class TestCompactStorage:
    """Float32 trace compaction (`compact=True`) — satellite of PR 4."""

    def test_compact_round_trip_widens_and_stays_close(
        self, tmp_path, make_decision_trace
    ):
        trace = make_decision_trace(n=40, window=6, seed=3)
        path = tmp_path / "c.npz"
        trace.save(path, compact=True)
        back = DecisionTrace.load(path)
        # Arrays come back float64 (one dtype downstream) ...
        for name in DecisionTrace._ARRAYS:
            got = getattr(back, name)
            want = getattr(trace, name)
            assert got.dtype == want.dtype, name
            np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-5,
                                       err_msg=name)
        # ... with exact ints/bools/times and the meta intact.
        np.testing.assert_array_equal(back.actions, trace.actions)
        np.testing.assert_array_equal(back.job_ids, trace.job_ids)
        np.testing.assert_array_equal(back.masks, trace.masks)
        np.testing.assert_array_equal(back.times, trace.times)
        assert back.meta == trace.meta

    def test_compact_files_are_smaller(self, tmp_path, make_decision_trace):
        trace = make_decision_trace(n=200, window=8, seed=5)
        full = tmp_path / "full.npz"
        compact = tmp_path / "compact.npz"
        trace.save(full)
        trace.save(compact, compact=True)
        ratio = compact.stat().st_size / full.stat().st_size
        assert ratio < 0.75, f"compact store should shrink the NPZ, got {ratio:.2f}"

    def test_store_compact_flag_applies_to_puts(self, tmp_path, make_decision_trace):
        trace = make_decision_trace(n=50, window=5, seed=9)
        full_store = TraceStore(tmp_path / "full")
        compact_store = TraceStore(tmp_path / "compact", compact=True)
        key = full_store.put(trace)
        assert compact_store.put(trace) == key
        full_size = (full_store.trace_dir / f"{key}.npz").stat().st_size
        compact_size = (compact_store.trace_dir / f"{key}.npz").stat().st_size
        assert compact_size < full_size
        # Reading is dtype-agnostic: both stores hand back usable traces.
        assert compact_store.get(
            trace.meta["task_key"], trace.meta["workload"]
        ).n_decisions == trace.n_decisions

    def test_resave_after_compact_load_restores_full_width(
        self, tmp_path, make_decision_trace
    ):
        """compact → load → save (full) must not stay silently narrow."""
        trace = make_decision_trace(n=30, window=4, seed=1)
        first = tmp_path / "a.npz"
        second = tmp_path / "b.npz"
        trace.save(first, compact=True)
        DecisionTrace.load(first).save(second)
        with np.load(second, allow_pickle=False) as data:
            assert data["states"].dtype == np.float64
            assert json.loads(str(data["meta"]))["compact"] is False
